//! Multi-turn conversation tests: session reuse on top of module reuse.

use pc_model::{Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};

const CORPUS: &str = "you are a helpful guide the miami coast has warm beaches surf and sun \
    tell me about the water what about food compare both please one two three";

fn engine() -> PromptCache {
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 8),
        tokenizer,
        EngineConfig::default(),
    );
    engine
        .register_schema(
            r#"<schema name="chat">
                 <module name="miami">the miami coast has warm beaches surf and sun</module>
               </schema>"#,
        )
        .unwrap();
    engine
}

fn opts(n: usize) -> ServeOptions {
    ServeOptions::default().max_new_tokens(n)
}

#[test]
fn conversation_accumulates_session() {
    let engine = engine();
    let (mut convo, first) = engine
        .conversation(
            r#"<prompt schema="chat"><miami/>tell me about the water</prompt>"#,
            &opts(4),
        )
        .unwrap();
    assert_eq!(first.tokens.len(), 4);
    let after_open = convo.session_tokens();
    // Module 9 + question 5 + 4 decoded.
    assert_eq!(after_open, 9 + 5 + 4);

    let second = convo.say("what about food", &opts(4)).unwrap();
    assert_eq!(second.stats.cached_tokens, after_open);
    assert_eq!(second.stats.new_tokens, 3);
    assert_eq!(convo.session_tokens(), after_open + 3 + 4);
    assert_eq!(convo.turns(), 2);
    assert_eq!(convo.transcript()[1].user, "what about food");
}

#[test]
fn later_turns_match_a_monolithic_session() {
    // Turn-by-turn conversation must equal serving the whole history in
    // one pass: build the same token/position sequence manually through
    // the model and compare outputs.
    let engine = engine();
    let (mut convo, first) = engine
        .conversation(
            r#"<prompt schema="chat"><miami/>tell me about the water</prompt>"#,
            &opts(3),
        )
        .unwrap();
    let second = convo.say("what about food", &opts(3)).unwrap();

    // Reference: replay through a fresh model-level session.
    let model = engine.model();
    let tok = engine.tokenizer();
    let mut cache = pc_model::KvCache::new(model.config());
    let module_tokens = tok.encode("the miami coast has warm beaches surf and sun");
    let q1 = tok.encode("tell me about the water");
    let mut pos = 0usize;
    let feed = |tokens: &[u32], cache: &mut pc_model::KvCache, pos: &mut usize| {
        let positions: Vec<usize> = (*pos..*pos + tokens.len()).collect();
        *pos += tokens.len();
        model.prefill(tokens, &positions, cache).unwrap()
    };
    feed(&module_tokens, &mut cache, &mut pos);
    let mut logits = feed(&q1, &mut cache, &mut pos);
    let mut replay_first = Vec::new();
    for _ in 0..3 {
        let t = pc_tensor::ops::argmax_slice(&logits).unwrap() as u32;
        replay_first.push(t);
        logits = feed(&[t], &mut cache, &mut pos);
    }
    assert_eq!(replay_first, first.tokens);

    let q2 = tok.encode("what about food");
    // Continue: last decode already fed the 3rd token; replay did too.
    let mut logits = feed(&q2, &mut cache, &mut pos);
    let mut replay_second = Vec::new();
    for _ in 0..3 {
        let t = pc_tensor::ops::argmax_slice(&logits).unwrap() as u32;
        replay_second.push(t);
        logits = feed(&[t], &mut cache, &mut pos);
    }
    assert_eq!(replay_second, second.tokens);
}

#[test]
fn turn_ttft_tracks_message_not_history() {
    // Grow a long history, then verify a short message's prefill handles
    // only its own tokens (new_tokens) while attending to everything.
    let engine = engine();
    let (mut convo, _) = engine
        .conversation(
            r#"<prompt schema="chat"><miami/>tell me about the water</prompt>"#,
            &opts(2),
        )
        .unwrap();
    for _ in 0..4 {
        convo.say("compare both please one two three", &opts(2)).unwrap();
    }
    let history = convo.session_tokens();
    let r = convo.say("what about food", &opts(1)).unwrap();
    assert_eq!(r.stats.new_tokens, 3);
    assert_eq!(r.stats.cached_tokens, history);
}

#[test]
fn empty_message_rejected() {
    let engine = engine();
    let (mut convo, _) = engine
        .conversation(r#"<prompt schema="chat"><miami/>tell me</prompt>"#, &opts(1))
        .unwrap();
    assert!(convo.say("", &opts(1)).is_err());
    assert!(convo.say("   ", &opts(1)).is_err());
}

#[test]
fn two_conversations_share_modules_but_not_history() {
    let engine = engine();
    let (mut a, _) = engine
        .conversation(r#"<prompt schema="chat"><miami/>tell me</prompt>"#, &opts(2))
        .unwrap();
    let (mut b, _) = engine
        .conversation(r#"<prompt schema="chat"><miami/>tell me</prompt>"#, &opts(2))
        .unwrap();
    a.say("what about food", &opts(2)).unwrap();
    // b's history is unaffected by a's turn.
    assert_eq!(b.turns(), 1);
    let rb = b.say("what about food", &opts(2)).unwrap();
    let ra_len = a.session_tokens();
    assert_eq!(b.session_tokens(), ra_len);
    assert!(rb.stats.cached_tokens > 0);
}
