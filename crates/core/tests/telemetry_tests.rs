//! End-to-end telemetry tests: the TTFT breakdown must account for the
//! measured TTFT, spans must cover the serve path, and disabling
//! telemetry must leave serve results untouched (the zero-overhead
//! contract).

use pc_model::{Model, ModelConfig};
use pc_tokenizer::WordTokenizer;
use prompt_cache::{BatchConfig, BatchScheduler, EngineConfig, PromptCache, Response, ServeOptions, Telemetry};
use prompt_cache::{ServeRequest, Served};

const CORPUS: &str = "the miami coast has warm beaches surf and sun all year \
    you are a helpful travel assistant highlight surf spots please";

const SCHEMA: &str = r#"
  <schema name="doc">
    <module name="beach">
      the miami coast has warm beaches surf and sun all year
    </module>
  </schema>"#;

const PROMPT: &str = r#"<prompt schema="doc"><beach/>highlight surf spots please</prompt>"#;

fn engine(telemetry: Telemetry) -> PromptCache {
    let model = Model::new(ModelConfig::llama_tiny(256), 42);
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let engine = PromptCache::new(
        model,
        tokenizer,
        EngineConfig::default().telemetry(telemetry),
    );
    engine.register_schema(SCHEMA).unwrap();
    engine
}

fn opts() -> ServeOptions {
    ServeOptions::default().max_new_tokens(4)
}

fn assert_breakdown_accounts_for_ttft(response: &Response) {
    let ttft = response.timings.ttft.as_secs_f64();
    let total = response.breakdown.total().as_secs_f64();
    // Phases are cumulative-checkpoint deltas on one clock, so their sum
    // matches the measured TTFT up to Duration rounding — well inside the
    // 5% acceptance bound.
    assert!(
        (total - ttft).abs() <= 0.05 * ttft.max(1e-9),
        "breakdown sum {total}s vs ttft {ttft}s"
    );
    assert!(response.breakdown.prefill > std::time::Duration::ZERO);
}

#[test]
fn breakdown_accounts_for_ttft_cached_and_uncached() {
    let engine = engine(Telemetry::new());
    // Cold serve: the module encodes on first use (uncached fetch path).
    let cold = engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    assert_breakdown_accounts_for_ttft(&cold);
    // Warm serve: the module is now cached; fetch is a state copy.
    let warm = engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    assert_breakdown_accounts_for_ttft(&warm);
    assert!(warm.stats.cached_tokens > 0, "second serve must hit cache");
    // Fully uncached baseline path.
    let plain = engine
        .generate_plain("highlight surf spots please", &opts(), Vec::new())
        .unwrap();
    assert_breakdown_accounts_for_ttft(&plain);
    assert_eq!(plain.breakdown.fetch, std::time::Duration::ZERO);
}

#[test]
fn serve_emits_expected_spans_and_no_spans_when_disabled() {
    let telemetry = Telemetry::new();
    let engine = engine(telemetry.clone());
    engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    let names: Vec<&str> = telemetry.spans().iter().map(|s| s.name).collect();
    for expected in ["serve", "schema-resolve", "tokenize", "cache-fetch", "prefill", "sample"] {
        assert!(names.contains(&expected), "missing span {expected} in {names:?}");
    }

    let disabled = Telemetry::disabled();
    let engine = self::engine(disabled.clone());
    engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    assert!(disabled.spans().is_empty(), "disabled telemetry must record nothing");
    assert!(disabled.snapshot().counters.is_empty());
}

/// Drives the scheduler until every admitted sequence retires.
fn drain(sched: &mut BatchScheduler<'_>) -> Vec<(u64, Response)> {
    let mut out = Vec::new();
    while !sched.is_idle() {
        for (id, result) in sched.step() {
            out.push((id, result.unwrap()));
        }
    }
    out.sort_by_key(|(id, _)| *id);
    out
}

#[test]
fn batched_serving_records_spans_and_exact_breakdowns() {
    let telemetry = Telemetry::new();
    let engine = engine(telemetry.clone());
    let mut sched = BatchScheduler::new(&engine, BatchConfig::default().max_batch_size(2));
    sched.admit(0, PROMPT, &opts()).unwrap();
    sched.admit(1, PROMPT, &opts()).unwrap();
    let responses = drain(&mut sched);
    assert_eq!(responses.len(), 2);
    // Batched responses carry the same cumulative-checkpoint TTFT
    // breakdown as solo serves: per-phase deltas sum to TTFT exactly.
    for (id, response) in &responses {
        assert_breakdown_accounts_for_ttft(response);
        assert!(response.timings.ttft > std::time::Duration::ZERO, "id={id}");
    }
    let names: Vec<&str> = telemetry.spans().iter().map(|s| s.name).collect();
    // Per-request phases are recorded through the batched admission path…
    for expected in ["schema-resolve", "tokenize", "cache-fetch", "prefill"] {
        assert!(names.contains(&expected), "missing span {expected} in {names:?}");
    }
    // …and the scheduler wraps each tick in its dedicated span (routed
    // to its own lane by the Chrome-trace exporter).
    let ticks = names
        .iter()
        .filter(|n| **n == pc_telemetry::export::SCHEDULER_TICK_SPAN)
        .count();
    assert!(ticks >= 1, "no {} spans in {names:?}", pc_telemetry::export::SCHEDULER_TICK_SPAN);
}

#[test]
fn batched_telemetry_is_zero_overhead_when_disabled() {
    let disabled = Telemetry::disabled();
    let quiet = engine(disabled.clone());
    let mut sched = BatchScheduler::new(&quiet, BatchConfig::default().max_batch_size(2));
    sched.admit(0, PROMPT, &opts()).unwrap();
    sched.admit(1, PROMPT, &opts()).unwrap();
    let baseline = drain(&mut sched);
    assert!(disabled.spans().is_empty(), "disabled telemetry must record nothing");
    assert!(disabled.snapshot().counters.is_empty());

    // Same workload with telemetry enabled: byte-identical results.
    let enabled = engine(Telemetry::new());
    let mut sched = BatchScheduler::new(&enabled, BatchConfig::default().max_batch_size(2));
    sched.admit(0, PROMPT, &opts()).unwrap();
    sched.admit(1, PROMPT, &opts()).unwrap();
    let observed = drain(&mut sched);
    for ((_, a), (_, b)) in baseline.iter().zip(&observed) {
        assert_eq!(a.tokens, b.tokens, "telemetry must not perturb batched sampling");
        assert_eq!(a.text, b.text);
        assert_eq!(a.stats, b.stats);
    }
}

#[test]
fn telemetry_does_not_change_serve_results() {
    let with = engine(Telemetry::new());
    let without = engine(Telemetry::disabled());
    for e in [&with, &without] {
        // Warm both engines identically so cache state matches.
        e.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    }
    let a = with.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    let b = without.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    assert_eq!(a.tokens, b.tokens, "telemetry must not perturb sampling");
    assert_eq!(a.text, b.text);
    assert_eq!(a.stats, b.stats);
}
