//! End-to-end telemetry tests: the TTFT breakdown must account for the
//! measured TTFT, spans must cover the serve path, and disabling
//! telemetry must leave serve results untouched (the zero-overhead
//! contract).

use pc_model::{Model, ModelConfig};
use pc_tokenizer::WordTokenizer;
use prompt_cache::{EngineConfig, PromptCache, Response, ServeOptions, Telemetry};
use prompt_cache::{ServeRequest, Served};

const CORPUS: &str = "the miami coast has warm beaches surf and sun all year \
    you are a helpful travel assistant highlight surf spots please";

const SCHEMA: &str = r#"
  <schema name="doc">
    <module name="beach">
      the miami coast has warm beaches surf and sun all year
    </module>
  </schema>"#;

const PROMPT: &str = r#"<prompt schema="doc"><beach/>highlight surf spots please</prompt>"#;

fn engine(telemetry: Telemetry) -> PromptCache {
    let model = Model::new(ModelConfig::llama_tiny(256), 42);
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let engine = PromptCache::new(
        model,
        tokenizer,
        EngineConfig::default().telemetry(telemetry),
    );
    engine.register_schema(SCHEMA).unwrap();
    engine
}

fn opts() -> ServeOptions {
    ServeOptions::default().max_new_tokens(4)
}

fn assert_breakdown_accounts_for_ttft(response: &Response) {
    let ttft = response.timings.ttft.as_secs_f64();
    let total = response.breakdown.total().as_secs_f64();
    // Phases are cumulative-checkpoint deltas on one clock, so their sum
    // matches the measured TTFT up to Duration rounding — well inside the
    // 5% acceptance bound.
    assert!(
        (total - ttft).abs() <= 0.05 * ttft.max(1e-9),
        "breakdown sum {total}s vs ttft {ttft}s"
    );
    assert!(response.breakdown.prefill > std::time::Duration::ZERO);
}

#[test]
fn breakdown_accounts_for_ttft_cached_and_uncached() {
    let engine = engine(Telemetry::new());
    // Cold serve: the module encodes on first use (uncached fetch path).
    let cold = engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    assert_breakdown_accounts_for_ttft(&cold);
    // Warm serve: the module is now cached; fetch is a state copy.
    let warm = engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    assert_breakdown_accounts_for_ttft(&warm);
    assert!(warm.stats.cached_tokens > 0, "second serve must hit cache");
    // Fully uncached baseline path.
    let plain = engine
        .generate_plain("highlight surf spots please", &opts(), Vec::new())
        .unwrap();
    assert_breakdown_accounts_for_ttft(&plain);
    assert_eq!(plain.breakdown.fetch, std::time::Duration::ZERO);
}

#[test]
fn serve_emits_expected_spans_and_no_spans_when_disabled() {
    let telemetry = Telemetry::new();
    let engine = engine(telemetry.clone());
    engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    let names: Vec<&str> = telemetry.spans().iter().map(|s| s.name).collect();
    for expected in ["serve", "schema-resolve", "tokenize", "cache-fetch", "prefill", "sample"] {
        assert!(names.contains(&expected), "missing span {expected} in {names:?}");
    }

    let disabled = Telemetry::disabled();
    let engine = self::engine(disabled.clone());
    engine.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    assert!(disabled.spans().is_empty(), "disabled telemetry must record nothing");
    assert!(disabled.snapshot().counters.is_empty());
}

#[test]
fn telemetry_does_not_change_serve_results() {
    let with = engine(Telemetry::new());
    let without = engine(Telemetry::disabled());
    for e in [&with, &without] {
        // Warm both engines identically so cache state matches.
        e.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    }
    let a = with.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    let b = without.serve(&ServeRequest::new(PROMPT).options(opts().clone())).map(Served::into_response).unwrap();
    assert_eq!(a.tokens, b.tokens, "telemetry must not perturb sampling");
    assert_eq!(a.text, b.text);
    assert_eq!(a.stats, b.stats);
}
