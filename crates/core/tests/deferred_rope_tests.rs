//! Deferred-RoPE serving: one canonical cache entry per module, rotated
//! to its placement at read time.
//!
//! The correctness oracles from the position-independence work:
//!
//! 1. a module's canonical entry served at several different offsets
//!    yields logits within the fidelity bound of a fresh full prefill at
//!    each offset — and **byte-identical** logits for shift = 0;
//! 2. with deferred RoPE off the engine behaves exactly as before
//!    (legacy A/B switch), and shift-0 serving is byte-identical across
//!    the switch;
//! 3. learned-position models (GPT-2) are not shift-invariant, so the
//!    engine falls back to legacy placement for them;
//! 4. relocation does not duplicate store entries: one canonical entry
//!    per module however many offsets it is served at.

use pc_model::{fidelity, Family, KvView, Model, ModelConfig};
use pc_tokenizer::WordTokenizer;
use prompt_cache::{EngineConfig, PromptCache, ServeOptions, ServeRequest, Served};

const CORPUS: &str = "the miami coast has warm beaches surf and sun all year \
    plan a detailed trip of days for a traveler who loves the water \
    you are a helpful travel assistant highlight surf spots please";

const MODULE_TEXT: &str = "the miami coast has warm beaches surf and sun all year";

const SCHEMA: &str = r#"
  <schema name="doc">
    <module name="beach">the miami coast has warm beaches surf and sun all year</module>
  </schema>"#;

fn engine_for(family: Family, config: EngineConfig) -> PromptCache {
    let cfg = match family {
        Family::Llama => ModelConfig::llama_tiny(256),
        Family::Falcon => ModelConfig::falcon_tiny(256),
        Family::Mpt => ModelConfig::mpt_tiny(256),
        Family::Gpt2 => ModelConfig::gpt2_tiny(256),
    };
    let model = Model::new(cfg, 42);
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let engine = PromptCache::new(model, tokenizer, config);
    engine.register_schema(SCHEMA).unwrap();
    engine
}

/// The engine's stored canonical entry, shared into a view at offset Δ,
/// must produce logits matching a fresh full prefill of the same tokens
/// at positions Δ.. — exactly for Δ = 0, within the fidelity bound
/// otherwise (the composed `R(Δ)·R(p)` rotation differs from the direct
/// `R(p+Δ)` only in float rounding).
#[test]
fn canonical_entry_matches_full_prefill_at_three_offsets() {
    for family in [Family::Llama, Family::Falcon, Family::Mpt] {
        let engine = engine_for(family, EngineConfig::default());
        assert!(engine.deferred_rope_effective(), "{family:?}");
        let states = engine
            .schema_span_states("doc")
            .into_iter()
            .next()
            .flatten()
            .expect("module encoded at registration");
        let model = engine.model();
        let module_tokens = engine.tokenizer().encode(MODULE_TEXT);
        let question_tokens = engine.tokenizer().encode("highlight surf spots please");
        assert_eq!(states.len(), module_tokens.len());

        for offset in [0usize, 5, 17] {
            // Reference: everything prefilled fresh at the placed offset.
            let mut full_tokens = module_tokens.clone();
            full_tokens.extend(&question_tokens);
            let positions: Vec<usize> = (offset..offset + full_tokens.len()).collect();
            let mut fresh = KvView::with_shape(states.num_layers(), states.kv_dim());
            let reference = model.prefill(&full_tokens, &positions, &mut fresh).unwrap();

            // Reuse: the canonical entry relocated by `offset`, question
            // prefilled behind it.
            let mut view = KvView::with_shape(states.num_layers(), states.kv_dim());
            view.push_segment_shifted(states.clone(), 0, states.len(), offset as isize)
                .unwrap();
            let q_positions: Vec<usize> = (offset + module_tokens.len()
                ..offset + full_tokens.len())
                .collect();
            let reused = model
                .prefill(&question_tokens, &q_positions, &mut view)
                .unwrap();

            let d = fidelity::logit_distance(&reference, &reused);
            if offset == 0 {
                assert_eq!(reference, reused, "{family:?}: shift 0 must be byte-identical");
            } else {
                assert!(
                    d.argmax_agrees,
                    "{family:?} offset {offset}: argmax diverged"
                );
                assert!(
                    d.max_abs_diff < 5e-2,
                    "{family:?} offset {offset}: max |Δlogit| {}",
                    d.max_abs_diff
                );
                assert!(
                    d.kl_divergence < 1e-3,
                    "{family:?} offset {offset}: KL {}",
                    d.kl_divergence
                );
            }
        }
    }
}

/// Serving a module at its canonical offset is byte-identical across the
/// deferred-RoPE A/B switch — deferred storage changes nothing when the
/// placement equals the encoded position.
#[test]
fn shift_zero_serving_is_byte_identical_to_legacy() {
    for family in [Family::Llama, Family::Falcon, Family::Mpt, Family::Gpt2] {
        let deferred = engine_for(family, EngineConfig::default());
        let legacy = engine_for(family, EngineConfig::default().deferred_rope(false));
        assert!(!legacy.deferred_rope_effective());
        let prompt = r#"<prompt schema="doc"><beach/>highlight surf spots please</prompt>"#;
        let opts = ServeOptions::default().max_new_tokens(8);
        let a = deferred
            .serve(&ServeRequest::new(prompt).options(opts.clone()))
            .map(Served::into_response)
            .unwrap();
        let b = legacy
            .serve(&ServeRequest::new(prompt).options(opts.clone()))
            .map(Served::into_response)
            .unwrap();
        assert_eq!(a.tokens, b.tokens, "family {family:?}");
        assert_eq!(a.text, b.text, "family {family:?}");
        assert_eq!(a.stats.cached_tokens, b.stats.cached_tokens);
    }
}

/// Learned positional embeddings bake the position into the hidden
/// states, not just the keys — no rotation can relocate them. The engine
/// must fall back to legacy exact-position placement for GPT-2.
#[test]
fn learned_positions_fall_back_to_legacy_placement() {
    let engine = engine_for(Family::Gpt2, EngineConfig::default());
    assert!(
        !engine.deferred_rope_effective(),
        "learned positions are not shift-invariant"
    );
    // And serving still works end to end.
    let prompt = r#"<prompt schema="doc"><beach/>highlight surf spots please</prompt>"#;
    let r = engine
        .serve(&ServeRequest::new(prompt).max_new_tokens(4))
        .map(Served::into_response)
        .unwrap();
    assert!(r.stats.cached_tokens > 0);
}

/// Serving one module at several distinct offsets keeps exactly one
/// store entry for it — relocation happens at read time, never by
/// encoding a per-position duplicate. Hot placements are additionally
/// served from the bounded rotated-view cache.
#[test]
fn relocation_does_not_duplicate_store_entries() {
    let engine = engine_for(Family::Llama, EngineConfig::default());
    let entries_after_registration = engine.store().len();
    let opts = ServeOptions::default().max_new_tokens(2);
    // Three placements: canonical, and two relocations behind different
    // amounts of prompt text.
    let prompts = [
        r#"<prompt schema="doc"><beach/>highlight surf spots</prompt>"#,
        r#"<prompt schema="doc">please <beach/>highlight surf spots</prompt>"#,
        r#"<prompt schema="doc">you are a helpful travel assistant <beach/>highlight</prompt>"#,
    ];
    for prompt in prompts {
        for _ in 0..3 {
            let r = engine
                .serve(&ServeRequest::new(prompt).options(opts.clone()))
                .map(Served::into_response)
                .unwrap();
            assert!(r.stats.cached_tokens > 0, "placement missed the cache");
        }
    }
    assert_eq!(
        engine.store().len(),
        entries_after_registration,
        "per-position duplicates were stored"
    );
    // The repeated shifted placements turned hot and were materialised
    // into the bounded rotated-view cache.
    assert!(engine.rotated_views() >= 1);
    assert!(engine.rotated_views() <= 64);
}
