//! Property-based tests for the engine: random schemas and prompts must
//! uphold the reuse-equivalence and accounting invariants.

use pc_model::{Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use proptest::prelude::*;
use prompt_cache::{ServeRequest, Served};

/// Lowercase word strategy (PML-safe, tokenizer-friendly).
fn words(range: std::ops::Range<usize>) -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z]{2,7}", range)
}

fn build_engine(all_text: &str, seed: u64) -> PromptCache {
    let tokenizer = WordTokenizer::train(&[all_text]);
    let vocab = tokenizer.vocab_size().max(64);
    PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), seed),
        tokenizer,
        EngineConfig::default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any single-module prompt must match the baseline exactly —
    /// whatever the module text, question, and weights.
    #[test]
    fn single_module_equivalence_holds_generally(
        module_words in words(1..40),
        question_words in words(1..8),
        seed in 0u64..1000,
    ) {
        let module_text = module_words.join(" ");
        let question = question_words.join(" ");
        let engine = build_engine(&format!("{module_text} {question}"), seed);
        engine
            .register_schema(&format!(
                r#"<schema name="p"><module name="m">{module_text}</module></schema>"#
            ))
            .unwrap();
        let prompt = format!(r#"<prompt schema="p"><m/>{question}</prompt>"#);
        let opts = ServeOptions::default().max_new_tokens(4);
        let cached = engine.serve(&ServeRequest::new(&prompt).options(opts.clone())).map(Served::into_response).unwrap();
        let baseline = engine.serve(&ServeRequest::new(&prompt).options(opts.clone()).baseline(true)).map(Served::into_response).unwrap();
        prop_assert_eq!(cached.tokens, baseline.tokens);
        prop_assert_eq!(cached.stats.cached_tokens, module_words.len());
        prop_assert_eq!(cached.stats.new_tokens, question_words.len());
    }

    /// Serving accounting: cached + new token counts always equal the
    /// schema/prompt word counts, for any module partition.
    #[test]
    fn token_accounting_is_exact(
        module_a in words(1..20),
        module_b in words(1..20),
        question in words(1..6),
        import_b in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let (a, b, q) = (module_a.join(" "), module_b.join(" "), question.join(" "));
        let engine = build_engine(&format!("{a} {b} {q}"), seed);
        engine
            .register_schema(&format!(
                r#"<schema name="p">
                     <module name="a">{a}</module>
                     <module name="b">{b}</module>
                   </schema>"#
            ))
            .unwrap();
        let imports = if import_b { "<a/><b/>" } else { "<a/>" };
        let prompt = format!(r#"<prompt schema="p">{imports}{q}</prompt>"#);
        let r = engine.serve(&ServeRequest::new(&prompt).max_new_tokens(1)).map(Served::into_response).unwrap();
        let expected_cached =
            module_a.len() + if import_b { module_b.len() } else { 0 };
        prop_assert_eq!(r.stats.cached_tokens, expected_cached);
        prop_assert_eq!(r.stats.new_tokens, question.len());
        prop_assert_eq!(r.tokens.len(), 1);
    }

    /// Parameter arguments of any legal width serve successfully, and the
    /// placeholder accounting matches.
    #[test]
    fn parameter_widths_all_serve(
        prefix in words(1..10),
        arg in words(1..5),
        slot in 5usize..8,
        seed in 0u64..1000,
    ) {
        let prefix_text = prefix.join(" ");
        let arg_text = arg.join(" ");
        let engine = build_engine(&format!("{prefix_text} {arg_text} go"), seed);
        engine
            .register_schema(&format!(
                r#"<schema name="p">
                     <module name="m">{prefix_text} <param name="x" len="{slot}"/></module>
                   </schema>"#
            ))
            .unwrap();
        let prompt = format!(r#"<prompt schema="p"><m x="{arg_text}"/>go</prompt>"#);
        let r = engine.serve(&ServeRequest::new(&prompt).max_new_tokens(1)).map(Served::into_response).unwrap();
        // A supplied argument displaces the *entire* placeholder range:
        // its rows are recomputed from the argument and trailing unused
        // slots become a position gap (§3.3's "trailing white spaces do
        // not change the semantics"). Cached rows are the module text
        // alone.
        prop_assert_eq!(r.stats.cached_tokens, prefix.len());
        prop_assert_eq!(r.stats.new_tokens, arg.len() + 1);
        let _ = slot;
    }

    /// Serving is deterministic: same prompt, same engine, same output.
    #[test]
    fn serving_is_deterministic(
        module_words in words(2..24),
        seed in 0u64..1000,
    ) {
        let text = module_words.join(" ");
        let engine = build_engine(&format!("{text} q"), seed);
        engine
            .register_schema(&format!(
                r#"<schema name="p"><module name="m">{text}</module></schema>"#
            ))
            .unwrap();
        let prompt = r#"<prompt schema="p"><m/>q</prompt>"#;
        let a = engine.serve(&ServeRequest::new(prompt).max_new_tokens(5)).map(Served::into_response).unwrap();
        let b = engine.serve(&ServeRequest::new(prompt).max_new_tokens(5)).map(Served::into_response).unwrap();
        prop_assert_eq!(a.tokens, b.tokens);
        prop_assert_eq!(a.stats, b.stats);
    }
}
