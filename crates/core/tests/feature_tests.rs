//! Tests for the serving-system features layered on the core mechanism:
//! streaming decode, module persistence, and union-sibling prefetching.

use pc_cache::{EvictionPolicy, StoreConfig, Tier};
use pc_model::{Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use prompt_cache::{ServeRequest, Served};

const CORPUS: &str = "alpha beta gamma delta epsilon zeta eta theta iota kappa \
    lambda mu nu xi omicron pi rho sigma tau upsilon answer the question now";

fn engine_with(config: EngineConfig) -> PromptCache {
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let vocab = tokenizer.vocab_size().max(64);
    PromptCache::new(Model::new(ModelConfig::llama_tiny(vocab), 77), tokenizer, config)
}

const UNION_SCHEMA: &str = r#"
  <schema name="u">
    <union>
      <module name="a">alpha beta gamma delta epsilon</module>
      <module name="b">zeta eta theta iota kappa</module>
      <module name="c">lambda mu nu xi omicron</module>
    </union>
  </schema>"#;

#[test]
fn streaming_tokens_match_response() {
    let engine = engine_with(EngineConfig::default());
    engine.register_schema(UNION_SCHEMA).unwrap();
    let streamed = std::cell::RefCell::new(Vec::new());
    let counts = std::cell::RefCell::new(Vec::new());
    let sink = |tok, n| {
        streamed.borrow_mut().push(tok);
        counts.borrow_mut().push(n);
    };
    let r = engine
        .serve(
            &ServeRequest::new(r#"<prompt schema="u"><a/>answer the question now</prompt>"#)
                .max_new_tokens(6)
                .streaming(&sink),
        )
        .map(Served::into_response)
        .unwrap();
    assert_eq!(streamed.into_inner(), r.tokens);
    assert_eq!(counts.into_inner(), (1..=r.tokens.len()).collect::<Vec<_>>());
}

#[test]
fn streaming_baseline_equivalence_preserved() {
    let engine = engine_with(EngineConfig::default());
    engine.register_schema(UNION_SCHEMA).unwrap();
    let prompt = r#"<prompt schema="u"><b/>answer the question now</prompt>"#;
    let opts = ServeOptions::default().max_new_tokens(6);
    let sink = |_, _| {};
    let streamed = engine
        .serve(
            &ServeRequest::new(prompt)
                .options(opts.clone())
                .streaming(&sink),
        )
        .map(Served::into_response)
        .unwrap();
    let plain = engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).unwrap();
    assert_eq!(streamed.tokens, plain.tokens);
}

#[test]
fn union_sibling_prefetch_warms_device_tier() {
    let engine = engine_with(EngineConfig::default().store(StoreConfig::default().device_capacity_bytes(1 << 22).policy(EvictionPolicy::Lru)).tier(Tier::Device).prefetch_union_siblings(true));
    engine.register_schema(UNION_SCHEMA).unwrap();
    let opts = ServeOptions::default().max_new_tokens(1);
    // Serving member `a` should prefetch b and c.
    engine
        .serve(&ServeRequest::new(r#"<prompt schema="u"><a/>answer</prompt>"#).options(opts.clone())).map(Served::into_response)
        .unwrap();
    let copied_after_first = engine.store_stats().bytes_copied_h2d;
    // Serving member `b` now finds it resident: no further copies.
    engine
        .serve(&ServeRequest::new(r#"<prompt schema="u"><b/>answer</prompt>"#).options(opts.clone())).map(Served::into_response)
        .unwrap();
    let stats = engine.store_stats();
    assert_eq!(stats.bytes_copied_h2d, copied_after_first);
    assert!(stats.device_hits >= 1);
}

#[test]
fn without_prefetch_siblings_pay_their_own_copy() {
    let engine = engine_with(EngineConfig::default().store(StoreConfig::default().device_capacity_bytes(1 << 22).policy(EvictionPolicy::Lru)).tier(Tier::Device).prefetch_union_siblings(false));
    engine.register_schema(UNION_SCHEMA).unwrap();
    let opts = ServeOptions::default().max_new_tokens(1);
    engine
        .serve(&ServeRequest::new(r#"<prompt schema="u"><a/>answer</prompt>"#).options(opts.clone())).map(Served::into_response)
        .unwrap();
    let after_first = engine.store_stats().bytes_copied_h2d;
    engine
        .serve(&ServeRequest::new(r#"<prompt schema="u"><b/>answer</prompt>"#).options(opts.clone())).map(Served::into_response)
        .unwrap();
    assert!(engine.store_stats().bytes_copied_h2d > after_first);
}

#[test]
fn persistence_round_trip_skips_re_encoding() {
    let dir = std::env::temp_dir().join(format!("pc-engine-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First process: register (encodes), generate a reference output,
    // persist.
    let reference = {
        let engine = engine_with(EngineConfig::default());
        let info = engine.register_schema(UNION_SCHEMA).unwrap();
        assert_eq!(info.spans, 3);
        let saved = engine.save_modules(&dir).unwrap();
        assert_eq!(saved, 3);
        engine
            .serve(&ServeRequest::new(r#"<prompt schema="u"><c/>answer the question now</prompt>"#).max_new_tokens(6)).map(Served::into_response)
            .unwrap()
            .tokens
    };

    // Second process (same seed ⇒ same weights): load states, register —
    // no re-encoding — and serve identically.
    let engine = engine_with(EngineConfig::default());
    let loaded = engine.load_modules(&dir).unwrap();
    assert_eq!(loaded, 3);
    let info = engine.register_schema(UNION_SCHEMA).unwrap();
    assert_eq!(info.spans, 3, "preloaded spans counted");
    let r = engine
        .serve(&ServeRequest::new(r#"<prompt schema="u"><c/>answer the question now</prompt>"#).max_new_tokens(6)).map(Served::into_response)
        .unwrap();
    assert_eq!(r.tokens, reference);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_persisted_states_are_re_encoded_not_reused() {
    // Persist states for one schema revision, then register an *edited*
    // schema under the same name: the engine must detect the mismatch and
    // re-encode rather than serve stale states.
    let dir = std::env::temp_dir().join(format!("pc-engine-stale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let engine = engine_with(EngineConfig::default());
        engine.register_schema(UNION_SCHEMA).unwrap();
        engine.save_modules(&dir).unwrap();
    }
    // Edited revision: module `a` has different (longer) content.
    let edited = r#"
      <schema name="u">
        <union>
          <module name="a">alpha beta gamma delta epsilon zeta eta</module>
          <module name="b">zeta eta theta iota kappa</module>
          <module name="c">lambda mu nu xi omicron</module>
        </union>
      </schema>"#;
    let engine = engine_with(EngineConfig::default());
    engine.load_modules(&dir).unwrap();
    engine.register_schema(edited).unwrap();
    // Serving module `a` must reflect the edited 7-token content.
    let r = engine
        .serve(&ServeRequest::new(r#"<prompt schema="u"><a/>answer the question now</prompt>"#).max_new_tokens(2)).map(Served::into_response)
        .unwrap();
    assert_eq!(r.stats.cached_tokens, 7);
    // And the output must equal a fresh engine's (no stale states leaked).
    let fresh = engine_with(EngineConfig::default());
    fresh.register_schema(edited).unwrap();
    let f = fresh
        .serve(&ServeRequest::new(r#"<prompt schema="u"><a/>answer the question now</prompt>"#).max_new_tokens(2)).map(Served::into_response)
        .unwrap();
    assert_eq!(r.tokens, f.tokens);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn persisted_states_are_bit_identical_to_fresh_encoding() {
    let dir = std::env::temp_dir().join(format!("pc-engine-bits-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fresh = engine_with(EngineConfig::default());
    fresh.register_schema(UNION_SCHEMA).unwrap();
    fresh.save_modules(&dir).unwrap();

    let restored = engine_with(EngineConfig::default());
    restored.load_modules(&dir).unwrap();
    restored.register_schema(UNION_SCHEMA).unwrap();
    // Bytes held must match exactly (f32-exact codec round trip).
    assert_eq!(fresh.cached_bytes(), restored.cached_bytes());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn schema_listing_apis() {
    let engine = engine_with(EngineConfig::default());
    assert!(engine.schema_names().is_empty());
    engine.register_schema(UNION_SCHEMA).unwrap();
    assert_eq!(engine.schema_names(), vec!["u".to_string()]);
    assert!(engine.has_schema("u"));
    assert!(!engine.has_schema("ghost"));
    engine.unregister_schema("u");
    assert!(!engine.has_schema("u"));
}

#[test]
fn concurrent_registration_and_serving_is_safe() {
    // One thread registers/unregisters new schemas while others serve an
    // existing one: no panics, serving stays correct.
    let engine = std::sync::Arc::new(engine_with(EngineConfig::default()));
    engine.register_schema(UNION_SCHEMA).unwrap();
    let reference = engine
        .serve(&ServeRequest::new(r#"<prompt schema="u"><a/>answer the question now</prompt>"#).max_new_tokens(3)).map(Served::into_response)
        .unwrap()
        .tokens;
    std::thread::scope(|s| {
        for _ in 0..3 {
            let engine = std::sync::Arc::clone(&engine);
            let reference = reference.clone();
            s.spawn(move || {
                for _ in 0..20 {
                    let r = engine
                        .serve(&ServeRequest::new(r#"<prompt schema="u"><a/>answer the question now</prompt>"#).max_new_tokens(3)).map(Served::into_response)
                        .unwrap();
                    assert_eq!(r.tokens, reference);
                }
            });
        }
        let engine = std::sync::Arc::clone(&engine);
        s.spawn(move || {
            for i in 0..10 {
                let name = format!("temp{i}");
                engine
                    .register_schema(&format!(
                        r#"<schema name="{name}"><module name="m">alpha beta gamma</module></schema>"#
                    ))
                    .unwrap();
                engine.unregister_schema(&name);
            }
        });
    });
    assert!(engine.has_schema("u"));
}

#[test]
fn replace_schema_reencodes_only_changed_modules() {
    let engine = engine_with(EngineConfig::default());
    engine.register_schema(UNION_SCHEMA).unwrap();
    let bytes_before = engine.cached_bytes();
    let reference = engine
        .serve(&ServeRequest::new(r#"<prompt schema="u"><b/>answer the question now</prompt>"#).max_new_tokens(4)).map(Served::into_response)
        .unwrap()
        .tokens;

    // Append-only extension: a fourth union member plus a new module.
    let extended = r#"
      <schema name="u">
        <union>
          <module name="a">alpha beta gamma delta epsilon</module>
          <module name="b">zeta eta theta iota kappa</module>
          <module name="c">lambda mu nu xi omicron</module>
        </union>
        <module name="extra">pi rho sigma tau upsilon</module>
      </schema>"#;
    let info = engine.replace_schema(extended).unwrap();
    assert_eq!(info.spans, 4);
    // Old modules reused, only `extra`'s 5 tokens newly encoded.
    assert!(engine.cached_bytes() > bytes_before);
    // Unchanged module serves identically to the pre-replace engine.
    let after = engine
        .serve(&ServeRequest::new(r#"<prompt schema="u"><b/>answer the question now</prompt>"#).max_new_tokens(4)).map(Served::into_response)
        .unwrap();
    assert_eq!(after.tokens, reference);
    // The new module serves too.
    let extra = engine
        .serve(&ServeRequest::new(r#"<prompt schema="u"><extra/>answer</prompt>"#).max_new_tokens(2)).map(Served::into_response)
        .unwrap();
    assert_eq!(extra.stats.cached_tokens, 5);
}

#[test]
fn replace_schema_drops_stale_spans_and_scaffolds() {
    let engine = engine_with(EngineConfig::default());
    engine
        .register_schema(
            r#"<schema name="r">
                 <module name="a">alpha beta gamma</module>
                 <module name="b">delta epsilon zeta</module>
               </schema>"#,
        )
        .unwrap();
    engine.add_scaffold("r", &["a", "b"]).unwrap();
    let bytes_with_two = engine.cached_bytes();
    // Shrink to one module: span 1 and the scaffold must be dropped.
    engine
        .replace_schema(r#"<schema name="r"><module name="a">alpha beta gamma</module></schema>"#)
        .unwrap();
    assert!(engine.cached_bytes() < bytes_with_two);
    let r = engine
        .serve(&ServeRequest::new(r#"<prompt schema="r"><a/>answer</prompt>"#).max_new_tokens(1)).map(Served::into_response)
        .unwrap();
    assert_eq!(r.stats.cached_tokens, 3);
    assert!(!r.stats.used_scaffold);
}
