//! Engine-level resilience edge cases: deadlines and cooperative
//! cancellation through `serve_with` / `serve_streaming`, and the
//! partial-response invariants (TTFT breakdown still sums exactly,
//! partials are prefixes of the complete output).

use pc_model::{Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{CancelToken, EngineConfig, PromptCache, ServeOptions, ServeOutcome};
use std::time::Duration;

const CORPUS: &str = "alpha beta gamma delta epsilon zeta eta theta answer the question now";
const SCHEMA: &str =
    r#"<schema name="r"><module name="ctx">alpha beta gamma delta epsilon zeta eta theta</module></schema>"#;
const PROMPT: &str = r#"<prompt schema="r"><ctx/>answer the question now</prompt>"#;

fn engine() -> PromptCache {
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 13),
        tokenizer,
        EngineConfig::default(),
    );
    engine.register_schema(SCHEMA).unwrap();
    engine
}

fn opts(max_new_tokens: usize) -> ServeOptions {
    ServeOptions {
        max_new_tokens,
        ..Default::default()
    }
}

#[test]
fn zero_deadline_returns_empty_partial_immediately() {
    let engine = engine();
    let r = engine
        .serve_with(
            PROMPT,
            &ServeOptions {
                deadline: Some(Duration::ZERO),
                ..opts(8)
            },
        )
        .unwrap();
    assert_eq!(r.outcome, ServeOutcome::DeadlineExceeded);
    assert!(r.tokens.is_empty());
    assert!(r.text.is_empty());
    // The TTFT invariant survives the early exit: phases still sum to
    // the reported TTFT, and decode time is zero.
    assert_eq!(r.breakdown.total(), r.timings.ttft);
    assert_eq!(r.timings.decode, Duration::ZERO);
}

#[test]
fn precancelled_token_short_circuits_before_any_work() {
    let engine = engine();
    let token = CancelToken::new();
    token.cancel();
    let mut streamed = 0usize;
    let r = engine
        .serve_streaming(
            PROMPT,
            &ServeOptions {
                cancel: Some(token),
                ..opts(8)
            },
            &mut |_, _| streamed += 1,
        )
        .unwrap();
    assert_eq!(r.outcome, ServeOutcome::Cancelled);
    assert!(r.tokens.is_empty());
    assert_eq!(streamed, 0, "no tokens may be produced after cancellation");
    assert_eq!(r.breakdown.total(), r.timings.ttft);
}

#[test]
fn cancel_mid_decode_returns_exact_partial_prefix() {
    let engine = engine();
    let complete = engine.serve_with(PROMPT, &opts(8)).unwrap();
    assert_eq!(complete.outcome, ServeOutcome::Complete);
    assert!(complete.tokens.len() > 3, "need enough output to truncate");

    // Cancel from the streaming callback after the third token: the
    // decode loop notices at the top of the next iteration, so exactly
    // three tokens come back.
    let token = CancelToken::new();
    let observer = token.clone();
    let r = engine
        .serve_streaming(
            PROMPT,
            &ServeOptions {
                cancel: Some(token),
                ..opts(8)
            },
            &mut |_, n| {
                if n == 3 {
                    observer.cancel();
                }
            },
        )
        .unwrap();
    assert_eq!(r.outcome, ServeOutcome::Cancelled);
    assert_eq!(r.tokens.len(), 3, "one decode step of abort latency, no more");
    assert_eq!(r.tokens[..], complete.tokens[..3], "partial is a prefix");
}

#[test]
fn cancellation_wins_over_an_expired_deadline() {
    // Both interruptions apply; the explicit cancel is reported because
    // it names the caller's intent.
    let engine = engine();
    let token = CancelToken::new();
    token.cancel();
    let r = engine
        .serve_with(
            PROMPT,
            &ServeOptions {
                deadline: Some(Duration::ZERO),
                cancel: Some(token),
                ..opts(4)
            },
        )
        .unwrap();
    assert_eq!(r.outcome, ServeOutcome::Cancelled);
}

#[test]
fn generous_deadline_does_not_perturb_the_serve() {
    let engine = engine();
    let plain = engine.serve_with(PROMPT, &opts(6)).unwrap();
    let bounded = engine
        .serve_with(
            PROMPT,
            &ServeOptions {
                deadline: Some(Duration::from_secs(3600)),
                cancel: Some(CancelToken::new()),
                ..opts(6)
            },
        )
        .unwrap();
    assert_eq!(bounded.outcome, ServeOutcome::Complete);
    assert_eq!(bounded.tokens, plain.tokens);
    assert_eq!(bounded.text, plain.text);
}

#[test]
fn baseline_serve_honours_deadlines_too() {
    let engine = engine();
    let r = engine
        .serve_baseline(
            PROMPT,
            &ServeOptions {
                deadline: Some(Duration::ZERO),
                ..opts(8)
            },
        )
        .unwrap();
    assert_eq!(r.outcome, ServeOutcome::DeadlineExceeded);
    assert!(r.tokens.is_empty());
}
