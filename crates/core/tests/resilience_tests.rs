//! Engine-level resilience edge cases: deadlines and cooperative
//! cancellation through `ServeRequest`, and the partial-response
//! invariants (TTFT breakdown still sums exactly, partials are prefixes
//! of the complete output).

use pc_model::{Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{CancelToken, EngineConfig, PromptCache, ServeOptions, ServeOutcome};
use std::time::Duration;
use prompt_cache::{ServeRequest, Served};

const CORPUS: &str = "alpha beta gamma delta epsilon zeta eta theta answer the question now";
const SCHEMA: &str =
    r#"<schema name="r"><module name="ctx">alpha beta gamma delta epsilon zeta eta theta</module></schema>"#;
const PROMPT: &str = r#"<prompt schema="r"><ctx/>answer the question now</prompt>"#;

fn engine() -> PromptCache {
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 13),
        tokenizer,
        EngineConfig::default(),
    );
    engine.register_schema(SCHEMA).unwrap();
    engine
}

fn opts(max_new_tokens: usize) -> ServeOptions {
    ServeOptions::default().max_new_tokens(max_new_tokens)
}

#[test]
fn zero_deadline_returns_empty_partial_immediately() {
    let engine = engine();
    let r = engine
        .serve(&ServeRequest::new(PROMPT).options(opts(8).clone().deadline(Duration::ZERO).clone())).map(Served::into_response)
        .unwrap();
    assert_eq!(r.outcome, ServeOutcome::DeadlineExceeded);
    assert!(r.tokens.is_empty());
    assert!(r.text.is_empty());
    // The TTFT invariant survives the early exit: phases still sum to
    // the reported TTFT, and decode time is zero.
    assert_eq!(r.breakdown.total(), r.timings.ttft);
    assert_eq!(r.timings.decode, Duration::ZERO);
}

#[test]
fn precancelled_token_short_circuits_before_any_work() {
    let engine = engine();
    let token = CancelToken::new();
    token.cancel();
    let streamed = std::cell::Cell::new(0usize);
    let sink = |_, _| streamed.set(streamed.get() + 1);
    let r = engine
        .serve(
            &ServeRequest::new(PROMPT)
                .options(opts(8))
                .cancel(token)
                .streaming(&sink),
        )
        .map(Served::into_response)
        .unwrap();
    let streamed = streamed.get();
    assert_eq!(r.outcome, ServeOutcome::Cancelled);
    assert!(r.tokens.is_empty());
    assert_eq!(streamed, 0, "no tokens may be produced after cancellation");
    assert_eq!(r.breakdown.total(), r.timings.ttft);
}

#[test]
fn cancel_mid_decode_returns_exact_partial_prefix() {
    let engine = engine();
    let complete = engine.serve(&ServeRequest::new(PROMPT).options(opts(8).clone())).map(Served::into_response).unwrap();
    assert_eq!(complete.outcome, ServeOutcome::Complete);
    assert!(complete.tokens.len() > 3, "need enough output to truncate");

    // Cancel from the streaming callback after the third token: the
    // decode loop notices at the top of the next iteration, so exactly
    // three tokens come back.
    let token = CancelToken::new();
    let observer = token.clone();
    let sink = |_, n| {
        if n == 3 {
            observer.cancel();
        }
    };
    let r = engine
        .serve(
            &ServeRequest::new(PROMPT)
                .options(opts(8))
                .cancel(token)
                .streaming(&sink),
        )
        .map(Served::into_response)
        .unwrap();
    assert_eq!(r.outcome, ServeOutcome::Cancelled);
    assert_eq!(r.tokens.len(), 3, "one decode step of abort latency, no more");
    assert_eq!(r.tokens[..], complete.tokens[..3], "partial is a prefix");
}

#[test]
fn cancellation_wins_over_an_expired_deadline() {
    // Both interruptions apply; the explicit cancel is reported because
    // it names the caller's intent.
    let engine = engine();
    let token = CancelToken::new();
    token.cancel();
    let r = engine
        .serve(&ServeRequest::new(PROMPT).options(opts(4).clone().deadline(Duration::ZERO).cancel(token).clone())).map(Served::into_response)
        .unwrap();
    assert_eq!(r.outcome, ServeOutcome::Cancelled);
}

#[test]
fn generous_deadline_does_not_perturb_the_serve() {
    let engine = engine();
    let plain = engine.serve(&ServeRequest::new(PROMPT).options(opts(6).clone())).map(Served::into_response).unwrap();
    let bounded = engine
        .serve(&ServeRequest::new(PROMPT).options(opts(6).clone().deadline(Duration::from_secs(3600)).cancel(CancelToken::new()).clone())).map(Served::into_response)
        .unwrap();
    assert_eq!(bounded.outcome, ServeOutcome::Complete);
    assert_eq!(bounded.tokens, plain.tokens);
    assert_eq!(bounded.text, plain.text);
}

#[test]
fn baseline_serve_honours_deadlines_too() {
    let engine = engine();
    let r = engine
        .serve(&ServeRequest::new(PROMPT).options(opts(8).clone().deadline(Duration::ZERO).clone()).baseline(true)).map(Served::into_response)
        .unwrap();
    assert_eq!(r.outcome, ServeOutcome::DeadlineExceeded);
    assert!(r.tokens.is_empty());
}
