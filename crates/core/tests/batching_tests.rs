//! Continuous-batching identity guarantees: a greedy serve produces
//! **byte-identical** output whether it runs alone through
//! [`PromptCache::serve`] or joins an in-flight batch of any size and
//! any membership history — mixed cache states, staggered joins,
//! cancellations, deadlines, and seeded temperature sampling included.

use prompt_cache::{
    BatchConfig, BatchScheduler, CancelToken, EngineConfig, PromptCache, Response, ServeOptions,
    ServeOutcome, ServeRequest, Served, Telemetry,
};
use pc_model::{Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use std::time::Duration;

const CORPUS: &str = "the miami coast has warm beaches surf and sun all year \
    tokyo offers temples gardens and remarkable food in every district \
    plan a detailed trip of days for a traveler who loves the water \
    you are a helpful travel assistant highlight surf spots please \
    answer the following question about documents provided above \
    what should i pack for the journey tell me more about it";

const SCHEMA: &str = r#"
  <schema name="trip">
    you are a helpful travel assistant
    <module name="plan">plan a detailed trip of <param name="duration" len="3"/></module>
    <union>
      <module name="miami">the miami coast has warm beaches surf and sun</module>
      <module name="tokyo">tokyo offers temples gardens and remarkable food</module>
    </union>
  </schema>"#;

/// Prompts with distinct cache states: fully cached (module only),
/// partially cached (module + novel suffix), parameterised, and fully
/// uncached (no module import at all).
const PROMPTS: [&str; 7] = [
    r#"<prompt schema="trip"><miami/>highlight surf spots please</prompt>"#,
    r#"<prompt schema="trip"><tokyo/>what should i pack</prompt>"#,
    r#"<prompt schema="trip"><plan duration="days for traveler"/><miami/>tell me more</prompt>"#,
    r#"<prompt schema="trip"><miami/></prompt>"#,
    r#"<prompt schema="trip">answer the following question</prompt>"#,
    r#"<prompt schema="trip"><plan duration="days"/><tokyo/>plan a trip</prompt>"#,
    r#"<prompt schema="trip"><plan duration="days"/>tell me more about it</prompt>"#,
];

fn engine() -> PromptCache {
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 42),
        tokenizer,
        EngineConfig::default(),
    );
    engine.register_schema(SCHEMA).unwrap();
    engine
}

fn solo(engine: &PromptCache, prompt: &str, options: &ServeOptions) -> Response {
    engine
        .serve(&ServeRequest::new(prompt).options(options.clone()))
        .map(Served::into_response)
        .unwrap()
}

/// Drives the scheduler until every admitted sequence retires.
fn drain(sched: &mut BatchScheduler<'_>) -> Vec<(u64, Response)> {
    let mut out = Vec::new();
    while !sched.is_idle() {
        for (id, result) in sched.step() {
            out.push((id, result.unwrap()));
        }
    }
    out.sort_by_key(|(id, _)| *id);
    out
}

#[test]
fn batches_of_every_size_match_solo_byte_for_byte() {
    let engine = engine();
    let options = ServeOptions::default().max_new_tokens(8);
    let references: Vec<Response> = PROMPTS.iter().map(|p| solo(&engine, p, &options)).collect();
    for batch_size in [1usize, 2, 4, 7] {
        let mut sched =
            BatchScheduler::new(&engine, BatchConfig::default().max_batch_size(batch_size));
        for (i, prompt) in PROMPTS.iter().take(batch_size).enumerate() {
            sched.admit(i as u64, prompt, &options).unwrap();
        }
        assert_eq!(sched.in_flight(), batch_size);
        let results = drain(&mut sched);
        assert_eq!(results.len(), batch_size);
        for (id, response) in results {
            let reference = &references[id as usize];
            assert_eq!(response.tokens, reference.tokens, "batch={batch_size} id={id}");
            assert_eq!(response.text, reference.text, "batch={batch_size} id={id}");
            assert_eq!(response.outcome, ServeOutcome::Complete);
            // Cache accounting is per-sequence, unchanged by batching.
            assert_eq!(response.stats.cached_tokens, reference.stats.cached_tokens);
            assert_eq!(response.stats.bytes_reused, reference.stats.bytes_reused);
        }
    }
}

#[test]
fn staggered_joins_and_leaves_preserve_identity() {
    let engine = engine();
    // Different budgets force sequences to leave at different steps
    // while others keep decoding.
    let budgets = [3usize, 9, 5, 12, 7];
    let references: Vec<Response> = PROMPTS
        .iter()
        .zip(budgets)
        .map(|(p, n)| solo(&engine, p, &ServeOptions::default().max_new_tokens(n)))
        .collect();

    let mut sched = BatchScheduler::new(&engine, BatchConfig::default().max_batch_size(8));
    let mut results = Vec::new();
    // Two join immediately; the rest join one by one mid-decode of the
    // existing batch.
    sched
        .admit(0, PROMPTS[0], &ServeOptions::default().max_new_tokens(budgets[0]))
        .unwrap();
    sched
        .admit(1, PROMPTS[1], &ServeOptions::default().max_new_tokens(budgets[1]))
        .unwrap();
    for late in 2..budgets.len() {
        for (id, result) in sched.step() {
            results.push((id, result.unwrap()));
        }
        sched
            .admit(
                late as u64,
                PROMPTS[late],
                &ServeOptions::default().max_new_tokens(budgets[late]),
            )
            .unwrap();
    }
    results.extend(drain(&mut sched));
    results.sort_by_key(|(id, _)| *id);

    assert_eq!(results.len(), budgets.len());
    for (id, response) in results {
        let reference = &references[id as usize];
        assert_eq!(response.tokens, reference.tokens, "id={id}");
        assert_eq!(response.tokens.len(), budgets[id as usize].min(reference.tokens.len()));
    }
}

#[test]
fn cancel_mid_batch_returns_prefix_and_spares_the_rest() {
    let engine = engine();
    let options = ServeOptions::default().max_new_tokens(10);
    let references: Vec<Response> = PROMPTS
        .iter()
        .take(4)
        .map(|p| solo(&engine, p, &options))
        .collect();

    let token = CancelToken::new();
    let mut sched = BatchScheduler::new(&engine, BatchConfig::default().max_batch_size(4));
    for (i, prompt) in PROMPTS.iter().take(4).enumerate() {
        let mut opts = options.clone();
        if i == 2 {
            opts = opts.cancel(token.clone());
        }
        sched.admit(i as u64, prompt, &opts).unwrap();
    }
    // Three decode ticks, then fire the cancel: sequence 2 retires with
    // a 3-token prefix while the other three run to completion.
    let mut results = Vec::new();
    for _ in 0..3 {
        for (id, result) in sched.step() {
            results.push((id, result.unwrap()));
        }
    }
    token.cancel();
    results.extend(drain(&mut sched));
    results.sort_by_key(|(id, _)| *id);

    for (id, response) in results {
        let reference = &references[id as usize];
        if id == 2 {
            assert_eq!(response.outcome, ServeOutcome::Cancelled);
            assert_eq!(response.tokens.len(), 3, "one step of abort latency, no more");
            assert_eq!(response.tokens[..], reference.tokens[..3], "partial is a prefix");
        } else {
            assert_eq!(response.outcome, ServeOutcome::Complete);
            assert_eq!(response.tokens, reference.tokens, "survivor id={id} perturbed");
        }
    }
}

#[test]
fn expired_deadline_leaves_the_batch_without_decoding() {
    let engine = engine();
    let mut sched = BatchScheduler::new(&engine, BatchConfig::default().max_batch_size(4));
    let healthy = ServeOptions::default().max_new_tokens(4);
    let dead = ServeOptions::default().max_new_tokens(4).deadline(Duration::ZERO);
    sched.admit(0, PROMPTS[0], &healthy).unwrap();
    sched.admit(1, PROMPTS[1], &dead).unwrap();
    let results = drain(&mut sched);
    let reference = solo(&engine, PROMPTS[0], &healthy);
    for (id, response) in results {
        match id {
            0 => {
                assert_eq!(response.outcome, ServeOutcome::Complete);
                assert_eq!(response.tokens, reference.tokens);
            }
            1 => {
                assert_eq!(response.outcome, ServeOutcome::DeadlineExceeded);
                assert!(response.tokens.is_empty());
                // The TTFT invariant survives the early exit.
                assert_eq!(response.breakdown.total(), response.timings.ttft);
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn seeded_temperature_sampling_is_deterministic_in_a_batch() {
    let engine = engine();
    let options = ServeOptions::default().max_new_tokens(8).temperature(0.7, 123);
    let references: Vec<Response> = PROMPTS
        .iter()
        .take(3)
        .map(|p| solo(&engine, p, &options))
        .collect();
    let mut sched = BatchScheduler::new(&engine, BatchConfig::default().max_batch_size(3));
    for (i, prompt) in PROMPTS.iter().take(3).enumerate() {
        sched.admit(i as u64, prompt, &options).unwrap();
    }
    for (id, response) in drain(&mut sched) {
        assert_eq!(response.tokens, references[id as usize].tokens, "id={id}");
    }
}

#[test]
fn zero_budget_and_admission_errors_resolve_without_decoding() {
    let engine = engine();
    let mut sched = BatchScheduler::new(&engine, BatchConfig::default().max_batch_size(4));
    sched
        .admit(0, PROMPTS[0], &ServeOptions::default().max_new_tokens(0))
        .unwrap();
    assert_eq!(sched.in_flight(), 0, "zero budget never joins the batch");
    assert!(!sched.is_idle(), "completion is pending delivery");
    let results = sched.step();
    assert_eq!(results.len(), 1);
    let response = results.into_iter().next().unwrap().1.unwrap();
    assert!(response.tokens.is_empty());
    assert_eq!(response.outcome, ServeOutcome::Complete);

    // Unknown schema: the admission itself fails, the batch is untouched.
    let err = sched.admit(1, r#"<prompt schema="ghost">x</prompt>"#, &ServeOptions::default());
    assert!(err.is_err());
    assert!(sched.is_idle());
}

#[test]
fn batch_telemetry_records_occupancy_and_tokens() {
    let telemetry = Telemetry::new();
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 42),
        tokenizer,
        EngineConfig::default().telemetry(telemetry.clone()),
    );
    engine.register_schema(SCHEMA).unwrap();

    let options = ServeOptions::default().max_new_tokens(4);
    let mut sched = BatchScheduler::new(&engine, BatchConfig::default().max_batch_size(2));
    sched.admit(0, PROMPTS[0], &options).unwrap();
    sched.admit(1, PROMPTS[1], &options).unwrap();
    let results = drain(&mut sched);
    let produced: u64 = results.iter().map(|(_, r)| r.tokens.len() as u64).sum();

    let snap = telemetry.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(counter("pc_tokens_generated_total"), produced);
    assert!(counter("pc_batch_steps_total") > 0);
    let occupancy = snap
        .histograms
        .iter()
        .find(|h| h.name == "pc_batch_occupancy")
        .expect("occupancy histogram registered");
    assert_eq!(occupancy.count, counter("pc_batch_steps_total"));
    let gauge = snap
        .gauges
        .iter()
        .find(|(n, _)| n == "pc_batch_size")
        .map(|(_, v)| *v)
        .unwrap();
    assert_eq!(gauge, 0, "batch drained, gauge back to zero");
}
