//! Warm-restart integration tests: `PromptCache::snapshot()` persists
//! the module library to the store's disk tier, a fresh engine over the
//! same directory `restore()`s it, and registration preloads the
//! restored states instead of re-encoding — serving byte-identically to
//! the pre-restart engine (f32 tier) or within the quantization bound
//! (int8 tier).

use pc_cache::{ColdEncoding, DiskConfig, StoreConfig, Tier};
use pc_model::{Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, Response, ServeOptions, ServeRequest, Served};
use std::path::{Path, PathBuf};

const CORPUS: &str =
    "alpha beta gamma delta epsilon zeta eta theta question one two three four";
const SCHEMA: &str = r#"<schema name="s">
    <module name="ctx">alpha beta gamma delta epsilon zeta eta theta</module>
    <module name="extra">one two three four</module>
  </schema>"#;
const PROMPT: &str = r#"<prompt schema="s"><ctx/><extra/>question</prompt>"#;

fn bare_engine(config: EngineConfig) -> PromptCache {
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let vocab = tokenizer.vocab_size().max(64);
    PromptCache::new(Model::new(ModelConfig::llama_tiny(vocab), 5), tokenizer, config)
}

fn disk_config(dir: &Path, encoding: ColdEncoding) -> EngineConfig {
    EngineConfig::default().store(
        StoreConfig::default().disk(DiskConfig::new(dir.to_path_buf()).encoding(encoding)),
    )
}

fn opts() -> ServeOptions {
    ServeOptions::default().max_new_tokens(4)
}

fn serve(engine: &PromptCache) -> Response {
    engine
        .serve(&ServeRequest::new(PROMPT).options(opts()))
        .map(Served::into_response)
        .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pc-persist-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn snapshot_then_restore_serves_byte_identically() {
    let dir = temp_dir("roundtrip");

    // Pre-restart engine: encode, serve, snapshot the library to disk.
    let healthy;
    let persisted;
    {
        let engine = bare_engine(disk_config(&dir, ColdEncoding::F32));
        engine.register_schema(SCHEMA).unwrap();
        healthy = serve(&engine);
        assert_eq!(healthy.stats.degraded_spans, 0);
        persisted = engine.snapshot().unwrap();
        assert!(persisted >= 2, "both schema modules snapshot");
    }

    // Post-restart engine: restore first, then register — registration
    // validates the restored states against the schema layout and
    // preloads them instead of re-encoding.
    let engine = bare_engine(disk_config(&dir, ColdEncoding::F32));
    let restored = engine.restore().unwrap();
    assert_eq!(restored, persisted, "the whole library survives restart");
    assert!(engine.store_stats().promotions as usize >= restored);
    engine.register_schema(SCHEMA).unwrap();

    let warm = serve(&engine);
    assert_eq!(warm.stats.degraded_spans, 0, "no recompute after restore");
    assert_eq!(warm.stats.cached_tokens, healthy.stats.cached_tokens);
    assert_eq!(warm.tokens, healthy.tokens, "restart is byte-identical");
    assert_eq!(warm.text, healthy.text);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn registration_preloads_lazily_without_an_explicit_restore() {
    // restore() is an optimization, not a requirement: lookups fall
    // through host → disk, so registration over a warm directory pulls
    // each matching module up on its own.
    let dir = temp_dir("lazy");
    let healthy;
    {
        let engine = bare_engine(disk_config(&dir, ColdEncoding::F32));
        engine.register_schema(SCHEMA).unwrap();
        healthy = serve(&engine);
        engine.snapshot().unwrap();
    }

    let engine = bare_engine(disk_config(&dir, ColdEncoding::F32));
    engine.register_schema(SCHEMA).unwrap();
    let stats = engine.store_stats();
    assert!(stats.disk_hits >= 2, "registration preloaded from disk: {stats:?}");
    assert!(stats.promotions >= 2, "{stats:?}");

    let warm = serve(&engine);
    assert_eq!(warm.stats.degraded_spans, 0);
    assert_eq!(warm.tokens, healthy.tokens);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_and_restore_require_a_disk_tier() {
    let engine = bare_engine(EngineConfig::default());
    engine.register_schema(SCHEMA).unwrap();
    for err in [
        engine.snapshot().unwrap_err(),
        engine.restore().unwrap_err(),
    ] {
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}

#[test]
fn int8_restart_stays_within_the_quantization_bound() {
    // A quantized snapshot is lossy by design; the restart contract is
    // a bounded drift: positions exact, every state element within the
    // per-row int8 step (≤ max|row| / 127).
    let dir = temp_dir("int8");
    let originals;
    {
        let engine = bare_engine(disk_config(&dir, ColdEncoding::Int8));
        engine.register_schema(SCHEMA).unwrap();
        serve(&engine);
        // Capture the exact f32 states still resident in host memory.
        originals = engine
            .store()
            .snapshot()
            .into_iter()
            .map(|row| {
                let states = engine.store().get(&row.key, Tier::Host).unwrap();
                (row.key, states)
            })
            .collect::<Vec<_>>();
        assert!(engine.snapshot().unwrap() >= originals.len());
    }

    let engine = bare_engine(disk_config(&dir, ColdEncoding::Int8));
    assert_eq!(engine.restore().unwrap(), originals.len());
    for (key, original) in &originals {
        let back = engine.store().get(key, Tier::Host).unwrap();
        assert_eq!(back.positions(), original.positions(), "positions exact");
        assert_eq!(back.len(), original.len());
        for layer in 0..original.num_layers() {
            let bound = original
                .keys(layer)
                .iter()
                .chain(original.values(layer).iter())
                .fold(0.0f32, |m, x| m.max(x.abs()))
                / 127.0
                + 1e-6;
            for (x, y) in original.keys(layer).iter().zip(back.keys(layer)) {
                assert!((x - y).abs() <= bound, "key drift {x} vs {y} (bound {bound})");
            }
            for (x, y) in original.values(layer).iter().zip(back.values(layer)) {
                assert!((x - y).abs() <= bound, "value drift {x} vs {y} (bound {bound})");
            }
        }
    }

    // The drifted states still serve end-to-end.
    engine.register_schema(SCHEMA).unwrap();
    let warm = serve(&engine);
    assert_eq!(warm.stats.degraded_spans, 0, "quantized states validate and serve");
    let _ = std::fs::remove_dir_all(&dir);
}
