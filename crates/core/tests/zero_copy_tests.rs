//! Zero-copy serving guarantees:
//!
//! 1. served responses are **byte-identical** with zero-copy on vs off
//!    (the segmented kernel computes in the same float order as the
//!    contiguous one);
//! 2. a fully-cached prompt performs **zero KV memcpy** for cached tokens
//!    (`bytes_copied == 0`, `pc_kv_bytes_copied_total == 0`);
//! 3. concurrent sessions of one schema **alias** the store's module
//!    states by pointer, so physical KV memory stays flat as sessions
//!    grow while logical bytes scale linearly.

use pc_model::{view, Family, KvSeq, Model, ModelConfig};
use pc_tokenizer::WordTokenizer;
use prompt_cache::{EngineConfig, PromptCache, ServeOptions, Telemetry};
use std::sync::Arc;
use prompt_cache::{ServeRequest, Served};

const CORPUS: &str = "the miami coast has warm beaches surf and sun all year \
    tokyo offers temples gardens and remarkable food in every district \
    plan a detailed trip of days for a traveler who loves the water \
    you are a helpful travel assistant highlight surf spots please \
    answer the following question about documents provided above";

const SCHEMA: &str = r#"
  <schema name="trip">
    you are a helpful travel assistant
    <module name="plan">plan a detailed trip of <param name="duration" len="3"/></module>
    <union>
      <module name="miami">the miami coast has warm beaches surf and sun</module>
      <module name="tokyo">tokyo offers temples gardens and remarkable food</module>
    </union>
  </schema>"#;

fn engine_with(family: Family, zero_copy: bool, telemetry: Telemetry) -> PromptCache {
    let cfg = match family {
        Family::Llama => ModelConfig::llama_tiny(256),
        Family::Falcon => ModelConfig::falcon_tiny(256),
        Family::Mpt => ModelConfig::mpt_tiny(256),
        Family::Gpt2 => ModelConfig::gpt2_tiny(256),
    };
    let model = Model::new(cfg, 42);
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let engine = PromptCache::new(
        model,
        tokenizer,
        EngineConfig::default().clone().zero_copy(zero_copy).telemetry(telemetry),
    );
    engine.register_schema(SCHEMA).unwrap();
    engine
}

/// Prompts covering the serve-path shapes: plain import + text, filled
/// parameter (segment splitting), multi-module, and module-only (the
/// truncate-into-shared-segment path).
const PROMPTS: [&str; 4] = [
    r#"<prompt schema="trip"><miami/>highlight surf spots please</prompt>"#,
    r#"<prompt schema="trip"><plan duration="days for traveler"/><miami/>highlight surf spots</prompt>"#,
    r#"<prompt schema="trip"><plan duration="days"/><tokyo/>plan a trip</prompt>"#,
    r#"<prompt schema="trip"><miami/></prompt>"#,
];

#[test]
fn responses_byte_identical_zero_copy_on_vs_off() {
    for family in [Family::Llama, Family::Falcon, Family::Mpt, Family::Gpt2] {
        let shared = engine_with(family, true, Telemetry::disabled());
        let copied = engine_with(family, false, Telemetry::disabled());
        let opts = ServeOptions::default().max_new_tokens(8);
        for prompt in PROMPTS {
            let a = shared.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).unwrap();
            let b = copied.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).unwrap();
            assert_eq!(a.tokens, b.tokens, "family {family:?}, prompt {prompt}");
            assert_eq!(a.text, b.text, "family {family:?}, prompt {prompt}");
            // Identical reuse accounting, opposite transport.
            assert_eq!(a.stats.bytes_reused, b.stats.bytes_reused);
            assert_eq!(a.stats.cached_tokens, b.stats.cached_tokens);
            assert_eq!(a.stats.bytes_copied, 0, "zero-copy path memcpy'd");
            assert_eq!(b.stats.bytes_shared, 0, "copy path shared");
            assert_eq!(a.stats.bytes_shared, a.stats.bytes_reused);
            assert_eq!(b.stats.bytes_copied, b.stats.bytes_reused);
        }
    }
}

#[test]
fn fully_cached_prompt_performs_zero_kv_memcpy() {
    let telemetry = Telemetry::new();
    let engine = engine_with(Family::Llama, true, telemetry.clone());
    let r = engine
        .serve(&ServeRequest::new(r#"<prompt schema="trip"><miami/>highlight surf spots please</prompt>"#).max_new_tokens(4)).map(Served::into_response)
        .unwrap();
    assert!(r.stats.cached_tokens > 0);
    assert!(r.stats.bytes_reused > 0);
    assert_eq!(r.stats.bytes_shared, r.stats.bytes_reused);
    assert_eq!(r.stats.bytes_copied, 0, "cached tokens were memcpy'd");

    let snap = telemetry.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(counter("pc_kv_bytes_copied_total"), 0);
    assert_eq!(
        counter("pc_kv_bytes_shared_total"),
        r.stats.bytes_shared as u64
    );
}

#[test]
fn sessions_alias_modules_and_physical_bytes_stay_flat() {
    let engine = engine_with(Family::Llama, true, Telemetry::disabled());
    let opts = ServeOptions::default().max_new_tokens(4);
    let prompt = r#"<prompt schema="trip"><miami/>highlight surf spots please</prompt>"#;

    let sessions: Vec<_> = (0..6)
        .map(|_| {
            engine
                .serve(&ServeRequest::new(prompt).options(opts.clone()).session(true))
                .unwrap()
                .session
                .expect("session requested")
        })
        .collect();

    // Every session's shared segments alias shared allocations by
    // pointer identity, not equal copies: the store-owned canonical
    // states at first, then — once the relocated placement turns hot —
    // the engine's single materialised rotated view of them. The first
    // session always reads straight from the store.
    let store_states: Vec<_> = engine
        .schema_span_states("trip")
        .into_iter()
        .flatten()
        .collect();
    for view in &sessions {
        assert!(!view.segments().is_empty());
    }
    for seg in sessions[0].segments() {
        assert!(
            store_states.iter().any(|s| Arc::ptr_eq(seg.cache(), s)),
            "first session segment does not alias the store"
        );
    }
    // Hot sessions all share the same allocations with each other —
    // whichever mix of canonical entries and rotated views serves them.
    for (a, b) in sessions[5].segments().iter().zip(sessions[4].segments()) {
        assert!(
            Arc::ptr_eq(a.cache(), b.cache()),
            "repeat sessions do not share segment allocations"
        );
    }
    // And every allocation any session reads is either a store entry or
    // shared with another session (never a private per-session copy).
    for (i, view) in sessions.iter().enumerate() {
        for seg in view.segments() {
            let shared = store_states.iter().any(|s| Arc::ptr_eq(seg.cache(), s))
                || sessions
                    .iter()
                    .enumerate()
                    .any(|(j, other)| {
                        j != i
                            && other
                                .segments()
                                .iter()
                                .any(|o| Arc::ptr_eq(o.cache(), seg.cache()))
                    });
            assert!(shared, "session {i} holds an unshared segment copy");
        }
    }

    // Physical bytes = one copy of the shared modules (plus at most one
    // bounded rotated view of the hot placement) + per-session tails;
    // adding sessions adds only tail bytes.
    let tail_bytes: usize = sessions.iter().map(|v| v.tail().size_bytes()).sum();
    let shared_once = view::physical_bytes(&sessions) - tail_bytes;
    assert!(shared_once >= sessions[0].shared_bytes());
    assert!(shared_once <= 2 * sessions[0].shared_bytes());
    assert_eq!(
        view::physical_bytes(sessions.iter().take(3)),
        shared_once
            + sessions
                .iter()
                .take(3)
                .map(|v| v.tail().size_bytes())
                .sum::<usize>()
    );
    // The duplicating baseline scales with the session count.
    assert_eq!(
        view::logical_bytes(&sessions),
        6 * sessions[0].logical_bytes()
    );
    assert!(view::logical_bytes(&sessions) > view::physical_bytes(&sessions));
}

#[test]
fn session_views_continue_decoding_into_private_tails() {
    // Continuing one session must not disturb another sharing the same
    // modules: tails are private, segments are frozen.
    let engine = engine_with(Family::Llama, true, Telemetry::disabled());
    let opts = ServeOptions::default().max_new_tokens(3);
    let prompt = r#"<prompt schema="trip"><miami/>highlight surf spots please</prompt>"#;
    let request = ServeRequest::new(prompt).options(opts.clone()).session(true);
    let served_a = engine.serve(&request).unwrap();
    let served_b = engine.serve(&request).unwrap();
    let (ra, mut a) = (served_a.response, served_a.session.expect("session"));
    let (rb, b) = (served_b.response, served_b.session.expect("session"));
    assert_eq!(ra.tokens, rb.tokens);
    let b_before = b.materialize();

    // Drive session A a few more tokens.
    let model = engine.model();
    let next = a.positions().iter().max().unwrap() + 1;
    model
        .prefill(&[ra.tokens[ra.tokens.len() - 1]], &[next], &mut a)
        .unwrap();
    assert!(a.len() > b.len());
    // Session B's logical content is untouched.
    assert_eq!(b.materialize(), b_before);
}
