//! Sample generation: documents-as-modules prompts with ground truth.

use crate::corpus::Corpus;
use crate::datasets::{Category, DatasetSpec};

/// One evaluation sample: documents (→ prompt modules), an uncached
/// directive, and the planted ground-truth answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Dataset name this sample belongs to.
    pub dataset: &'static str,
    /// Context documents, one per prompt module.
    pub docs: Vec<String>,
    /// Uncached task directive / question.
    pub question: String,
    /// Ground-truth answer.
    pub answer: String,
}

impl Sample {
    /// Approximate context size in whitespace tokens.
    pub fn context_words(&self) -> usize {
        self.docs.iter().map(|d| d.split_whitespace().count()).sum()
    }

    /// Approximate directive size in whitespace tokens.
    pub fn question_words(&self) -> usize {
        self.question.split_whitespace().count()
    }

    /// The PML schema for this sample: one `<module>` per document, named
    /// `doc-0…doc-N` — "we defined the documents in the LongBench
    /// datasets … as prompt modules" (§5.1).
    pub fn schema_pml(&self, schema_name: &str) -> String {
        let mut out = format!("<schema name=\"{schema_name}\">");
        for (i, doc) in self.docs.iter().enumerate() {
            out.push_str(&format!("<module name=\"doc-{i}\">{}</module>", escape(doc)));
        }
        out.push_str("</schema>");
        out
    }

    /// The PML prompt importing every document and appending the
    /// directive as uncached text.
    pub fn prompt_pml(&self, schema_name: &str) -> String {
        let mut out = format!("<prompt schema=\"{schema_name}\">");
        for i in 0..self.docs.len() {
            out.push_str(&format!("<doc-{i}/>"));
        }
        out.push_str(&escape(&self.question));
        out.push_str("</prompt>");
        out
    }

    /// The sample as plain text (documents then directive) — the
    /// baseline's input.
    pub fn plain_text(&self) -> String {
        let mut parts = self.docs.clone();
        parts.push(self.question.clone());
        parts.join(" ")
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// A deterministic sample generator for one dataset.
///
/// `scale` shrinks the paper-scale token budgets so the real (tiny-model)
/// engine can run the workload: `scale = 1.0` reproduces LongBench-sized
/// prompts for the simulator, `scale = 0.05` gives a few hundred tokens
/// for measured runs.
#[derive(Debug)]
pub struct Workload {
    spec: &'static DatasetSpec,
    corpus: Corpus,
    scale: f64,
}

impl Workload {
    /// Creates a workload for `spec` rooted at `seed`.
    pub fn new(spec: &'static DatasetSpec, seed: u64, scale: f64) -> Self {
        Workload {
            spec,
            corpus: Corpus::new(seed),
            scale,
        }
    }

    /// The dataset spec.
    pub fn spec(&self) -> &'static DatasetSpec {
        self.spec
    }

    /// Generates the `index`-th sample.
    pub fn sample(&self, index: u64) -> Sample {
        let ctx_words = ((self.spec.context_tokens as f64 * self.scale) as usize).max(16);
        let q_words = ((self.spec.question_tokens as f64 * self.scale) as usize).max(4);
        let num_docs = self.spec.num_docs;
        let per_doc = (ctx_words / num_docs).max(8);
        let base = index * 1000 + fnv(self.spec.name);

        let mut docs = Vec::with_capacity(num_docs);
        // Plant the fact in a deterministic "gold" document.
        let gold = (index as usize) % num_docs;
        let mut entity = String::new();
        let mut answer = String::new();
        for d in 0..num_docs {
            let id = base + d as u64;
            if matches!(self.spec.category, Category::Code) {
                docs.push(self.corpus.code_file(id, per_doc));
            } else if d == gold {
                let (doc, e, a) = self.corpus.document_with_fact(id, per_doc);
                entity = e;
                answer = a;
                docs.push(doc);
            } else {
                docs.push(self.corpus.document(id, per_doc));
            }
        }

        let (question, answer) = match self.spec.category {
            Category::Code => {
                // Completion target: the first function of the gold file.
                let reference = docs[gold]
                    .split('}')
                    .next()
                    .map(|s| format!("{s}}}"))
                    .unwrap_or_default();
                (
                    format!(
                        "complete the next function in the style of file {gold} {}",
                        filler(q_words.saturating_sub(10))
                    ),
                    reference,
                )
            }
            Category::Summarization => (
                format!(
                    "summarize the documents above in one sentence {}",
                    filler(q_words.saturating_sub(8))
                ),
                format!("the secret code for {entity} is {answer}"),
            ),
            Category::Synthetic => (
                format!(
                    "which document mentions {entity} answer with its number {}",
                    filler(q_words.saturating_sub(9))
                ),
                format!("document {gold}"),
            ),
            Category::FewShot => (
                format!(
                    "{} question what is the secret code for {entity} answer",
                    few_shot_block(q_words.saturating_sub(10), &self.corpus, base)
                ),
                answer,
            ),
            _ => (
                format!(
                    "what is the secret code for {entity} {}",
                    filler(q_words.saturating_sub(7))
                ),
                answer,
            ),
        };

        Sample {
            dataset: self.spec.name,
            docs,
            question: question.trim().to_owned(),
            answer,
        }
    }
}

fn filler(words: usize) -> String {
    std::iter::repeat("please answer precisely and concisely now")
        .flat_map(|s| s.split(' '))
        .take(words)
        .collect::<Vec<_>>()
        .join(" ")
}

fn few_shot_block(words: usize, corpus: &Corpus, base: u64) -> String {
    // Exemplar QA pairs, the uncached bulk of few-shot datasets.
    let mut out = Vec::new();
    let mut i = 0u64;
    while out.len() < words {
        let e = corpus.entity(base + 500 + i, 2);
        let a = corpus.answer(base + 500 + i, 2);
        for w in format!("example question what is the secret code for {e} answer {a}").split(' ')
        {
            if out.len() >= words {
                break;
            }
            out.push(w.to_owned());
        }
        i += 1;
    }
    out.join(" ")
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{DatasetSpec, ALL, FIGURE_SET};

    fn workload(name: &str, scale: f64) -> Workload {
        Workload::new(DatasetSpec::by_name(name).unwrap(), 7, scale)
    }

    #[test]
    fn samples_are_deterministic() {
        let w = workload("NarrativeQA", 0.05);
        assert_eq!(w.sample(3), w.sample(3));
        assert_ne!(w.sample(3), w.sample(4));
    }

    #[test]
    fn scale_controls_size() {
        let small = workload("GovReport", 0.02).sample(0);
        let large = workload("GovReport", 0.2).sample(0);
        assert!(large.context_words() > 5 * small.context_words());
    }

    #[test]
    fn token_budgets_roughly_match_spec() {
        for name in FIGURE_SET {
            let spec = DatasetSpec::by_name(name).unwrap();
            let s = Workload::new(spec, 1, 1.0).sample(0);
            let ctx = s.context_words() as f64;
            let expected = spec.context_tokens as f64;
            assert!(
                (ctx - expected).abs() / expected < 0.1,
                "{name}: {ctx} vs {expected}"
            );
        }
    }

    #[test]
    fn multi_doc_datasets_emit_multiple_modules() {
        let s = workload("MuSiQue", 0.05).sample(0);
        assert_eq!(s.docs.len(), 20);
        let single = workload("NarrativeQA", 0.05).sample(0);
        assert_eq!(single.docs.len(), 1);
    }

    #[test]
    fn qa_answer_is_planted_in_context() {
        let s = workload("2WikiMultihopQA", 0.1).sample(2);
        let joined = s.docs.join(" ");
        assert!(joined.contains(&s.answer), "{}", s.answer);
        assert!(s.question.contains("secret code"));
    }

    #[test]
    fn few_shot_directive_dominates_uncached_tokens() {
        let s = workload("TriviaQA", 0.1).sample(0);
        assert!(s.question_words() > 100);
        let narrative = workload("NarrativeQA", 0.1).sample(0);
        assert!(s.question_words() > 10 * narrative.question_words());
    }

    #[test]
    fn schema_and_prompt_pml_parse_and_resolve() {
        let s = workload("MultiNews", 0.05).sample(1);
        let schema = pc_pml::parse_schema(&s.schema_pml("mn")).unwrap();
        let prompt = pc_pml::parse_prompt(&s.prompt_pml("mn")).unwrap();
        let count = |t: &str| t.split_whitespace().count();
        let layout = pc_pml::layout::SchemaLayout::build(
            &schema,
            pc_pml::template::ChatTemplate::Plain,
            &count,
        );
        let resolved = pc_pml::resolve::resolve_prompt(&layout, &prompt, &count).unwrap();
        assert_eq!(resolved.cached_tokens(), s.context_words());
        assert_eq!(resolved.new_tokens(), s.question_words());
    }

    #[test]
    fn every_dataset_generates() {
        for spec in &ALL {
            let s = Workload::new(spec, 3, 0.02).sample(0);
            assert!(!s.docs.is_empty(), "{}", spec.name);
            assert!(!s.question.is_empty(), "{}", spec.name);
            assert!(!s.answer.is_empty(), "{}", spec.name);
        }
    }

    #[test]
    fn code_dataset_reference_is_prefix_like() {
        let s = workload("LCC", 0.05).sample(0);
        assert!(s.answer.starts_with("fn "), "{}", s.answer);
        assert!(s.answer.ends_with('}'));
    }

    #[test]
    fn oracle_scores_perfect_with_planted_answers() {
        // Sanity of the metric pipeline: an oracle that answers with the
        // ground truth scores 1.0 on its dataset metric.
        for name in FIGURE_SET {
            let spec = DatasetSpec::by_name(name).unwrap();
            let s = Workload::new(spec, 5, 0.05).sample(0);
            let score = crate::metrics::score(spec.metric, &s.answer, &s.answer);
            assert!((score - 1.0).abs() < 1e-9, "{name}");
        }
    }
}
