//! Synthetic LongBench-style workloads and evaluation metrics.
//!
//! The paper evaluates on the LongBench suite (Bai et al., 2023): "a
//! curated subsample of elongated data, ranging from 4K to 10K context
//! length, excerpts from 21 datasets across 6 categories", with documents
//! defined as prompt modules and task directives kept as uncached user
//! text. We cannot ship LongBench's copyrighted documents, so this crate
//! generates **deterministic synthetic equivalents** that preserve what
//! the experiments actually consume:
//!
//! * the context/question token split per dataset (which sets each
//!   dataset's cache-hit ratio and thus its TTFT curve);
//! * the document-per-module structure (multi-doc QA has many small
//!   modules, summarisation a few large ones, few-shot datasets a large
//!   uncached directive);
//! * extractive ground truth (a planted fact per sample) so the metric
//!   pipeline — token F1, Rouge-L, accuracy, edit similarity, the same
//!   metric families LongBench uses — runs end to end.
//!
//! All 21 datasets across the 6 categories are modelled ([`datasets::ALL`]);
//! the eight the paper prints in Figures 3–4 and Table 1 are
//! [`datasets::FIGURE_SET`].

#![warn(missing_docs)]

pub mod corpus;
pub mod datasets;
pub mod evaluate;
pub mod metrics;
pub mod workload;

pub use datasets::{Category, DatasetSpec, Metric};
pub use workload::{Sample, Workload};
