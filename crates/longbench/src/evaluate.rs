//! Aggregate evaluation: run many samples and summarise scores.
//!
//! Table 1 reports one score per (dataset, model); this harness produces
//! the same aggregation for any scoring function, with dispersion so the
//! reproduction can say "the cached/baseline delta is within noise"
//! quantitatively.

use crate::datasets::DatasetSpec;
use crate::metrics::score;
use crate::workload::{Sample, Workload};

/// Mean and standard deviation of a score set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Aggregate {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Sample count.
    pub n: usize,
}

impl Aggregate {
    /// Aggregates a score slice.
    pub fn of(scores: &[f64]) -> Aggregate {
        if scores.is_empty() {
            return Aggregate::default();
        }
        let n = scores.len();
        let mean = scores.iter().sum::<f64>() / n as f64;
        let var = scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        Aggregate {
            mean,
            std_dev: var.sqrt(),
            n,
        }
    }

    /// Whether another aggregate's mean lies within `sigmas` standard
    /// deviations of this one (the "comparable accuracy" criterion, with
    /// a small absolute floor for near-deterministic scores).
    pub fn comparable_to(&self, other: &Aggregate, sigmas: f64) -> bool {
        let tolerance = (self.std_dev.max(other.std_dev) * sigmas).max(0.05);
        (self.mean - other.mean).abs() <= tolerance
    }
}

/// The outcome of evaluating one system on one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// Dataset name.
    pub dataset: &'static str,
    /// Aggregate score under the dataset's metric.
    pub score: Aggregate,
}

/// Evaluates `predict` over `n` samples of a dataset: the closure maps a
/// sample to the system's prediction text, which is scored with the
/// dataset's own metric against the planted reference.
pub fn evaluate(
    spec: &'static DatasetSpec,
    seed: u64,
    scale: f64,
    n: usize,
    mut predict: impl FnMut(&Sample) -> String,
) -> EvalResult {
    let workload = Workload::new(spec, seed, scale);
    let scores: Vec<f64> = (0..n as u64)
        .map(|i| {
            let sample = workload.sample(i);
            let prediction = predict(&sample);
            score(spec.metric, &prediction, &sample.answer)
        })
        .collect();
    EvalResult {
        dataset: spec.name,
        score: Aggregate::of(&scores),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_mean_and_std() {
        let a = Aggregate::of(&[1.0, 1.0, 1.0]);
        assert_eq!(a.mean, 1.0);
        assert_eq!(a.std_dev, 0.0);
        let b = Aggregate::of(&[0.0, 1.0]);
        assert!((b.mean - 0.5).abs() < 1e-12);
        assert!((b.std_dev - 0.5).abs() < 1e-12);
        assert_eq!(Aggregate::of(&[]).n, 0);
    }

    #[test]
    fn comparability_uses_dispersion() {
        let tight_a = Aggregate {
            mean: 0.50,
            std_dev: 0.01,
            n: 10,
        };
        let tight_b = Aggregate {
            mean: 0.58,
            std_dev: 0.01,
            n: 10,
        };
        assert!(!tight_a.comparable_to(&tight_b, 2.0));
        let loose_b = Aggregate {
            mean: 0.58,
            std_dev: 0.10,
            n: 10,
        };
        assert!(tight_a.comparable_to(&loose_b, 2.0));
        // Absolute floor: near-identical deterministic scores compare fine.
        let det_a = Aggregate { mean: 0.30, std_dev: 0.0, n: 3 };
        let det_b = Aggregate { mean: 0.32, std_dev: 0.0, n: 3 };
        assert!(det_a.comparable_to(&det_b, 2.0));
    }

    #[test]
    fn oracle_scores_one() {
        let spec = DatasetSpec::by_name("NarrativeQA").unwrap();
        let result = evaluate(spec, 5, 0.02, 4, |sample| sample.answer.clone());
        assert_eq!(result.score.mean, 1.0);
        assert_eq!(result.score.n, 4);
    }

    #[test]
    fn silent_system_scores_zero() {
        let spec = DatasetSpec::by_name("2WikiMultihopQA").unwrap();
        let result = evaluate(spec, 5, 0.02, 3, |_| String::new());
        assert_eq!(result.score.mean, 0.0);
    }

    #[test]
    fn extractive_heuristic_beats_silence() {
        // A trivial extractive "system": answer with the sentence around
        // the query entity. Exercises the full metric path with a
        // non-degenerate prediction.
        let spec = DatasetSpec::by_name("NarrativeQA").unwrap();
        let result = evaluate(spec, 9, 0.05, 3, |sample| {
            let entity = sample
                .question
                .split_whitespace()
                .find(|w| w.starts_with("entity"))
                .unwrap_or_default();
            let joined = sample.docs.join(" ");
            let words: Vec<&str> = joined.split_whitespace().collect();
            words
                .iter()
                .position(|w| *w == entity)
                .map(|i| words[i..(i + 3).min(words.len())].join(" "))
                .unwrap_or_default()
        });
        // Prediction ≈ "entityX is codeY" → high overlap with "codeY".
        assert!(result.score.mean > 0.3, "{result:?}");
    }
}
