//! Deterministic synthetic document generation.
//!
//! Documents are lowercase ASCII word sequences drawn from a fixed
//! vocabulary, organised into sentences, with named entities and planted
//! facts ("the secret code for X is Y") that questions can target. The
//! same `(seed, doc id)` always produces the same document, byte for
//! byte, on every platform.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The base vocabulary documents draw from.
const WORDS: [&str; 64] = [
    "the", "a", "of", "and", "in", "to", "was", "is", "for", "on", "with", "as", "by", "that",
    "city", "river", "council", "report", "meeting", "project", "committee", "member", "plan",
    "budget", "system", "study", "region", "record", "season", "village", "company", "treaty",
    "valley", "station", "harbor", "garden", "market", "castle", "bridge", "museum", "library",
    "found", "built", "noted", "early", "later", "north", "south", "first", "second", "large",
    "small", "known", "major", "local", "annual", "formal", "recent", "brief", "final", "joint",
    "public", "famous", "historic",
];

/// A deterministic document generator.
#[derive(Debug)]
pub struct Corpus {
    seed: u64,
}

impl Corpus {
    /// Creates a corpus rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        Corpus { seed }
    }

    fn rng(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(stream))
    }

    /// A document of roughly `words` words, identified by `id`.
    pub fn document(&self, id: u64, words: usize) -> String {
        let mut rng = self.rng(id);
        let mut out = Vec::with_capacity(words);
        while out.len() < words {
            let sentence_len = rng.gen_range(8..15).min(words - out.len()).max(1);
            for _ in 0..sentence_len {
                out.push(WORDS[rng.gen_range(0..WORDS.len())]);
            }
        }
        out.join(" ")
    }

    /// A stable entity name for `(doc id, slot)`.
    pub fn entity(&self, id: u64, slot: u64) -> String {
        let mut rng = self.rng(id ^ (slot << 32) ^ 0xE7);
        format!("entity{}", rng.gen_range(0..100_000))
    }

    /// A stable answer word for `(doc id, slot)`.
    pub fn answer(&self, id: u64, slot: u64) -> String {
        let mut rng = self.rng(id ^ (slot << 32) ^ 0xA5);
        format!("code{}", rng.gen_range(0..100_000))
    }

    /// A document with a planted fact: `words` filler words plus the
    /// sentence "the secret code for {entity} is {answer}" inserted at a
    /// deterministic offset. Returns `(document, entity, answer)`.
    pub fn document_with_fact(&self, id: u64, words: usize) -> (String, String, String) {
        let entity = self.entity(id, 1);
        let answer = self.answer(id, 1);
        let body = self.document(id, words.saturating_sub(8).max(1));
        let mut parts: Vec<&str> = body.split(' ').collect();
        let fact = format!("the secret code for {entity} is {answer}");
        let insert_at = {
            let mut rng = self.rng(id ^ 0x51);
            rng.gen_range(0..=parts.len())
        };
        let fact_words: Vec<&str> = fact.split(' ').collect();
        for (i, w) in fact_words.iter().enumerate() {
            parts.insert(insert_at + i, w);
        }
        (parts.join(" "), entity, answer)
    }

    /// A synthetic source-code "file" of roughly `words` tokens — used by
    /// the code-completion datasets (LCC, RepoBench-P) and the Figure 6
    /// example.
    pub fn code_file(&self, id: u64, words: usize) -> String {
        let mut rng = self.rng(id ^ 0xC0DE);
        let mut out = String::new();
        let mut count = 0;
        let mut fn_idx = 0;
        while count < words {
            let params = rng.gen_range(0..3);
            let body_lines = rng.gen_range(1..4);
            out.push_str(&format!("fn func{}_{fn_idx} ( ", id));
            for p in 0..params {
                out.push_str(&format!("arg{p} "));
            }
            out.push_str(") { ");
            for l in 0..body_lines {
                out.push_str(&format!(
                    "let v{l} = arg0 + {} ; ",
                    rng.gen_range(0..100)
                ));
            }
            out.push_str("} ");
            count += 8 + 3 * body_lines + params;
            fn_idx += 1;
        }
        out.trim_end().to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_are_deterministic() {
        let a = Corpus::new(7).document(3, 100);
        let b = Corpus::new(7).document(3, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn different_ids_and_seeds_differ() {
        let c = Corpus::new(7);
        assert_ne!(c.document(1, 50), c.document(2, 50));
        assert_ne!(Corpus::new(8).document(1, 50), c.document(1, 50));
    }

    #[test]
    fn word_count_is_close() {
        let doc = Corpus::new(1).document(5, 200);
        let count = doc.split_whitespace().count();
        assert_eq!(count, 200);
    }

    #[test]
    fn planted_fact_is_findable() {
        let (doc, entity, answer) = Corpus::new(3).document_with_fact(11, 150);
        assert!(doc.contains(&format!("the secret code for {entity} is {answer}")));
        // Roughly the requested size.
        let words = doc.split_whitespace().count();
        assert!((140..=170).contains(&words), "{words}");
    }

    #[test]
    fn entities_are_stable_and_slot_scoped() {
        let c = Corpus::new(9);
        assert_eq!(c.entity(4, 1), c.entity(4, 1));
        assert_ne!(c.entity(4, 1), c.entity(4, 2));
    }

    #[test]
    fn code_files_look_like_code() {
        let code = Corpus::new(2).code_file(6, 120);
        assert!(code.contains("fn func6_0"));
        assert!(code.contains('{') && code.contains('}'));
        let words = code.split_whitespace().count();
        assert!(words >= 100, "{words}");
    }

    #[test]
    fn tiny_documents_do_not_panic() {
        let c = Corpus::new(0);
        assert!(!c.document(0, 1).is_empty());
        let (doc, _, _) = c.document_with_fact(0, 1);
        assert!(doc.split_whitespace().count() >= 7); // at least the fact
    }
}
