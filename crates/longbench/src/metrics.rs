//! Evaluation metrics: token F1, Rouge-L, accuracy, edit similarity.
//!
//! These mirror the metric families LongBench assigns its datasets
//! (Table 1's F1 / Rouge-L / Acc columns). All operate on normalised
//! token bags/sequences: lowercase, punctuation stripped, articles
//! removed — the conventional SQuAD-style normalisation.

/// Normalises text for scoring: lowercase, strip punctuation, drop
/// English articles, collapse whitespace.
pub fn normalize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split_whitespace()
        .map(|w| {
            w.chars()
                .filter(|c| c.is_alphanumeric())
                .collect::<String>()
        })
        .filter(|w| !w.is_empty() && w != "a" && w != "an" && w != "the")
        .collect()
}

/// Token-level F1 between a prediction and a reference, in `[0, 1]`.
pub fn token_f1(prediction: &str, reference: &str) -> f64 {
    let pred = normalize(prediction);
    let refr = normalize(reference);
    if pred.is_empty() || refr.is_empty() {
        return if pred == refr { 1.0 } else { 0.0 };
    }
    let mut ref_counts = std::collections::HashMap::new();
    for w in &refr {
        *ref_counts.entry(w.as_str()).or_insert(0usize) += 1;
    }
    let mut overlap = 0usize;
    for w in &pred {
        if let Some(c) = ref_counts.get_mut(w.as_str()) {
            if *c > 0 {
                *c -= 1;
                overlap += 1;
            }
        }
    }
    if overlap == 0 {
        return 0.0;
    }
    let precision = overlap as f64 / pred.len() as f64;
    let recall = overlap as f64 / refr.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Rouge-L F-measure (longest-common-subsequence based), in `[0, 1]`.
pub fn rouge_l(prediction: &str, reference: &str) -> f64 {
    let pred = normalize(prediction);
    let refr = normalize(reference);
    if pred.is_empty() || refr.is_empty() {
        return if pred == refr { 1.0 } else { 0.0 };
    }
    let lcs = lcs_len(&pred, &refr);
    if lcs == 0 {
        return 0.0;
    }
    let precision = lcs as f64 / pred.len() as f64;
    let recall = lcs as f64 / refr.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

fn lcs_len(a: &[String], b: &[String]) -> usize {
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for x in a {
        for (j, y) in b.iter().enumerate() {
            cur[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Exact-match accuracy after normalisation (1.0 or 0.0). LongBench's
/// retrieval tasks additionally count a prediction correct when it
/// *contains* the reference; pass `substring = true` for that behaviour.
pub fn accuracy(prediction: &str, reference: &str, substring: bool) -> f64 {
    let pred = normalize(prediction);
    let refr = normalize(reference);
    let hit = if substring {
        !refr.is_empty() && pred.windows(refr.len().max(1)).any(|w| w == refr.as_slice())
    } else {
        pred == refr
    };
    if hit {
        1.0
    } else {
        0.0
    }
}

/// Levenshtein edit similarity over characters, in `[0, 1]` — the code
/// datasets' metric.
pub fn edit_similarity(prediction: &str, reference: &str) -> f64 {
    let a: Vec<char> = prediction.chars().collect();
    let b: Vec<char> = reference.chars().collect();
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(&a, &b) as f64 / max_len as f64
}

fn levenshtein(a: &[char], b: &[char]) -> usize {
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Scores a prediction with the metric a dataset uses.
pub fn score(metric: crate::Metric, prediction: &str, reference: &str) -> f64 {
    match metric {
        crate::Metric::F1 => token_f1(prediction, reference),
        crate::Metric::RougeL => rouge_l(prediction, reference),
        crate::Metric::Accuracy => accuracy(prediction, reference, true),
        crate::Metric::EditSim => edit_similarity(prediction, reference),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_strips_articles_and_punctuation() {
        assert_eq!(normalize("The cat, sat!"), vec!["cat", "sat"]);
        assert_eq!(normalize("An  apple"), vec!["apple"]);
        assert!(normalize("").is_empty());
    }

    #[test]
    fn f1_perfect_and_zero() {
        assert_eq!(token_f1("the cat sat", "cat sat"), 1.0);
        assert_eq!(token_f1("dog", "cat"), 0.0);
        assert_eq!(token_f1("", ""), 1.0);
        assert_eq!(token_f1("x", ""), 0.0);
    }

    #[test]
    fn f1_partial_hand_computed() {
        // pred {cat, sat, mat}, ref {cat, ran}: overlap 1,
        // P = 1/3, R = 1/2, F1 = 2·(1/6)/(5/6) = 0.4.
        let f1 = token_f1("cat sat mat", "cat ran");
        assert!((f1 - 0.4).abs() < 1e-9, "{f1}");
    }

    #[test]
    fn f1_respects_counts() {
        // Repeated prediction words can't double-count one reference word.
        let f1 = token_f1("cat cat cat", "cat dog");
        // overlap 1, P = 1/3, R = 1/2 → 0.4
        assert!((f1 - 0.4).abs() < 1e-9);
    }

    #[test]
    fn rouge_l_orders_matter() {
        // Same bag, different order: F1 is 1.0 but Rouge-L is lower.
        assert_eq!(token_f1("b c d", "d c b"), 1.0);
        assert!(rouge_l("b c d", "d c b") < 1.0);
        assert_eq!(rouge_l("b c d", "b c d"), 1.0);
    }

    #[test]
    fn rouge_l_hand_computed() {
        // pred "x b c", ref "b c y": LCS = [b, c] = 2,
        // P = 2/3, R = 2/3 → F = 2/3.
        let r = rouge_l("x b c", "b c y");
        assert!((r - 2.0 / 3.0).abs() < 1e-9, "{r}");
    }

    #[test]
    fn accuracy_exact_and_substring() {
        assert_eq!(accuracy("Paragraph 7", "paragraph 7", false), 1.0);
        assert_eq!(accuracy("it is paragraph 7 indeed", "paragraph 7", false), 0.0);
        assert_eq!(accuracy("it is paragraph 7 indeed", "paragraph 7", true), 1.0);
        assert_eq!(accuracy("paragraph 8", "paragraph 7", true), 0.0);
    }

    #[test]
    fn edit_similarity_bounds_and_known_value() {
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert_eq!(edit_similarity("", ""), 1.0);
        // "kitten" → "sitting": distance 3, max len 7 → 1 - 3/7.
        let sim = edit_similarity("kitten", "sitting");
        assert!((sim - (1.0 - 3.0 / 7.0)).abs() < 1e-9);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn score_dispatches() {
        assert_eq!(score(crate::Metric::F1, "cat", "cat"), 1.0);
        assert_eq!(score(crate::Metric::RougeL, "cat", "cat"), 1.0);
        assert_eq!(score(crate::Metric::Accuracy, "so cat yes", "cat"), 1.0);
        assert_eq!(score(crate::Metric::EditSim, "cat", "cat"), 1.0);
    }
}
