//! The 21-dataset LongBench catalog across 6 categories.
//!
//! Per-dataset context/question token budgets follow the LongBench
//! paper's reported averages (4K–10K context) and the structural notes in
//! the Prompt Cache paper (e.g. TriviaQA's few-shot directive makes its
//! uncached portion unusually large, which is why it shows the smallest
//! CPU speedup in Figure 4).

use serde::Serialize;

/// LongBench task category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Category {
    /// Single-document question answering.
    SingleDocQa,
    /// Multi-document question answering.
    MultiDocQa,
    /// Summarisation.
    Summarization,
    /// Few-shot learning (examples ride in the uncached directive).
    FewShot,
    /// Synthetic retrieval/counting tasks.
    Synthetic,
    /// Code completion.
    Code,
}

/// Evaluation metric family (LongBench's assignments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Metric {
    /// Token-level F1.
    F1,
    /// Rouge-L F-measure.
    RougeL,
    /// Exact-match accuracy.
    Accuracy,
    /// Levenshtein edit similarity (code tasks).
    EditSim,
}

/// Static description of one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DatasetSpec {
    /// Dataset name as the paper prints it.
    pub name: &'static str,
    /// Task category.
    pub category: Category,
    /// Metric LongBench scores it with.
    pub metric: Metric,
    /// Average context (cacheable document) tokens at paper scale.
    pub context_tokens: usize,
    /// Documents per sample (= prompt modules).
    pub num_docs: usize,
    /// Average uncached directive/question tokens at paper scale.
    pub question_tokens: usize,
}

impl DatasetSpec {
    /// Looks a dataset up by name.
    pub fn by_name(name: &str) -> Option<&'static DatasetSpec> {
        ALL.iter().find(|d| d.name == name)
    }

    /// Total prompt tokens at paper scale.
    pub fn total_tokens(&self) -> usize {
        self.context_tokens + self.question_tokens
    }

    /// Fraction of the prompt that Prompt Cache serves from cache.
    pub fn cached_fraction(&self) -> f64 {
        self.context_tokens as f64 / self.total_tokens() as f64
    }
}

macro_rules! ds {
    ($name:literal, $cat:ident, $metric:ident, $ctx:literal, $docs:literal, $q:literal) => {
        DatasetSpec {
            name: $name,
            category: Category::$cat,
            metric: Metric::$metric,
            context_tokens: $ctx,
            num_docs: $docs,
            question_tokens: $q,
        }
    };
}

/// All 21 LongBench datasets.
pub const ALL: [DatasetSpec; 21] = [
    // Single-document QA.
    ds!("NarrativeQA", SingleDocQa, F1, 9000, 1, 50),
    ds!("Qasper", SingleDocQa, F1, 4800, 1, 60),
    ds!("MultiFieldQA-en", SingleDocQa, F1, 6200, 1, 55),
    ds!("MultiFieldQA-zh", SingleDocQa, F1, 5100, 1, 55),
    // Multi-document QA.
    ds!("HotpotQA", MultiDocQa, F1, 8900, 10, 60),
    ds!("2WikiMultihopQA", MultiDocQa, F1, 4900, 10, 60),
    ds!("MuSiQue", MultiDocQa, F1, 9900, 20, 60),
    ds!("DuReader", MultiDocQa, RougeL, 9500, 5, 60),
    // Summarisation.
    ds!("GovReport", Summarization, RougeL, 7900, 1, 40),
    ds!("QMSum", Summarization, RougeL, 9000, 1, 70),
    ds!("MultiNews", Summarization, RougeL, 4300, 4, 40),
    ds!("VCSUM", Summarization, RougeL, 9000, 1, 40),
    // Few-shot: large uncached exemplar blocks ride with the question.
    ds!("TREC", FewShot, Accuracy, 4600, 1, 300),
    ds!("TriviaQA", FewShot, F1, 6800, 1, 1400),
    ds!("SAMSum", FewShot, RougeL, 5600, 1, 500),
    ds!("LSHT", FewShot, Accuracy, 8200, 1, 300),
    // Synthetic.
    ds!("PassageCount", Synthetic, Accuracy, 9800, 10, 40),
    ds!("PassageRetrieval-en", Synthetic, Accuracy, 8700, 30, 45),
    ds!("PassageRetrieval-zh", Synthetic, Accuracy, 6300, 30, 45),
    // Code.
    ds!("LCC", Code, EditSim, 4700, 4, 60),
    ds!("RepoBench-P", Code, EditSim, 6800, 8, 70),
];

/// The eight datasets the paper's Figures 3–4 and Table 1 print.
pub const FIGURE_SET: [&str; 8] = [
    "NarrativeQA",
    "2WikiMultihopQA",
    "MuSiQue",
    "GovReport",
    "QMSum",
    "MultiNews",
    "TriviaQA",
    "PassageRetrieval-en",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_one_datasets_six_categories() {
        assert_eq!(ALL.len(), 21);
        let mut cats: Vec<Category> = ALL.iter().map(|d| d.category).collect();
        cats.dedup();
        let unique: std::collections::HashSet<_> =
            ALL.iter().map(|d| format!("{:?}", d.category)).collect();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn names_are_unique() {
        let unique: std::collections::HashSet<_> = ALL.iter().map(|d| d.name).collect();
        assert_eq!(unique.len(), ALL.len());
    }

    #[test]
    fn figure_set_resolves() {
        for name in FIGURE_SET {
            assert!(DatasetSpec::by_name(name).is_some(), "{name}");
        }
        assert!(DatasetSpec::by_name("NotADataset").is_none());
    }

    #[test]
    fn context_lengths_span_4k_to_10k() {
        for d in ALL {
            assert!(
                (4000..=10_000).contains(&d.context_tokens),
                "{}: {}",
                d.name,
                d.context_tokens
            );
        }
    }

    #[test]
    fn trivia_qa_has_largest_uncached_portion() {
        // The paper singles TriviaQA out: "the latency is higher for the
        // datasets with a larger proportion of uncached prompts, such as
        // TriviaQA".
        let trivia = DatasetSpec::by_name("TriviaQA").unwrap();
        for d in ALL {
            if d.name != "TriviaQA" {
                assert!(d.question_tokens <= trivia.question_tokens, "{}", d.name);
            }
        }
        assert!(trivia.cached_fraction() < 0.9);
    }

    #[test]
    fn qa_datasets_are_mostly_cached() {
        let narrative = DatasetSpec::by_name("NarrativeQA").unwrap();
        assert!(narrative.cached_fraction() > 0.99);
    }
}
