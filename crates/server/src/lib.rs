//! A multi-threaded serving layer over the Prompt Cache engine.
//!
//! The paper positions Prompt Cache as "a foundational component for
//! future LLM serving systems" (§1, §6). This crate is that serving
//! system in miniature:
//!
//! * [`Server`] — a bounded request queue drained by a worker pool, each
//!   worker serving prompts through one shared [`prompt_cache::PromptCache`]
//!   (the module store is internally synchronised, so workers share every
//!   cached module by `Arc` — the §3.4 batch-sharing optimisation falls
//!   out of the architecture); with [`ServerConfig::batching`] the pool
//!   is replaced by one continuous-batching scheduler thread
//!   (a [`prompt_cache::BatchScheduler`]): requests join the in-flight
//!   decode batch at any step and leave independently, with greedy
//!   outputs byte-identical to solo serving;
//! * [`metrics`] — latency recording with percentile queries, the numbers
//!   a serving dashboard reads (p50/p95/p99 TTFT, throughput);
//! * [`capacity`] — the memory-budgeted batch-capacity model behind the
//!   paper's §5.4 throughput argument: sharing modules shrinks each
//!   request's KV footprint, so more requests fit one memory budget;
//! * [`trace`] — deterministic Poisson arrival traces and open-loop
//!   replay, the load methodology for serving experiments.
//!
//! # Resilience
//!
//! The server is built not to melt under overload or caller aborts
//! (DESIGN.md §8, docs/ARCHITECTURE.md for the full decision map):
//!
//! * **Deadlines.** [`prompt_cache::ServeOptions::deadline`] is converted
//!   to an absolute deadline *at submission*, so queue wait counts
//!   against the budget. Requests whose deadline passes in the queue are
//!   shed at pickup ([`ShedReason::DeadlineBeforeStart`]) without
//!   touching the engine; a serve that overruns mid-flight returns its
//!   partial output with `ServeOutcome::DeadlineExceeded`.
//! * **Bounded admission.** [`Server::submit`] blocks while the queue is
//!   full — fine for closed-loop benchmarks, a footgun for services.
//!   [`Server::try_submit`] rejects instead ([`SubmitError::QueueFull`],
//!   or [`SubmitError::PredictedDeadlineExceeded`] when (queue depth +
//!   in-flight occupancy) × EWMA service time ÷ service slots already
//!   exceeds the request's deadline).
//! * **Cancellation.** Every [`RequestHandle`] can
//!   [`cancel`](RequestHandle::cancel): in queue the request is shed
//!   ([`ShedReason::CancelledInQueue`]); mid-serve the engine stops
//!   within one decode step and returns the partial response.
//! * **Shutdown.** [`Server::shutdown`] drains; `shutdown_within`
//!   sheds queued work, cancels in-flight serves through a linked
//!   shutdown token, and bounds the wait by a grace period.
//! * **Chaos hooks.** [`WorkerFaults`] injects pre-serve stalls (see
//!   `pc-faults` for the deterministic seeded implementation).
//!
//! # Ops plane
//!
//! [`ServerConfig::ops_addr`] starts one std-only HTTP listener thread
//! serving `GET /metrics` (Prometheus), `/healthz` (admission + SLO
//! rollup), `/debug/cache` (store snapshot + per-module heat),
//! `/debug/batch` (live batch membership), and `/debug/flight` (the
//! flight recorder as JSON Lines). [`ServerConfig::flight_recorder`]
//! enables the fixed-capacity per-request event ring behind
//! `/debug/flight` and [`Server::flight_json`]. Both are off by default
//! and cost one `Option` check per request when disabled — see
//! `docs/OBSERVABILITY.md` for the full endpoint and event reference.
//!
//! # Example
//!
//! ```
//! use pc_model::{Model, ModelConfig};
//! use pc_server::{Server, ServerConfig};
//! use pc_tokenizer::WordTokenizer;
//! use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
//!
//! let tokenizer = WordTokenizer::train(&["hello world question"]);
//! let engine = PromptCache::new(
//!     Model::new(ModelConfig::llama_tiny(64), 0), tokenizer,
//!     EngineConfig::default());
//! engine.register_schema(
//!     r#"<schema name="s"><module name="m">hello world</module></schema>"#).unwrap();
//!
//! let server = Server::start(engine, ServerConfig::default());
//! let handle = server.submit(
//!     r#"<prompt schema="s"><m/>question</prompt>"#.into(),
//!     ServeOptions::default().max_new_tokens(2));
//! let result = handle.wait().unwrap();
//! assert!(result.outcome.is_ok());
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod capacity;
pub mod metrics;
mod ops;
mod server;
pub mod trace;

pub use server::{
    RequestHandle, RequestOutcome, RequestResult, Server, ServerConfig, ShedReason, SubmitError,
    WorkerFaults,
};
