//! A multi-threaded serving layer over the Prompt Cache engine.
//!
//! The paper positions Prompt Cache as "a foundational component for
//! future LLM serving systems" (§1, §6). This crate is that serving
//! system in miniature:
//!
//! * [`Server`] — a bounded request queue drained by a worker pool, each
//!   worker serving prompts through one shared [`prompt_cache::PromptCache`]
//!   (the module store is internally synchronised, so workers share every
//!   cached module by `Arc` — the §3.4 batch-sharing optimisation falls
//!   out of the architecture); with [`ServerConfig::batching`] the pool
//!   is replaced by one continuous-batching scheduler thread
//!   (a [`prompt_cache::BatchScheduler`]): requests join the in-flight
//!   decode batch at any step and leave independently, with greedy
//!   outputs byte-identical to solo serving;
//! * [`metrics`] — latency recording with percentile queries, the numbers
//!   a serving dashboard reads (p50/p95/p99 TTFT, throughput);
//! * [`capacity`] — the memory-budgeted batch-capacity model behind the
//!   paper's §5.4 throughput argument: sharing modules shrinks each
//!   request's KV footprint, so more requests fit one memory budget;
//! * [`trace`] — deterministic Poisson arrival traces and open-loop
//!   replay, the load methodology for serving experiments.
//!
//! # Resilience
//!
//! The server is built not to melt under overload or caller aborts
//! (DESIGN.md §8, docs/ARCHITECTURE.md for the full decision map):
//!
//! * **Deadlines.** [`prompt_cache::ServeOptions::deadline`] is converted
//!   to an absolute deadline *at submission*, so queue wait counts
//!   against the budget. Requests whose deadline passes in the queue are
//!   shed at pickup ([`ShedReason::DeadlineBeforeStart`]) without
//!   touching the engine; a serve that overruns mid-flight returns its
//!   partial output with `ServeOutcome::DeadlineExceeded`.
//! * **Bounded admission.** [`Server::submit_request`] is non-blocking
//!   by default and rejects under pressure ([`SubmitError::QueueFull`],
//!   or [`SubmitError::PredictedDeadlineExceeded`] when (queue depth +
//!   in-flight occupancy) × EWMA service time ÷ service slots already
//!   exceeds the request's deadline). [`SubmitRequest::blocking`] opts
//!   into waiting for queue space — fine for closed-loop benchmarks, a
//!   footgun for services.
//! * **Cancellation.** Every [`RequestHandle`] can
//!   [`cancel`](RequestHandle::cancel): in queue the request is shed
//!   ([`ShedReason::CancelledInQueue`]); mid-serve the engine stops
//!   within one decode step and returns the partial response.
//! * **Shutdown.** [`Server::shutdown`] drains; `shutdown_within`
//!   sheds queued work, cancels in-flight serves through a linked
//!   shutdown token, and bounds the wait by a grace period.
//! * **Chaos hooks.** [`WorkerFaults`] injects pre-serve stalls (see
//!   `pc-faults` for the deterministic seeded implementation).
//!
//! # Ops plane
//!
//! [`ServerConfig::ops_addr`] starts one std-only HTTP listener thread
//! serving `GET /metrics` (Prometheus), `/healthz` (admission + SLO
//! rollup), `/debug/cache` (store snapshot + per-module heat),
//! `/debug/batch` (live batch membership), and `/debug/flight` (the
//! flight recorder as JSON Lines). [`ServerConfig::flight_recorder`]
//! enables the fixed-capacity per-request event ring behind
//! `/debug/flight` and [`Server::flight_json`]. Both are off by default
//! and cost one `Option` check per request when disabled — see
//! `docs/OBSERVABILITY.md` for the full endpoint and event reference.
//!
//! # Example
//!
//! ```
//! use pc_model::{Model, ModelConfig};
//! use pc_server::{Server, ServerConfig, SubmitRequest};
//! use pc_tokenizer::WordTokenizer;
//! use prompt_cache::{EngineConfig, PromptCache};
//!
//! let tokenizer = WordTokenizer::train(&["hello world question"]);
//! let engine = PromptCache::new(
//!     Model::new(ModelConfig::llama_tiny(64), 0), tokenizer,
//!     EngineConfig::default());
//! engine.register_schema(
//!     r#"<schema name="s"><module name="m">hello world</module></schema>"#).unwrap();
//!
//! let server = Server::start(engine, ServerConfig::default());
//! let handle = server.submit_request(
//!     &SubmitRequest::new(r#"<prompt schema="s"><m/>question</prompt>"#)
//!         .max_new_tokens(2)).unwrap();
//! let result = handle.wait().unwrap();
//! assert!(result.outcome.is_ok());
//! server.shutdown();
//! ```
//!
//! # Fleet
//!
//! [`Router`] scales the same serving contract across N worker engines:
//! schemas are consistent-hash sharded ([`pc_cache::ShardMap`]) with a
//! configurable replication factor, requests route to a worker that
//! already holds their modules hot (schema affinity) or to the least
//! loaded worker, and a killed worker's requests re-route to survivors
//! — byte-identically, because non-owners re-encode on demand. Workers
//! are threads by default; [`FleetConfig::process_mode`] runs them as OS
//! processes over a std-only length-prefixed socket protocol.

#![warn(missing_docs)]

pub mod capacity;
pub mod fleet;
pub mod metrics;
mod ops;
mod server;
mod submit;
pub mod trace;
pub mod wire;

pub use fleet::{FleetConfig, FleetFaults, Router, WorkerInfo};
pub use server::{
    RequestHandle, RequestOutcome, RequestResult, Server, ServerConfig, ShedReason, SubmitError,
    WorkerFaults,
};
pub use submit::SubmitRequest;
pub use wire::EngineBlueprint;
