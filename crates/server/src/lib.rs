//! A multi-threaded serving layer over the Prompt Cache engine.
//!
//! The paper positions Prompt Cache as "a foundational component for
//! future LLM serving systems" (§1, §6). This crate is that serving
//! system in miniature:
//!
//! * [`Server`] — a bounded request queue drained by a worker pool, each
//!   worker serving prompts through one shared [`prompt_cache::PromptCache`]
//!   (the module store is internally synchronised, so workers share every
//!   cached module by `Arc` — the §3.4 batch-sharing optimisation falls
//!   out of the architecture);
//! * [`metrics`] — latency recording with percentile queries, the numbers
//!   a serving dashboard reads (p50/p95/p99 TTFT, throughput);
//! * [`capacity`] — the memory-budgeted batch-capacity model behind the
//!   paper's §5.4 throughput argument: sharing modules shrinks each
//!   request's KV footprint, so more requests fit one memory budget;
//! * [`trace`] — deterministic Poisson arrival traces and open-loop
//!   replay, the load methodology for serving experiments.
//!
//! # Example
//!
//! ```
//! use pc_model::{Model, ModelConfig};
//! use pc_server::{Server, ServerConfig};
//! use pc_tokenizer::WordTokenizer;
//! use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
//!
//! let tokenizer = WordTokenizer::train(&["hello world question"]);
//! let engine = PromptCache::new(
//!     Model::new(ModelConfig::llama_tiny(64), 0), tokenizer,
//!     EngineConfig::default());
//! engine.register_schema(
//!     r#"<schema name="s"><module name="m">hello world</module></schema>"#).unwrap();
//!
//! let server = Server::start(engine, ServerConfig::default());
//! let handle = server.submit(
//!     r#"<prompt schema="s"><m/>question</prompt>"#.into(),
//!     ServeOptions { max_new_tokens: 2, ..Default::default() });
//! let result = handle.wait().unwrap();
//! assert!(result.outcome.is_ok());
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod capacity;
pub mod metrics;
mod server;
pub mod trace;

pub use server::{RequestHandle, RequestResult, Server, ServerConfig};
