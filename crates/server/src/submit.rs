//! The unified request-submission API.
//!
//! [`SubmitRequest`] collapses the historical `submit` /
//! `submit_baseline` / `try_submit` family into one builder, mirroring
//! the engine's `ServeRequest` pattern: construct with the prompt, chain
//! what you need, pass to [`Server::submit_request`] — or to the fleet's
//! [`Router::submit`](crate::Router::submit), which accepts the same
//! request type.
//!
//! ```ignore
//! let req = SubmitRequest::new(prompt)
//!     .max_new_tokens(16)
//!     .deadline(Duration::from_millis(250));
//! let handle = server.submit_request(&req)?;
//! ```
//!
//! Admission mode is an option, not a method name: the default is
//! **non-blocking** (the old `try_submit` semantics — queue-full and
//! predicted-deadline sheds return [`SubmitError`]); `.blocking(true)`
//! restores the old `submit` behaviour of waiting for queue space
//! (closed-loop benchmarks) and never errors. Baseline (full-prefill)
//! serving is `.baseline(true)` instead of a separate entry point.

use std::time::Duration;

use pc_cache::Tier;
use prompt_cache::{CancelToken, ServeOptions};

/// A request to a [`Server`](crate::Server) or
/// [`Router`](crate::Router), built by chaining.
///
/// Mirrors `prompt_cache::ServeRequest`: `#[non_exhaustive]` with
/// `#[must_use]` setters, so new knobs never break callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SubmitRequest {
    prompt: String,
    options: ServeOptions,
    baseline: bool,
    blocking: bool,
}

impl SubmitRequest {
    /// Starts a request for a PML prompt with default options:
    /// non-blocking admission, cached serving path.
    #[must_use]
    pub fn new(prompt_pml: impl Into<String>) -> Self {
        SubmitRequest {
            prompt: prompt_pml.into(),
            options: ServeOptions::default(),
            baseline: false,
            blocking: false,
        }
    }

    /// Replaces the serve options wholesale. Chain the per-field setters
    /// below for incremental tweaks.
    #[must_use]
    pub fn options(mut self, options: ServeOptions) -> Self {
        self.options = options;
        self
    }

    /// Decode budget (defaults to the `ServeOptions` default).
    #[must_use]
    pub fn max_new_tokens(mut self, n: usize) -> Self {
        self.options.max_new_tokens = n;
        self
    }

    /// Storage tier to fetch modules from.
    #[must_use]
    pub fn tier(mut self, tier: Tier) -> Self {
        self.options.tier = Some(tier);
        self
    }

    /// Whether scaffolds may substitute for the full prompt (§3.3).
    #[must_use]
    pub fn use_scaffolds(mut self, on: bool) -> Self {
        self.options.use_scaffolds = on;
        self
    }

    /// Seeded sampling temperature (greedy when unset).
    #[must_use]
    pub fn temperature(mut self, temperature: f32, seed: u64) -> Self {
        self.options.temperature = Some((temperature, seed));
        self
    }

    /// Submission-relative latency budget. Queue wait counts against it;
    /// with non-blocking admission the predicted-wait check may shed the
    /// request before it ever queues.
    #[must_use]
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.options.deadline = Some(budget);
        self
    }

    /// Attaches a cooperative cancellation token.
    #[must_use]
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.options.cancel = Some(token);
        self
    }

    /// Routes the request through the baseline full-prefill path instead
    /// of cached serving — the paper's comparison baseline, sharing the
    /// same queue.
    #[must_use]
    pub fn baseline(mut self, on: bool) -> Self {
        self.baseline = on;
        self
    }

    /// Blocking admission: wait for queue space instead of shedding.
    /// Fine for closed-loop benchmarks; a latency-sensitive service
    /// should keep the non-blocking default and handle
    /// [`SubmitError`](crate::SubmitError).
    #[must_use]
    pub fn blocking(mut self, on: bool) -> Self {
        self.blocking = on;
        self
    }

    /// The PML prompt.
    #[must_use]
    pub fn prompt(&self) -> &str {
        &self.prompt
    }

    /// The accumulated serve options.
    #[must_use]
    pub fn options_ref(&self) -> &ServeOptions {
        &self.options
    }

    /// Whether the baseline path was requested.
    #[must_use]
    pub fn is_baseline(&self) -> bool {
        self.baseline
    }

    /// Whether blocking admission was requested.
    #[must_use]
    pub fn is_blocking(&self) -> bool {
        self.blocking
    }
}
