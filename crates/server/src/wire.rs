//! Std-only wire protocol for process-mode fleet workers.
//!
//! When [`FleetConfig::process_mode`](crate::FleetConfig::process_mode)
//! is on, each [`Router`](crate::Router) worker is an OS process (the
//! `pc_fleet_worker` binary) speaking this protocol over a loopback
//! `TcpStream`. The framing is deliberately primitive — no external
//! serialization dependency, no schema negotiation:
//!
//! * every message is one **frame**: a little-endian `u32` byte length
//!   followed by that many payload bytes;
//! * payloads are tag-prefixed, field-by-field encodings (fixed-width
//!   little-endian integers, length-prefixed UTF-8 strings) written and
//!   read by the helpers in this module.
//!
//! The router ships an [`EngineBlueprint`] in its `Hello` so every
//! worker deterministically builds *the same engine* — same model
//! weights (seeded), same tokenizer (trained from the same corpus), same
//! engine knobs. That determinism is what makes fleet serving
//! byte-identical to single-process serving even when requests re-route
//! across workers.
//!
//! Process-mode limitations (documented, chaos-tested): cooperative
//! *caller* cancellation does not reach an in-flight remote serve (the
//! serve runs to completion; queue-level sheds still apply), and
//! deadlines cross the wire as the remaining budget at dispatch. Worker
//! kill is process kill — the router detects the broken stream and
//! re-routes.

use std::io::{self, Read, Write};
use std::time::Duration;

use pc_model::{Family, Model, ModelConfig, Parallelism};
use pc_tokenizer::{BpeTokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, EngineError, PromptCache, ServeOutcome};

/// Upper bound on a single frame; a defence against a corrupt length
/// prefix, far above any real message.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors (including a closed stream — the signal the
/// router treats as "worker died") and rejects absurd lengths.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

// ---------------------------------------------------------------------
// field codec

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Cursor over a received payload.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn bad(what: &str) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, format!("wire decode: {what}"))
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Self::bad("truncated payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn bool(&mut self) -> io::Result<bool> {
        Ok(self.u8()? != 0)
    }

    fn string(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| Self::bad("invalid utf-8"))
    }

    fn usize(&mut self) -> io::Result<usize> {
        Ok(self.u64()? as usize)
    }

    fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Self::bad("trailing bytes"))
        }
    }
}

// ---------------------------------------------------------------------
// blueprint

/// Tokenizer recipe: enough to retrain the exact tokenizer in a worker
/// process. Both trainers are deterministic functions of their inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenizerSpec {
    /// `WordTokenizer::train(corpus)`.
    Word {
        /// Training corpus lines.
        corpus: Vec<String>,
    },
    /// `BpeTokenizer::train(corpus, vocab_size)`.
    Bpe {
        /// Training corpus lines.
        corpus: Vec<String>,
        /// Target vocabulary size.
        vocab_size: usize,
    },
}

/// A deterministic recipe for building identical engines across workers:
/// model config + weight seed + tokenizer recipe + the engine knobs that
/// affect outputs. `build()` in two different processes yields engines
/// that serve byte-identical responses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct EngineBlueprint {
    /// Model architecture and dimensions.
    pub model: ModelConfig,
    /// Seed for the deterministic weight initialisation.
    pub model_seed: u64,
    /// Tokenizer recipe.
    pub tokenizer: TokenizerSpec,
    /// Engine zero-copy knob.
    pub zero_copy: bool,
    /// Engine deferred-RoPE knob.
    pub deferred_rope: bool,
}

impl EngineBlueprint {
    /// A blueprint with the default engine knobs (both on, matching
    /// `EngineConfig::default()`).
    #[must_use]
    pub fn new(model: ModelConfig, model_seed: u64, tokenizer: TokenizerSpec) -> Self {
        let defaults = EngineConfig::default();
        EngineBlueprint {
            model,
            model_seed,
            tokenizer,
            zero_copy: defaults.zero_copy,
            deferred_rope: defaults.deferred_rope,
        }
    }

    /// Sets the zero-copy knob.
    #[must_use]
    pub fn zero_copy(mut self, on: bool) -> Self {
        self.zero_copy = on;
        self
    }

    /// Sets the deferred-RoPE knob.
    #[must_use]
    pub fn deferred_rope(mut self, on: bool) -> Self {
        self.deferred_rope = on;
        self
    }

    /// Builds the engine this blueprint describes. Deterministic: every
    /// call, in any process, yields an engine with identical weights,
    /// tokenizer, and serving behaviour.
    #[must_use]
    pub fn build(&self) -> PromptCache {
        let model = Model::new(self.model.clone(), self.model_seed);
        let config = EngineConfig::default()
            .zero_copy(self.zero_copy)
            .deferred_rope(self.deferred_rope);
        match &self.tokenizer {
            TokenizerSpec::Word { corpus } => {
                let refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
                PromptCache::new(model, WordTokenizer::train(&refs), config)
            }
            TokenizerSpec::Bpe { corpus, vocab_size } => {
                let refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
                PromptCache::new(model, BpeTokenizer::train(&refs, *vocab_size), config)
            }
        }
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        let m = &self.model;
        put_u8(buf, family_tag(m.family));
        put_u64(buf, m.vocab_size as u64);
        put_u64(buf, m.hidden_size as u64);
        put_u64(buf, m.num_layers as u64);
        put_u64(buf, m.num_heads as u64);
        put_u64(buf, m.num_kv_heads as u64);
        put_u64(buf, m.intermediate_size as u64);
        put_u64(buf, m.max_position as u64);
        put_f32(buf, m.rope_theta);
        put_f32(buf, m.norm_eps);
        put_u64(buf, m.parallelism.num_threads as u64);
        put_u64(buf, m.parallelism.min_work as u64);
        put_u64(buf, self.model_seed);
        match &self.tokenizer {
            TokenizerSpec::Word { corpus } => {
                put_u8(buf, 0);
                put_u32(buf, corpus.len() as u32);
                for line in corpus {
                    put_str(buf, line);
                }
            }
            TokenizerSpec::Bpe { corpus, vocab_size } => {
                put_u8(buf, 1);
                put_u32(buf, corpus.len() as u32);
                for line in corpus {
                    put_str(buf, line);
                }
                put_u64(buf, *vocab_size as u64);
            }
        }
        put_bool(buf, self.zero_copy);
        put_bool(buf, self.deferred_rope);
    }

    fn decode_from(d: &mut Dec<'_>) -> io::Result<Self> {
        let family = family_from_tag(d.u8()?)?;
        let mut model = ModelConfig::llama_tiny(1);
        model.family = family;
        model.vocab_size = d.usize()?;
        model.hidden_size = d.usize()?;
        model.num_layers = d.usize()?;
        model.num_heads = d.usize()?;
        model.num_kv_heads = d.usize()?;
        model.intermediate_size = d.usize()?;
        model.max_position = d.usize()?;
        model.rope_theta = d.f32()?;
        model.norm_eps = d.f32()?;
        model.parallelism = Parallelism {
            num_threads: d.usize()?,
            min_work: d.usize()?,
        };
        let model_seed = d.u64()?;
        let tok_tag = d.u8()?;
        let n = d.u32()? as usize;
        let mut corpus = Vec::with_capacity(n);
        for _ in 0..n {
            corpus.push(d.string()?);
        }
        let tokenizer = match tok_tag {
            0 => TokenizerSpec::Word { corpus },
            1 => TokenizerSpec::Bpe {
                corpus,
                vocab_size: d.usize()?,
            },
            t => return Err(Dec::bad(&format!("tokenizer tag {t}"))),
        };
        let zero_copy = d.bool()?;
        let deferred_rope = d.bool()?;
        Ok(EngineBlueprint {
            model,
            model_seed,
            tokenizer,
            zero_copy,
            deferred_rope,
        })
    }
}

fn family_tag(f: Family) -> u8 {
    match f {
        Family::Llama => 0,
        Family::Falcon => 1,
        Family::Mpt => 2,
        Family::Gpt2 => 3,
    }
}

fn family_from_tag(t: u8) -> io::Result<Family> {
    Ok(match t {
        0 => Family::Llama,
        1 => Family::Falcon,
        2 => Family::Mpt,
        3 => Family::Gpt2,
        _ => return Err(Dec::bad(&format!("family tag {t}"))),
    })
}

// ---------------------------------------------------------------------
// messages

/// Serve options that cross the wire. The deadline is the *remaining*
/// budget at dispatch (the router converted the absolute deadline back
/// to a relative one); a cooperative cancel token cannot cross a process
/// boundary, so in-flight remote serves are interrupted only by killing
/// the worker.
#[derive(Debug, Clone, PartialEq)]
pub struct WireOptions {
    /// Decode budget.
    pub max_new_tokens: usize,
    /// Seeded sampling temperature (`None` = greedy).
    pub temperature: Option<(f32, u64)>,
    /// Whether scaffolds may substitute (§3.3).
    pub use_scaffolds: bool,
    /// Remaining latency budget at dispatch.
    pub deadline: Option<Duration>,
}

/// Router → worker messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// First frame on the connection: identity plus the engine recipe.
    Hello {
        /// The worker's shard index.
        worker_id: u32,
        /// Recipe for the engine this worker must build.
        blueprint: EngineBlueprint,
    },
    /// Register a schema, warm (encode modules) or cold (layout only).
    Register {
        /// PML schema source.
        pml: String,
        /// Warm or cold registration.
        warm: bool,
    },
    /// Serve one request.
    Serve {
        /// Request id (echoed in the reply).
        id: u64,
        /// PML prompt.
        prompt: String,
        /// Serve options.
        options: WireOptions,
        /// Baseline (full-prefill) path instead of cached serving.
        baseline: bool,
    },
    /// Clean shutdown; the worker exits after acknowledging nothing.
    Shutdown,
}

const TAG_HELLO: u8 = 1;
const TAG_REGISTER: u8 = 2;
const TAG_SERVE: u8 = 3;
const TAG_SHUTDOWN: u8 = 4;
const TAG_READY: u8 = 5;
const TAG_REGISTERED: u8 = 6;
const TAG_RESULT: u8 = 7;
const TAG_SERVE_ERR: u8 = 8;

impl ToWorker {
    /// Encodes to a frame payload.
    #[must_use]
    pub fn to_frame(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            ToWorker::Hello {
                worker_id,
                blueprint,
            } => {
                put_u8(&mut buf, TAG_HELLO);
                put_u32(&mut buf, *worker_id);
                blueprint.encode_into(&mut buf);
            }
            ToWorker::Register { pml, warm } => {
                put_u8(&mut buf, TAG_REGISTER);
                put_str(&mut buf, pml);
                put_bool(&mut buf, *warm);
            }
            ToWorker::Serve {
                id,
                prompt,
                options,
                baseline,
            } => {
                put_u8(&mut buf, TAG_SERVE);
                put_u64(&mut buf, *id);
                put_str(&mut buf, prompt);
                put_u64(&mut buf, options.max_new_tokens as u64);
                match options.temperature {
                    Some((t, seed)) => {
                        put_bool(&mut buf, true);
                        put_f32(&mut buf, t);
                        put_u64(&mut buf, seed);
                    }
                    None => put_bool(&mut buf, false),
                }
                put_bool(&mut buf, options.use_scaffolds);
                match options.deadline {
                    Some(d) => {
                        put_bool(&mut buf, true);
                        put_u64(&mut buf, d.as_nanos().min(u128::from(u64::MAX)) as u64);
                    }
                    None => put_bool(&mut buf, false),
                }
                put_bool(&mut buf, *baseline);
            }
            ToWorker::Shutdown => put_u8(&mut buf, TAG_SHUTDOWN),
        }
        buf
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// `InvalidData` on unknown tags or malformed fields.
    pub fn from_frame(payload: &[u8]) -> io::Result<Self> {
        let mut d = Dec::new(payload);
        let msg = match d.u8()? {
            TAG_HELLO => ToWorker::Hello {
                worker_id: d.u32()?,
                blueprint: EngineBlueprint::decode_from(&mut d)?,
            },
            TAG_REGISTER => ToWorker::Register {
                pml: d.string()?,
                warm: d.bool()?,
            },
            TAG_SERVE => {
                let id = d.u64()?;
                let prompt = d.string()?;
                let max_new_tokens = d.usize()?;
                let temperature = if d.bool()? {
                    Some((d.f32()?, d.u64()?))
                } else {
                    None
                };
                let use_scaffolds = d.bool()?;
                let deadline = if d.bool()? {
                    Some(Duration::from_nanos(d.u64()?))
                } else {
                    None
                };
                let baseline = d.bool()?;
                ToWorker::Serve {
                    id,
                    prompt,
                    options: WireOptions {
                        max_new_tokens,
                        temperature,
                        use_scaffolds,
                        deadline,
                    },
                    baseline,
                }
            }
            TAG_SHUTDOWN => ToWorker::Shutdown,
            t => return Err(Dec::bad(&format!("to-worker tag {t}"))),
        };
        d.done()?;
        Ok(msg)
    }
}

/// The serve outcome and accounting a worker reports back. Cumulative
/// store counters piggyback on every result so the router's fleet view
/// stays fresh without a polling RPC.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// Echoed request id.
    pub id: u64,
    /// Decoded text.
    pub text: String,
    /// Generated token ids.
    pub tokens: Vec<u32>,
    /// How the serve ended.
    pub outcome: ServeOutcome,
    /// Prompt tokens served from cache.
    pub cached_tokens: u64,
    /// Prompt tokens prefilled fresh.
    pub new_tokens: u64,
    /// Spans that degraded to re-encode.
    pub degraded_spans: u64,
    /// Worker-cumulative store hits.
    pub store_hits: u64,
    /// Worker-cumulative store misses.
    pub store_misses: u64,
}

/// Worker → router messages.
#[derive(Debug, Clone, PartialEq)]
pub enum FromWorker {
    /// Engine built; ready for registrations and serves.
    Ready,
    /// Registration outcome (empty error = success).
    Registered {
        /// Stringified registration error, empty on success.
        error: String,
    },
    /// A completed serve.
    Result(WireResult),
    /// A failed serve.
    ServeErr {
        /// Echoed request id.
        id: u64,
        /// Structured error tag (see `encode_error`).
        error: WireError,
    },
}

/// Engine errors that keep their structure across the wire; everything
/// else degrades to a stringified [`WireError::Other`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// `EngineError::UnknownSchema`.
    UnknownSchema(String),
    /// `EngineError::EmptyPrompt`.
    EmptyPrompt,
    /// Any other engine error, stringified.
    Other(String),
}

impl WireError {
    /// Captures an engine error for transport.
    #[must_use]
    pub fn from_engine(e: &EngineError) -> Self {
        match e {
            EngineError::UnknownSchema { name } => WireError::UnknownSchema(name.clone()),
            EngineError::EmptyPrompt => WireError::EmptyPrompt,
            other => WireError::Other(other.to_string()),
        }
    }

    /// Reconstructs the engine error on the router side.
    #[must_use]
    pub fn into_engine(self) -> EngineError {
        match self {
            WireError::UnknownSchema(name) => EngineError::UnknownSchema { name },
            WireError::EmptyPrompt => EngineError::EmptyPrompt,
            WireError::Other(detail) => EngineError::Remote { detail },
        }
    }
}

fn outcome_tag(o: ServeOutcome) -> u8 {
    match o {
        ServeOutcome::Complete => 0,
        ServeOutcome::Cancelled => 1,
        ServeOutcome::DeadlineExceeded => 2,
    }
}

fn outcome_from_tag(t: u8) -> io::Result<ServeOutcome> {
    Ok(match t {
        0 => ServeOutcome::Complete,
        1 => ServeOutcome::Cancelled,
        2 => ServeOutcome::DeadlineExceeded,
        _ => return Err(Dec::bad(&format!("outcome tag {t}"))),
    })
}

impl FromWorker {
    /// Encodes to a frame payload.
    #[must_use]
    pub fn to_frame(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            FromWorker::Ready => put_u8(&mut buf, TAG_READY),
            FromWorker::Registered { error } => {
                put_u8(&mut buf, TAG_REGISTERED);
                put_str(&mut buf, error);
            }
            FromWorker::Result(r) => {
                put_u8(&mut buf, TAG_RESULT);
                put_u64(&mut buf, r.id);
                put_str(&mut buf, &r.text);
                put_u32(&mut buf, r.tokens.len() as u32);
                for &t in &r.tokens {
                    put_u32(&mut buf, t);
                }
                put_u8(&mut buf, outcome_tag(r.outcome));
                put_u64(&mut buf, r.cached_tokens);
                put_u64(&mut buf, r.new_tokens);
                put_u64(&mut buf, r.degraded_spans);
                put_u64(&mut buf, r.store_hits);
                put_u64(&mut buf, r.store_misses);
            }
            FromWorker::ServeErr { id, error } => {
                put_u8(&mut buf, TAG_SERVE_ERR);
                put_u64(&mut buf, *id);
                match error {
                    WireError::UnknownSchema(name) => {
                        put_u8(&mut buf, 0);
                        put_str(&mut buf, name);
                    }
                    WireError::EmptyPrompt => put_u8(&mut buf, 1),
                    WireError::Other(detail) => {
                        put_u8(&mut buf, 2);
                        put_str(&mut buf, detail);
                    }
                }
            }
        }
        buf
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// `InvalidData` on unknown tags or malformed fields.
    pub fn from_frame(payload: &[u8]) -> io::Result<Self> {
        let mut d = Dec::new(payload);
        let msg = match d.u8()? {
            TAG_READY => FromWorker::Ready,
            TAG_REGISTERED => FromWorker::Registered { error: d.string()? },
            TAG_RESULT => {
                let id = d.u64()?;
                let text = d.string()?;
                let n = d.u32()? as usize;
                let mut tokens = Vec::with_capacity(n);
                for _ in 0..n {
                    tokens.push(d.u32()?);
                }
                FromWorker::Result(WireResult {
                    id,
                    text,
                    tokens,
                    outcome: outcome_from_tag(d.u8()?)?,
                    cached_tokens: d.u64()?,
                    new_tokens: d.u64()?,
                    degraded_spans: d.u64()?,
                    store_hits: d.u64()?,
                    store_misses: d.u64()?,
                })
            }
            TAG_SERVE_ERR => {
                let id = d.u64()?;
                let error = match d.u8()? {
                    0 => WireError::UnknownSchema(d.string()?),
                    1 => WireError::EmptyPrompt,
                    2 => WireError::Other(d.string()?),
                    t => return Err(Dec::bad(&format!("error tag {t}"))),
                };
                FromWorker::ServeErr { id, error }
            }
            t => return Err(Dec::bad(&format!("from-worker tag {t}"))),
        };
        d.done()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blueprint() -> EngineBlueprint {
        EngineBlueprint::new(
            ModelConfig::falcon_tiny(300),
            7,
            TokenizerSpec::Bpe {
                corpus: vec!["hello world".into(), "fleet of workers".into()],
                vocab_size: 280,
            },
        )
        .zero_copy(false)
    }

    #[test]
    fn to_worker_round_trips() {
        let msgs = [
            ToWorker::Hello {
                worker_id: 3,
                blueprint: blueprint(),
            },
            ToWorker::Register {
                pml: "<schema name=\"s\"/>".into(),
                warm: false,
            },
            ToWorker::Serve {
                id: 42,
                prompt: "<prompt schema=\"s\">hi</prompt>".into(),
                options: WireOptions {
                    max_new_tokens: 9,
                    temperature: Some((0.7, 11)),
                    use_scaffolds: true,
                    deadline: Some(Duration::from_millis(250)),
                },
                baseline: true,
            },
            ToWorker::Shutdown,
        ];
        for msg in msgs {
            let frame = msg.to_frame();
            assert_eq!(ToWorker::from_frame(&frame).unwrap(), msg);
        }
    }

    #[test]
    fn from_worker_round_trips() {
        let msgs = [
            FromWorker::Ready,
            FromWorker::Registered {
                error: String::new(),
            },
            FromWorker::Result(WireResult {
                id: 5,
                text: "ok".into(),
                tokens: vec![1, 2, 3],
                outcome: ServeOutcome::DeadlineExceeded,
                cached_tokens: 10,
                new_tokens: 2,
                degraded_spans: 1,
                store_hits: 4,
                store_misses: 1,
            }),
            FromWorker::ServeErr {
                id: 6,
                error: WireError::UnknownSchema("ghost".into()),
            },
            FromWorker::ServeErr {
                id: 7,
                error: WireError::Other("model: singular".into()),
            },
        ];
        for msg in msgs {
            let frame = msg.to_frame();
            assert_eq!(FromWorker::from_frame(&frame).unwrap(), msg);
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"beta").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), b"beta");
        assert!(read_frame(&mut r).is_err(), "eof is an error");
    }

    #[test]
    fn wire_errors_reconstruct() {
        let e = EngineError::UnknownSchema { name: "x".into() };
        assert_eq!(WireError::from_engine(&e).into_engine(), e);
        let e = EngineError::EmptyPrompt;
        assert_eq!(WireError::from_engine(&e).into_engine(), e);
        let e = EngineError::InvalidScaffold { detail: "d".into() };
        match WireError::from_engine(&e).into_engine() {
            EngineError::Remote { detail } => assert!(detail.contains("invalid scaffold")),
            other => panic!("expected Remote, got {other:?}"),
        }
    }

    #[test]
    fn blueprint_builds_identical_engines() {
        let bp = blueprint();
        let a = bp.build();
        let b = bp.build();
        let schema = r#"<schema name="s"><module name="m">hello world</module></schema>"#;
        a.register_schema(schema).unwrap();
        b.register_schema(schema).unwrap();
        let req = prompt_cache::ServeRequest::new(r#"<prompt schema="s"><m/>fleet</prompt>"#)
            .max_new_tokens(4);
        let ra = a.serve(&req).unwrap().into_response();
        let rb = b.serve(&req).unwrap().into_response();
        assert_eq!(ra.tokens, rb.tokens);
        assert_eq!(ra.text, rb.text);
    }
}
