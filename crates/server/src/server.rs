//! The worker-pool server: bounded admission, deadline-aware shedding,
//! cooperative cancellation, and drain-or-cancel shutdown.

use crate::metrics::MetricsSnapshot;
use crate::ops::OpsHandle;
use crate::submit::SubmitRequest;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use pc_telemetry::flight::BATCH_SCOPE;
use pc_telemetry::{Counter, FlightEvent, FlightRecorder, Gauge, Histogram, Telemetry};
use prompt_cache::{
    BatchConfig, BatchScheduler, BatchSnapshot, CancelToken, EngineError, PromptCache, Response,
    ServeOptions, ServeOutcome, ServeRequest, Served,
};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
///
/// Build with [`Default`] plus the chainable setters:
///
/// ```
/// use pc_server::ServerConfig;
/// use prompt_cache::BatchConfig;
///
/// let config = ServerConfig::default()
///     .workers(2)
///     .queue_capacity(128)
///     .batching(BatchConfig::default().max_batch_size(4));
/// assert_eq!(config.workers, 2);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Worker threads draining the queue (ignored when `batching` is
    /// set — continuous batching uses one scheduler thread).
    pub workers: usize,
    /// Maximum queued (not yet picked up) requests. [`Server::submit`]
    /// blocks the caller beyond this; [`Server::try_submit`] sheds
    /// instead — non-blocking admission control.
    pub queue_capacity: usize,
    /// Continuous batching: when set, requests are served by a single
    /// [`prompt_cache::BatchScheduler`] loop that admits queued requests
    /// into an in-flight decode batch (joining at any step, leaving on
    /// EOS/deadline/cancel) instead of a pool of one-request-at-a-time
    /// workers. Greedy outputs are byte-identical either way.
    pub batching: Option<BatchConfig>,
    /// Ops-plane HTTP address: when set, [`Server::start`] binds a plain
    /// [`std::net::TcpListener`] here and serves `GET /metrics`,
    /// `/healthz`, `/debug/cache`, `/debug/batch`, and `/debug/flight`
    /// from one listener thread (no HTTP library). Use port 0 for an
    /// ephemeral port and read it back with [`Server::ops_local_addr`].
    /// `None` (the default) binds nothing and spawns nothing.
    pub ops_addr: Option<SocketAddr>,
    /// Flight-recorder capacity in events: when nonzero, every request
    /// leaves a structured event trail (submit, shed, pickup, batch
    /// join/leave, per-tick membership, fetch, degrade, finish) in a
    /// fixed-size ring, dumpable via [`Server::flight_json`] and
    /// `/debug/flight`. Zero (the default) allocates no ring; recording
    /// sites cost one `Option` check.
    pub flight_capacity: usize,
}

impl Default for ServerConfig {
    /// Workers follow [`prompt_cache::Parallelism::from_env`] (the
    /// `PC_THREADS` environment variable, else the number of available
    /// cores), so the whole serving stack scales with one knob.
    fn default() -> Self {
        ServerConfig {
            workers: prompt_cache::Parallelism::from_env().num_threads.max(2),
            queue_capacity: 64,
            batching: None,
            ops_addr: None,
            flight_capacity: 0,
        }
    }
}

impl ServerConfig {
    /// Sets the worker-thread count (one-request-at-a-time mode).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the admission-queue capacity.
    #[must_use]
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Enables continuous batching with the given batch configuration.
    #[must_use]
    pub fn batching(mut self, config: BatchConfig) -> Self {
        self.batching = Some(config);
        self
    }

    /// Enables the ops-plane HTTP endpoint on `addr` (see
    /// [`ServerConfig::ops_addr`]).
    #[must_use]
    pub fn ops_addr(mut self, addr: SocketAddr) -> Self {
        self.ops_addr = Some(addr);
        self
    }

    /// Enables the request flight recorder with room for `capacity`
    /// events (see [`ServerConfig::flight_capacity`]).
    #[must_use]
    pub fn flight_recorder(mut self, capacity: usize) -> Self {
        self.flight_capacity = capacity;
        self
    }
}

/// Why the server refused or abandoned a request without serving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The request's deadline had already passed when a worker picked it
    /// up — serving it would only waste the worker.
    DeadlineBeforeStart,
    /// The request's [`CancelToken`] fired while it was still queued.
    CancelledInQueue,
    /// The server was shutting down with a bounded grace
    /// ([`Server::shutdown_within`]); queued work is shed, not served.
    ShuttingDown,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::DeadlineBeforeStart => write!(f, "deadline passed before pickup"),
            ShedReason::CancelledInQueue => write!(f, "cancelled while queued"),
            ShedReason::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

/// Rejection returned by [`Server::try_submit`] — the request never
/// entered the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity.
    QueueFull,
    /// The predicted queue wait ((queue depth + in-flight) × EWMA
    /// service time ÷ service slots) already exceeds the request's
    /// deadline, so admitting it could only produce a dead-on-pickup
    /// shed later.
    PredictedDeadlineExceeded {
        /// The wait estimate that tripped the rejection.
        estimated_wait: Duration,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "request queue is full"),
            SubmitError::PredictedDeadlineExceeded { estimated_wait } => write!(
                f,
                "estimated queue wait {:.3}s exceeds the request deadline",
                estimated_wait.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// How one request ended: a response, an engine error, or shed without
/// ever reaching the engine.
///
/// `Ok` covers *partial* responses too — check
/// [`Response::outcome`](prompt_cache::Response) for
/// [`ServeOutcome::Cancelled`] / [`ServeOutcome::DeadlineExceeded`]
/// before treating the tokens as a finished generation.
#[derive(Debug)]
pub enum RequestOutcome {
    /// The engine produced a response (possibly partial).
    Ok(Response),
    /// The engine failed.
    Err(EngineError),
    /// The request was shed before the engine saw it.
    Shed(ShedReason),
}

impl RequestOutcome {
    /// The response, panicking on `Err`/`Shed` — mirrors `Result::unwrap`
    /// so straightforward callers read the same as before shedding
    /// existed.
    #[track_caller]
    pub fn unwrap(self) -> Response {
        match self {
            RequestOutcome::Ok(response) => response,
            RequestOutcome::Err(e) => panic!("request failed: {e}"),
            RequestOutcome::Shed(reason) => panic!("request shed: {reason}"),
        }
    }

    /// The response, panicking with `msg` on `Err`/`Shed`.
    #[track_caller]
    pub fn expect(self, msg: &str) -> Response {
        match self {
            RequestOutcome::Ok(response) => response,
            RequestOutcome::Err(e) => panic!("{msg}: {e}"),
            RequestOutcome::Shed(reason) => panic!("{msg}: shed ({reason})"),
        }
    }

    /// The response, if the request was served.
    pub fn ok(self) -> Option<Response> {
        match self {
            RequestOutcome::Ok(response) => Some(response),
            _ => None,
        }
    }

    /// Whether the engine produced a response.
    pub fn is_ok(&self) -> bool {
        matches!(self, RequestOutcome::Ok(_))
    }

    /// Whether the engine returned an error (shed requests are *not*
    /// errors — test [`RequestOutcome::is_shed`]).
    pub fn is_err(&self) -> bool {
        matches!(self, RequestOutcome::Err(_))
    }

    /// Whether the request was shed before reaching the engine.
    pub fn is_shed(&self) -> bool {
        matches!(self, RequestOutcome::Shed(_))
    }

    /// The shed reason, if the request was shed.
    pub fn shed_reason(&self) -> Option<ShedReason> {
        match self {
            RequestOutcome::Shed(reason) => Some(*reason),
            _ => None,
        }
    }
}

/// The completed result of one request.
#[derive(Debug)]
pub struct RequestResult {
    /// The id assigned at submission.
    pub id: u64,
    /// How the request ended.
    pub outcome: RequestOutcome,
    /// Time spent queued before a worker started serving (for shed
    /// requests: time queued before the shed decision).
    pub queue_time: Duration,
    /// Time the worker spent serving (zero for shed requests).
    pub service_time: Duration,
}

/// A handle to a submitted request.
#[derive(Debug)]
pub struct RequestHandle {
    id: u64,
    cancel: CancelToken,
    rx: Receiver<RequestResult>,
}

impl RequestHandle {
    /// Builds a handle — shared with the fleet router, whose submission
    /// path mints the same handle type as the single-process server.
    pub(crate) fn assemble(id: u64, cancel: CancelToken, rx: Receiver<RequestResult>) -> Self {
        RequestHandle { id, cancel, rx }
    }

    /// The request's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Fires the request's [`CancelToken`]: queued, it is shed at pickup;
    /// in flight, the serve stops within one decode step and returns its
    /// partial response. Idempotent.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until the request completes. Returns `None` only if the
    /// server was shut down before serving it.
    pub fn wait(self) -> Option<RequestResult> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<RequestResult> {
        self.rx.try_recv().ok()
    }
}

struct Job {
    id: u64,
    prompt: String,
    options: ServeOptions,
    baseline: bool,
    /// The effective request token (caller's token, linked to server
    /// shutdown, narrowed by the submission-relative deadline) — also
    /// stored in `options.cancel`; kept here so pickup-time shed checks
    /// don't dig through options.
    cancel: CancelToken,
    /// The submission-relative latency budget the caller set via
    /// [`ServeOptions::deadline`] (consumed into the token's absolute
    /// deadline by `make_job`) — kept for SLO burn accounting.
    budget: Option<Duration>,
    submitted: Instant,
    reply: Sender<RequestResult>,
}

/// Injected worker-side stalls for chaos testing: the fault harness
/// (`pc-faults`) implements this to simulate slow or stuck workers. The
/// stall applies after pickup, before the engine serve, so a stalled
/// worker both delays its own request past its deadline *and* backs up
/// the queue behind it — exactly the failure mode load-shedding exists
/// for.
pub trait WorkerFaults: Send + Sync + std::fmt::Debug {
    /// Stall to apply before serving request `id`; `Duration::ZERO` for
    /// a healthy pickup.
    fn pre_serve_delay(&self, id: u64) -> Duration;
}

/// SLO budget-burn histogram buckets: fractions of the latency budget
/// consumed (1.0 = the request used exactly its budget; above = a
/// violation).
const SLO_BURN_BUCKETS: &[f64] = &[0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.25, 1.5, 2.0, 5.0, 10.0];

/// Per-server metric state: an always-on [`Telemetry`] registry with
/// pre-resolved handles. Recording is atomics-only on the worker path;
/// the registry lock is touched exactly once per handle, here.
pub(crate) struct Shared {
    telemetry: Telemetry,
    served: Counter,
    failed: Counter,
    shed: Counter,
    cancelled: Counter,
    deadline_exceeded: Counter,
    degraded: Counter,
    ttft: Histogram,
    service: Histogram,
    queue: Histogram,
    queue_depth: Gauge,
    /// Requests picked up but not yet completed (a worker serving, or a
    /// sequence in the in-flight batch). Feeds the admission-control
    /// wait estimate alongside the queue depth.
    in_flight: Gauge,
    /// Deadline-carrying requests completed (the SLO denominator).
    slo_requests: Counter,
    /// Deadline-carrying requests that blew their budget — overran
    /// in flight, or were shed dead-on-pickup.
    slo_violations: Counter,
    /// Budget burn: (queue + service) ÷ deadline, per completed
    /// deadline-carrying request.
    slo_burn: Histogram,
    /// EWMA of worker service time in nanoseconds (α = 1/8), feeding the
    /// admission-control wait estimate. Zero until the first completion.
    ewma_service_ns: AtomicU64,
    /// Set by [`Server::shutdown_within`]: queued jobs are shed instead
    /// of served.
    draining: AtomicBool,
    faults: Mutex<Option<Arc<dyn WorkerFaults>>>,
    /// When the server started — `pc_uptime_seconds` and `/healthz`.
    started: Instant,
    /// Queue capacity, echoed by `/healthz` next to the live depth.
    queue_capacity: usize,
    /// The flight recorder; `None` (the default) means every recording
    /// site is a single `Option` check and no ring exists.
    flight: Option<Arc<FlightRecorder>>,
    /// Latest batch-membership snapshot, published once per scheduler
    /// tick for `/debug/batch` — only when `publish_batch_debug` is set.
    batch_debug: Mutex<Option<BatchSnapshot>>,
    /// Set when the ops endpoint is up: tells the batch loop to publish
    /// `batch_debug`. Off by default so unobserved servers skip the
    /// snapshot entirely.
    publish_batch_debug: AtomicBool,
}

impl Shared {
    fn new(queue_capacity: usize, flight: Option<Arc<FlightRecorder>>) -> Self {
        let telemetry = Telemetry::new();
        Shared {
            served: telemetry.counter("pc_requests_served_total"),
            failed: telemetry.counter("pc_requests_failed_total"),
            shed: telemetry.counter("pc_requests_shed_total"),
            cancelled: telemetry.counter("pc_requests_cancelled_total"),
            deadline_exceeded: telemetry.counter("pc_requests_deadline_exceeded_total"),
            degraded: telemetry.counter("pc_degraded_serves_total"),
            ttft: telemetry.latency_histogram("pc_ttft_seconds"),
            service: telemetry.latency_histogram("pc_service_seconds"),
            queue: telemetry.latency_histogram("pc_queue_wait_seconds"),
            queue_depth: telemetry.gauge("pc_queue_depth"),
            in_flight: telemetry.gauge("pc_requests_in_flight"),
            slo_requests: telemetry.counter("pc_slo_requests_total"),
            slo_violations: telemetry.counter("pc_slo_violations_total"),
            slo_burn: telemetry.histogram("pc_slo_budget_burn_ratio", SLO_BURN_BUCKETS),
            ewma_service_ns: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            faults: Mutex::new(None),
            started: Instant::now(),
            queue_capacity,
            flight,
            batch_debug: Mutex::new(None),
            publish_batch_debug: AtomicBool::new(false),
            telemetry,
        }
    }

    /// Records a flight event — the closure only runs when the recorder
    /// exists, so the disabled path is exactly one `Option` check and
    /// never builds the event.
    fn record_flight(&self, make: impl FnOnce() -> FlightEvent) {
        if let Some(flight) = &self.flight {
            flight.record(make());
        }
    }

    /// SLO accounting for one completed deadline-carrying request:
    /// observes the budget burn and counts a violation when the request
    /// overran its budget (or the engine reported a deadline overrun).
    fn record_slo(&self, budget: Duration, elapsed: Duration, overran: bool) {
        self.slo_requests.inc();
        let burn = elapsed.as_secs_f64() / budget.as_secs_f64().max(1e-9);
        self.slo_burn.observe(burn);
        if burn > 1.0 || overran {
            self.slo_violations.inc();
        }
    }

    fn record_service_sample(&self, service: Duration) {
        let sample = u64::try_from(service.as_nanos()).unwrap_or(u64::MAX);
        let old = self.ewma_service_ns.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            // α = 1/8: old * 7/8 + sample/8, computed in u128 to avoid
            // overflow on pathological samples.
            ((old as u128 * 7 + sample as u128) / 8) as u64
        };
        self.ewma_service_ns.store(new, Ordering::Relaxed);
    }
}

/// A multi-threaded Prompt Cache server. See the [crate docs](crate).
pub struct Server {
    tx: Option<Sender<Job>>,
    /// Kept for queue-depth reads in the admission-control wait estimate
    /// (never `recv`'d from here).
    queue_rx: Receiver<Job>,
    workers: Vec<JoinHandle<()>>,
    /// Effective service parallelism for the wait estimate: worker count
    /// in pool mode, `max_batch_size` in batched mode.
    slots: usize,
    shared: Arc<Shared>,
    next_id: AtomicU64,
    /// Parent of every request token: fired by
    /// [`Server::shutdown_within`] to cancel in-flight serves.
    shutdown_token: CancelToken,
    engine: Arc<PromptCache>,
    /// The ops-plane HTTP listener, when [`ServerConfig::ops_addr`] set
    /// one; stopped on shutdown/drop.
    ops: Option<OpsHandle>,
}

impl Server {
    /// Starts the server over `engine`: a worker pool by default, or —
    /// when [`ServerConfig::batching`] is set — a single continuous-
    /// batching scheduler thread that admits queued requests into an
    /// in-flight decode batch.
    ///
    /// # Panics
    ///
    /// Panics if [`ServerConfig::ops_addr`] is set and the address
    /// cannot be bound — an unreachable ops plane that was explicitly
    /// asked for is a deployment error, not something to limp past.
    pub fn start(engine: PromptCache, config: ServerConfig) -> Self {
        let engine = Arc::new(engine);
        let flight = (config.flight_capacity > 0)
            .then(|| Arc::new(FlightRecorder::new(config.flight_capacity)));
        // The module store shares the server's recorder, so tier
        // demotions/restores land in the same /debug/flight stream as
        // request lifecycle events (under the "store" scope).
        engine.store().set_flight_recorder(flight.clone());
        let shared = Arc::new(Shared::new(config.queue_capacity.max(1), flight));
        let (tx, rx) = bounded::<Job>(config.queue_capacity.max(1));
        let (workers, slots) = if let Some(batch_config) = config.batching {
            let slots = batch_config.max_batch_size;
            let rx2 = rx.clone();
            let engine2 = Arc::clone(&engine);
            let shared2 = Arc::clone(&shared);
            let handle =
                std::thread::spawn(move || batch_loop(&rx2, &engine2, &shared2, batch_config));
            (vec![handle], slots)
        } else {
            let n = config.workers.max(1);
            let workers = (0..n)
                .map(|_| {
                    let rx = rx.clone();
                    let engine = Arc::clone(&engine);
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || worker_loop(&rx, &engine, &shared))
                })
                .collect();
            (workers, n)
        };
        let ops = config.ops_addr.map(|addr| {
            shared.publish_batch_debug.store(true, Ordering::Release);
            crate::ops::spawn(addr, Arc::clone(&shared), Arc::clone(&engine))
                .unwrap_or_else(|e| panic!("ops endpoint bind failed on {addr}: {e}"))
        });
        Server {
            tx: Some(tx),
            queue_rx: rx,
            workers,
            slots,
            shared,
            next_id: AtomicU64::new(0),
            shutdown_token: CancelToken::new(),
            engine,
            ops,
        }
    }

    /// The engine behind the server (for registration and stats).
    pub fn engine(&self) -> &PromptCache {
        &self.engine
    }

    /// Submits a request built with [`SubmitRequest`] — the single
    /// submission entry point.
    ///
    /// Non-blocking by default: rejects immediately when the queue is at
    /// capacity, or when the predicted queue wait already exceeds the
    /// request's deadline (see [`Server::estimated_queue_wait`]).
    /// With [`SubmitRequest::blocking`] the call instead waits for queue
    /// space and never errors — the closed-loop benchmark mode.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] or
    /// [`SubmitError::PredictedDeadlineExceeded`] (never with
    /// `.blocking(true)`).
    pub fn submit_request(
        &self,
        request: &SubmitRequest,
    ) -> Result<RequestHandle, SubmitError> {
        let prompt = request.prompt().to_string();
        let options = request.options_ref().clone();
        if request.is_blocking() {
            Ok(self.submit_inner(prompt, options, request.is_baseline()))
        } else {
            self.try_submit_inner(prompt, options, request.is_baseline())
        }
    }

    /// Submits a cached-inference request.
    ///
    /// **Blocks the calling thread while the queue is full** — fine for
    /// closed-loop benchmarks, a footgun for anything latency-sensitive:
    /// under overload every submitter stalls here with no error and no
    /// timeout.
    #[deprecated(note = "build a `SubmitRequest` with `.blocking(true)` and call \
                         `Server::submit_request`")]
    pub fn submit(&self, prompt_pml: String, options: ServeOptions) -> RequestHandle {
        self.submit_inner(prompt_pml, options, false)
    }

    /// Submits a baseline (full-prefill) request — lets load experiments
    /// mix both paths through the same queue. Blocks when the queue is
    /// full.
    #[deprecated(note = "build a `SubmitRequest` with `.baseline(true).blocking(true)` and \
                         call `Server::submit_request`")]
    pub fn submit_baseline(&self, prompt_pml: String, options: ServeOptions) -> RequestHandle {
        self.submit_inner(prompt_pml, options, true)
    }

    /// Non-blocking admission: rejects immediately when the queue is at
    /// capacity, or when the predicted queue wait ((queue depth +
    /// in-flight) × EWMA service time ÷ slots) already exceeds the request's
    /// [`ServeOptions::deadline`]. Rejections count toward
    /// `pc_requests_shed_total`; the request never enters the queue.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] or
    /// [`SubmitError::PredictedDeadlineExceeded`].
    #[deprecated(note = "build a `SubmitRequest` (non-blocking is the default) and call \
                         `Server::submit_request`")]
    pub fn try_submit(
        &self,
        prompt_pml: String,
        options: ServeOptions,
    ) -> Result<RequestHandle, SubmitError> {
        self.try_submit_inner(prompt_pml, options, false)
    }

    fn try_submit_inner(
        &self,
        prompt_pml: String,
        options: ServeOptions,
        baseline: bool,
    ) -> Result<RequestHandle, SubmitError> {
        // Build the job first so even admission-time sheds carry a
        // request id in the flight recorder (ids stay unique and
        // monotone; a rejected id is simply never served).
        let (job, handle) = self.make_job(prompt_pml, options, baseline);
        self.shared.record_flight(|| submit_event(&job));
        if let Some(deadline) = job.budget {
            let estimated_wait = self.estimated_queue_wait();
            if estimated_wait > deadline {
                let _shed_span = self.shared.telemetry.span("shed");
                self.shared.shed.inc();
                self.shared.record_flight(|| {
                    FlightEvent::new(job.id, "shed")
                        .field("reason", "predicted_deadline")
                        .timing_us("estimated_wait", micros(estimated_wait))
                });
                return Err(SubmitError::PredictedDeadlineExceeded { estimated_wait });
            }
        }
        // The gauge moves *before* the send so a worker (or the batch
        // loop) picking the job up immediately can never decrement past
        // zero; on rejection the increment is rolled back.
        self.shared.queue_depth.add(1);
        match self
            .tx
            .as_ref()
            .expect("server not shut down")
            .try_send(job)
        {
            Ok(()) => Ok(handle),
            Err(TrySendError::Full(job) | TrySendError::Disconnected(job)) => {
                self.shared.queue_depth.add(-1);
                let _shed_span = self.shared.telemetry.span("shed");
                self.shared.shed.inc();
                self.shared.record_flight(|| {
                    FlightEvent::new(job.id, "shed").field("reason", "queue_full")
                });
                Err(SubmitError::QueueFull)
            }
        }
    }

    /// The admission-control wait estimate: (queued + in-flight)
    /// requests × EWMA service time ÷ service slots (workers, or the
    /// maximum batch size in batched mode). Zero until the first request
    /// completes. Counting in-flight occupancy matters under batching:
    /// the queue can be empty while the batch is full, and a new request
    /// still waits a full service time for a slot.
    pub fn estimated_queue_wait(&self) -> Duration {
        let ewma = self.shared.ewma_service_ns.load(Ordering::Relaxed);
        let in_flight = self.shared.in_flight.get().max(0) as u64;
        let depth = self.queue_rx.len() as u64 + in_flight;
        let slots = self.slots.max(1) as u64;
        Duration::from_nanos(depth.saturating_mul(ewma) / slots)
    }

    fn make_job(
        &self,
        prompt: String,
        mut options: ServeOptions,
        baseline: bool,
    ) -> (Job, RequestHandle) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = bounded(1);
        // Build the effective request token *at submission*: the caller's
        // token (cancelling their clone still works — the flag is shared)
        // linked to server shutdown, with the relative deadline converted
        // to an absolute one so queue wait counts against the budget.
        let base = options.cancel.take().unwrap_or_default();
        let mut token = base.linked_to(&self.shutdown_token);
        let budget = options.deadline.take();
        if let Some(budget) = budget {
            token = token.with_budget(budget);
        }
        options.cancel = Some(token.clone());
        let job = Job {
            id,
            prompt,
            options,
            baseline,
            cancel: token.clone(),
            budget,
            submitted: Instant::now(),
            reply,
        };
        (job, RequestHandle { id, cancel: token, rx })
    }

    fn submit_inner(&self, prompt: String, options: ServeOptions, baseline: bool) -> RequestHandle {
        let (job, handle) = self.make_job(prompt, options, baseline);
        self.shared.record_flight(|| submit_event(&job));
        self.shared.queue_depth.add(1);
        self.tx
            .as_ref()
            .expect("server not shut down")
            .send(job)
            .expect("workers alive while server exists");
        handle
    }

    /// Installs (or clears, with `None`) a worker-fault injector — see
    /// [`WorkerFaults`]. Takes effect from the next pickup.
    pub fn set_worker_faults(&self, faults: Option<Arc<dyn WorkerFaults>>) {
        *self.shared.faults.lock().unwrap() = faults;
    }

    /// Current metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let dur = |s: Option<f64>| s.map(Duration::from_secs_f64);
        MetricsSnapshot {
            served: self.shared.served.get(),
            failed: self.shared.failed.get(),
            shed: self.shared.shed.get(),
            cancelled: self.shared.cancelled.get(),
            ttft_p50: dur(self.shared.ttft.percentile(50.0)),
            ttft_p95: dur(self.shared.ttft.percentile(95.0)),
            ttft_p99: dur(self.shared.ttft.percentile(99.0)),
            service_mean: dur(self.shared.service.mean()),
            queue_mean: dur(self.shared.queue.mean()),
        }
    }

    /// All server and cache metrics in Prometheus text exposition format
    /// — the payload a `/metrics` HTTP endpoint would return. Contains
    /// the server's own registry (`pc_requests_*_total` including the
    /// shed/cancelled/deadline counters, `pc_degraded_serves_total`, the
    /// `pc_ttft_seconds` / `pc_service_seconds` / `pc_queue_wait_seconds`
    /// histograms, the `pc_queue_depth` gauge), everything the engine's
    /// telemetry recorded (when enabled), and the module-store counters
    /// (`pc_cache_*_total`), which are synthesised from the always-on
    /// [`prompt_cache::PromptCache::store_stats`] if the engine registry
    /// did not already provide them. Names the engine registry shares
    /// with the server registry (e.g. `pc_degraded_serves_total`) keep
    /// the server's series — no duplicates. Appends the per-module cache
    /// analytics series (`pc_module_*`, when
    /// [`pc_cache::StoreConfig::module_analytics`] is on), the
    /// `pc_build_info` info-gauge, and `pc_uptime_seconds`. Identical to
    /// what `GET /metrics` on the ops endpoint returns.
    pub fn metrics_text(&self) -> String {
        render_metrics(&self.shared, &self.engine)
    }

    /// The bound address of the ops-plane HTTP endpoint, when
    /// [`ServerConfig::ops_addr`] enabled one — resolves port 0 to the
    /// actual ephemeral port.
    pub fn ops_local_addr(&self) -> Option<SocketAddr> {
        self.ops.as_ref().map(OpsHandle::local_addr)
    }

    /// The flight recorder's events as JSON Lines (one event per line,
    /// oldest first), including wall-clock timings. Empty when the
    /// recorder is disabled — same payload as `GET /debug/flight`.
    pub fn flight_json(&self) -> String {
        self.shared
            .flight
            .as_ref()
            .map(|f| f.jsonl())
            .unwrap_or_default()
    }

    /// Like [`Server::flight_json`] but without the wall-clock
    /// `timings_us` payload: for a deterministic workload (seeded
    /// faults, sequential submission), two same-seed runs produce
    /// byte-identical dumps.
    pub fn flight_json_deterministic(&self) -> String {
        self.shared
            .flight
            .as_ref()
            .map(|f| f.deterministic_jsonl())
            .unwrap_or_default()
    }

    /// The server's own telemetry registry (always enabled; distinct from
    /// the engine's [`prompt_cache::EngineConfig::telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Graceful shutdown: drains the queue and joins the workers. Every
    /// pending request completes first; new submissions are impossible
    /// afterwards. Unbounded — a deep queue takes as long as it takes;
    /// use [`Server::shutdown_within`] for a bounded exit.
    pub fn shutdown(mut self) {
        self.tx.take(); // close the channel; workers exit on disconnect
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(ops) = self.ops.take() {
            ops.stop();
        }
    }

    /// Drain-or-cancel shutdown with a bounded grace period:
    ///
    /// 1. queued (not yet picked up) requests are shed with
    ///    [`ShedReason::ShuttingDown`];
    /// 2. in-flight serves are cancelled via the server's shutdown token
    ///    — each returns its partial response within one decode step;
    /// 3. workers are joined for up to `grace`.
    ///
    /// Returns `true` if every worker exited within the grace period;
    /// `false` means stragglers were detached (they still hold their
    /// engine `Arc` and finish in the background, but nothing waits for
    /// them).
    pub fn shutdown_within(mut self, grace: Duration) -> bool {
        self.shared.draining.store(true, Ordering::Release);
        self.shutdown_token.cancel();
        self.tx.take();
        let deadline = Instant::now() + grace;
        loop {
            if self.workers.iter().all(JoinHandle::is_finished) {
                break;
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let all_done = self.workers.iter().all(JoinHandle::is_finished);
        for handle in self.workers.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            }
            // Unfinished handles are detached by the drop.
        }
        if let Some(ops) = self.ops.take() {
            ops.stop();
        }
        all_done
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(ops) = self.ops.take() {
            ops.stop();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("served", &self.shared.served.get())
            .finish()
    }
}

/// Pickup-time shed check shared by both serving modes: `Some(reason)`
/// if the job is already dead (drained, cancelled, or past its
/// deadline) and serving it would only waste the slot.
fn pickup_shed_reason(shared: &Shared, job: &Job) -> Option<ShedReason> {
    if shared.draining.load(Ordering::Acquire) {
        Some(ShedReason::ShuttingDown)
    } else if job.cancel.is_cancelled() {
        Some(ShedReason::CancelledInQueue)
    } else if job.cancel.interruption() == Some(ServeOutcome::DeadlineExceeded) {
        Some(ShedReason::DeadlineBeforeStart)
    } else {
        None
    }
}

/// The flight-recorder label for a pickup-time shed.
fn shed_reason_label(reason: ShedReason) -> &'static str {
    match reason {
        ShedReason::DeadlineBeforeStart => "deadline_before_start",
        ShedReason::CancelledInQueue => "cancelled_in_queue",
        ShedReason::ShuttingDown => "shutting_down",
    }
}

/// Saturating microseconds, for flight-event timings.
fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// The flight-recorder "submit" event for a freshly built job.
fn submit_event(job: &Job) -> FlightEvent {
    let mut event = FlightEvent::new(job.id, "submit")
        .field("prompt_chars", job.prompt.len())
        .field("baseline", job.baseline);
    if let Some(budget) = job.budget {
        event = event.field("budget_ms", u64::try_from(budget.as_millis()).unwrap_or(u64::MAX));
    }
    event
}

/// Records a pickup-time shed and replies — never reaches the engine.
fn shed_at_pickup(shared: &Shared, job: &Job, reason: ShedReason, queue_time: Duration) {
    let _shed_span = shared.telemetry.span("shed");
    shared.shed.inc();
    if reason == ShedReason::CancelledInQueue {
        shared.cancelled.inc();
    }
    shared.record_flight(|| {
        FlightEvent::new(job.id, "shed")
            .field("reason", shed_reason_label(reason))
            .timing_us("queue", micros(queue_time))
    });
    // A request that died in the queue past its own deadline burned its
    // whole budget without being served: an SLO violation.
    if reason == ShedReason::DeadlineBeforeStart {
        if let Some(budget) = job.budget {
            shared.record_slo(budget, queue_time, true);
        }
    }
    shared.queue.observe(queue_time.as_secs_f64());
    let _ = job.reply.send(RequestResult {
        id: job.id,
        outcome: RequestOutcome::Shed(reason),
        queue_time,
        service_time: Duration::ZERO,
    });
}

/// Chaos hook: a stalled pickup delays this request *and* backs up the
/// queue behind it.
fn apply_fault_stall(shared: &Shared, id: u64) {
    let stall = shared
        .faults
        .lock()
        .unwrap()
        .as_ref()
        .map_or(Duration::ZERO, |f| f.pre_serve_delay(id));
    if !stall.is_zero() {
        std::thread::sleep(stall);
    }
}

/// Stringifies a [`ServeOutcome`] for flight events.
fn outcome_label(outcome: ServeOutcome) -> &'static str {
    match outcome {
        ServeOutcome::Complete => "complete",
        ServeOutcome::Cancelled => "cancelled",
        ServeOutcome::DeadlineExceeded => "deadline_exceeded",
    }
}

/// Records completion metrics, flight events, and SLO burn, then
/// replies — shared by the worker pool and the batch loop so both modes
/// produce identical series and event trails.
fn complete_request(
    shared: &Shared,
    reply: &Sender<RequestResult>,
    id: u64,
    outcome: Result<Response, EngineError>,
    queue_time: Duration,
    service_time: Duration,
    budget: Option<Duration>,
) {
    match &outcome {
        Ok(response) => {
            shared.served.inc();
            match response.outcome {
                ServeOutcome::Complete => {}
                ServeOutcome::Cancelled => {
                    let _cancel_span = shared.telemetry.span("cancel");
                    shared.cancelled.inc();
                }
                ServeOutcome::DeadlineExceeded => {
                    shared.deadline_exceeded.inc();
                }
            }
            // TTFT is only meaningful when a first token exists.
            if !response.tokens.is_empty() {
                shared.ttft.observe(response.timings.ttft.as_secs_f64());
            }
            if response.stats.degraded_spans > 0 {
                shared.degraded.inc();
            }
            shared.record_flight(|| {
                FlightEvent::new(id, "fetch")
                    .field("cached_tokens", response.stats.cached_tokens)
                    .field("new_tokens", response.stats.new_tokens)
                    .field("bytes_shared", response.stats.bytes_shared)
                    .field("bytes_copied", response.stats.bytes_copied)
                    .field("used_scaffold", response.stats.used_scaffold)
            });
            if response.stats.degraded_spans > 0 {
                shared.record_flight(|| {
                    FlightEvent::new(id, "degrade")
                        .field("spans", response.stats.degraded_spans)
                });
            }
            shared.record_flight(|| {
                FlightEvent::new(id, "finish")
                    .field("outcome", outcome_label(response.outcome))
                    .field("tokens", response.tokens.len())
                    .timing_us("queue", micros(queue_time))
                    .timing_us("service", micros(service_time))
                    .timing_us("ttft", micros(response.timings.ttft))
                    .timing_us("tokenize", micros(response.breakdown.tokenize))
                    .timing_us("fetch", micros(response.breakdown.fetch))
                    .timing_us("prefill", micros(response.breakdown.prefill))
                    .timing_us("sample", micros(response.breakdown.sample))
            });
            if let Some(budget) = budget {
                shared.record_slo(
                    budget,
                    queue_time + service_time,
                    response.outcome == ServeOutcome::DeadlineExceeded,
                );
            }
        }
        Err(_) => {
            shared.failed.inc();
            shared.record_flight(|| {
                FlightEvent::new(id, "finish")
                    .field("outcome", "error")
                    .timing_us("queue", micros(queue_time))
                    .timing_us("service", micros(service_time))
            });
        }
    }
    shared.record_service_sample(service_time);
    shared.service.observe(service_time.as_secs_f64());
    shared.queue.observe(queue_time.as_secs_f64());
    // Receiver may have been dropped (caller gave up) — fine.
    let _ = reply.send(RequestResult {
        id,
        outcome: match outcome {
            Ok(response) => RequestOutcome::Ok(response),
            Err(e) => RequestOutcome::Err(e),
        },
        queue_time,
        service_time,
    });
}

fn worker_loop(rx: &Receiver<Job>, engine: &PromptCache, shared: &Shared) {
    while let Ok(job) = rx.recv() {
        shared.queue_depth.add(-1);
        let queue_time = job.submitted.elapsed();

        // Pickup-time shedding: don't burn a worker on a request that is
        // already dead (drained, cancelled, or past its deadline).
        if let Some(reason) = pickup_shed_reason(shared, &job) {
            shed_at_pickup(shared, &job, reason, queue_time);
            continue;
        }
        apply_fault_stall(shared, job.id);
        shared.record_flight(|| {
            FlightEvent::new(job.id, "pickup").timing_us("queue", micros(queue_time))
        });

        shared.in_flight.add(1);
        let start = Instant::now();
        let outcome = if job.baseline {
            engine.serve(&ServeRequest::new(&job.prompt).options(job.options.clone()).baseline(true)).map(Served::into_response)
        } else {
            engine.serve(&ServeRequest::new(&job.prompt).options(job.options.clone())).map(Served::into_response)
        };
        let service_time = start.elapsed();
        shared.in_flight.add(-1);
        complete_request(
            shared,
            &job.reply,
            job.id,
            outcome,
            queue_time,
            service_time,
            job.budget,
        );
    }
}

/// What the batch loop keeps per admitted sequence, so the request can
/// be completed when the scheduler retires it.
struct InFlightEntry {
    reply: Sender<RequestResult>,
    queue_time: Duration,
    picked: Instant,
    budget: Option<Duration>,
}

/// The batch-scoped per-tick flight event: live membership plus prefix
/// grouping, e.g. `members: "0,1,2"`, `groups: "0+1|2"` (`+` joins
/// members sharing a prefix group, `|` separates groups).
fn tick_event(snapshot: &BatchSnapshot) -> FlightEvent {
    let members = snapshot
        .sequences
        .iter()
        .map(|s| s.id.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let groups = snapshot
        .groups
        .iter()
        .map(|g| {
            g.members
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join("+")
        })
        .collect::<Vec<_>>()
        .join("|");
    FlightEvent::new(BATCH_SCOPE, "tick")
        .field("members", members)
        .field("groups", groups)
}

/// The continuous-batching serve loop: one thread drives a
/// [`BatchScheduler`], admitting queued requests into the in-flight
/// batch whenever it has room (each joins at the batch's current decode
/// step) and completing them as they retire (EOS, budget, deadline,
/// cancel). Blocks on the queue only when the batch is empty; while
/// sequences are decoding, admission is a non-blocking drain so decode
/// ticks never stall behind an idle queue.
fn batch_loop(rx: &Receiver<Job>, engine: &PromptCache, shared: &Shared, config: BatchConfig) {
    let mut sched = BatchScheduler::new(engine, config).with_telemetry(&shared.telemetry);
    let mut inflight: std::collections::HashMap<u64, InFlightEntry> =
        std::collections::HashMap::new();
    let mut open = true;
    while open || !sched.is_idle() {
        if open && sched.is_idle() {
            // Nothing decoding: block for work like a pooled worker.
            match rx.recv() {
                Ok(job) => admit_job(&mut sched, &mut inflight, engine, shared, job),
                Err(_) => {
                    open = false;
                    continue;
                }
            }
        }
        // Fill the batch from the queue without blocking the decode tick.
        while open && sched.has_capacity() {
            match rx.try_recv() {
                Ok(job) => admit_job(&mut sched, &mut inflight, engine, shared, job),
                Err(crossbeam::channel::TryRecvError::Empty) => break,
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    open = false;
                    break;
                }
            }
        }
        // Publish batch membership for the ops plane and the flight
        // recorder before the tick mutates it. Both are off by default:
        // an unobserved server skips the snapshot entirely.
        if shared.publish_batch_debug.load(Ordering::Acquire) || shared.flight.is_some() {
            let snapshot = sched.debug_snapshot();
            if !snapshot.sequences.is_empty() {
                shared.record_flight(|| tick_event(&snapshot));
            }
            *shared.batch_debug.lock().unwrap() = Some(snapshot);
        }
        for (id, result) in sched.step() {
            let Some(entry) = inflight.remove(&id) else {
                continue;
            };
            shared.in_flight.add(-1);
            shared.record_flight(|| FlightEvent::new(id, "batch_leave"));
            let service_time = entry.picked.elapsed();
            complete_request(
                shared,
                &entry.reply,
                id,
                result,
                entry.queue_time,
                service_time,
                entry.budget,
            );
        }
    }
}

/// Moves one queued job into the batch (or completes it on the spot:
/// shed at pickup, inline baseline serve, or admission error).
fn admit_job(
    sched: &mut BatchScheduler<'_>,
    inflight: &mut std::collections::HashMap<u64, InFlightEntry>,
    engine: &PromptCache,
    shared: &Shared,
    job: Job,
) {
    shared.queue_depth.add(-1);
    let queue_time = job.submitted.elapsed();
    if let Some(reason) = pickup_shed_reason(shared, &job) {
        shed_at_pickup(shared, &job, reason, queue_time);
        return;
    }
    apply_fault_stall(shared, job.id);
    shared.record_flight(|| {
        FlightEvent::new(job.id, "pickup").timing_us("queue", micros(queue_time))
    });

    let picked = Instant::now();
    if job.baseline {
        // A baseline request is a full prefill with nothing to share —
        // serve it inline on the scheduler thread rather than batching.
        let outcome = engine
            .serve(&ServeRequest::new(&job.prompt).options(job.options.clone()).baseline(true))
            .map(Served::into_response);
        complete_request(
            shared,
            &job.reply,
            job.id,
            outcome,
            queue_time,
            picked.elapsed(),
            job.budget,
        );
        return;
    }
    match sched.admit(job.id, &job.prompt, &job.options) {
        Ok(()) => {
            shared.in_flight.add(1);
            shared.record_flight(|| {
                FlightEvent::new(job.id, "batch_join").field("in_flight", sched.in_flight())
            });
            inflight.insert(
                job.id,
                InFlightEntry { reply: job.reply, queue_time, picked, budget: job.budget },
            );
        }
        Err(e) => {
            complete_request(
                shared,
                &job.reply,
                job.id,
                Err(e),
                queue_time,
                picked.elapsed(),
                job.budget,
            );
        }
    }
}

/// Feature inventory baked into `pc_build_info` — compile-time, so the
/// series is constant for a given binary.
const BUILD_FEATURES: &str = "serve,batching,prefix-sharing,ops,flight-recorder";

/// Minimal JSON string escaping for the debug endpoints (module labels,
/// status strings).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON number-or-null for optional percentiles.
fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_owned(), |v| format!("{v:.6}"))
}

/// The full Prometheus payload: server registry + engine registry
/// (deduplicated) + `StoreStats` fallback counters + per-module
/// analytics series + build info + uptime. Shared by
/// [`Server::metrics_text`] and the ops endpoint's `GET /metrics`.
pub(crate) fn render_metrics(shared: &Shared, engine: &PromptCache) -> String {
    let mut snap = shared.telemetry.snapshot();
    let engine_snap = engine.telemetry().snapshot();
    let have: std::collections::HashSet<String> =
        snap.counters.iter().map(|(n, _)| n.clone()).collect();
    snap.counters.extend(
        engine_snap
            .counters
            .into_iter()
            .filter(|(n, _)| !have.contains(n)),
    );
    snap.gauges.extend(engine_snap.gauges);
    snap.histograms.extend(engine_snap.histograms);
    let stats = engine.store_stats();
    for (name, value) in [
        ("pc_cache_hits_total", stats.hits),
        ("pc_cache_misses_total", stats.misses),
        ("pc_cache_device_hits_total", stats.device_hits),
        ("pc_cache_evictions_total", stats.evictions),
        ("pc_cache_bytes_copied_h2d_total", stats.bytes_copied_h2d),
        ("pc_cache_corruptions_total", stats.corruptions_detected),
        ("pc_demotions_total", stats.demotions),
        ("pc_promotions_total", stats.promotions),
        ("pc_cache_disk_hits_total", stats.disk_hits),
        ("pc_cache_disk_corruptions_total", stats.disk_corruptions),
    ] {
        if !snap.counters.iter().any(|(n, _)| n == name) {
            snap.counters.push((name.to_owned(), value));
        }
    }
    snap.counters.sort();
    snap.gauges.sort();
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    let mut text = pc_telemetry::export::prometheus_text(&snap);
    if let Some(analytics) = engine.store().analytics() {
        text.push_str(&analytics.prometheus_text());
    }
    use std::fmt::Write as _;
    let help = pc_telemetry::export::help_for;
    let _ = writeln!(
        text,
        "# HELP pc_build_info {}\n# TYPE pc_build_info gauge\n\
         pc_build_info{{version=\"{}\",features=\"{}\"}} 1",
        help("pc_build_info"),
        env!("CARGO_PKG_VERSION"),
        BUILD_FEATURES,
    );
    let _ = writeln!(
        text,
        "# HELP pc_store_tier_bytes {}\n# TYPE pc_store_tier_bytes gauge\n\
         pc_store_tier_bytes{{tier=\"host\"}} {}\n\
         pc_store_tier_bytes{{tier=\"device\"}} {}\n\
         pc_store_tier_bytes{{tier=\"disk\"}} {}",
        help("pc_store_tier_bytes"),
        engine.store().host_bytes(),
        engine.store().device_bytes(),
        engine.store().disk_bytes(),
    );
    let _ = writeln!(
        text,
        "# HELP pc_uptime_seconds {}\n# TYPE pc_uptime_seconds gauge\n\
         pc_uptime_seconds {:.3}",
        help("pc_uptime_seconds"),
        shared.started.elapsed().as_secs_f64(),
    );
    text
}

/// The `/healthz` JSON: liveness, admission/queue state, and the SLO
/// rollup (tracked deadline requests, violations, burn percentiles).
pub(crate) fn render_healthz(shared: &Shared) -> String {
    let draining = shared.draining.load(Ordering::Acquire);
    format!(
        "{{\"status\":\"{}\",\"uptime_seconds\":{:.3},\
         \"queue_depth\":{},\"queue_capacity\":{},\"in_flight\":{},\
         \"served\":{},\"failed\":{},\"shed\":{},\"cancelled\":{},\
         \"slo\":{{\"tracked\":{},\"violations\":{},\
         \"burn_p50\":{},\"burn_p99\":{}}}}}",
        if draining { "draining" } else { "ok" },
        shared.started.elapsed().as_secs_f64(),
        shared.queue_depth.get().max(0),
        shared.queue_capacity,
        shared.in_flight.get().max(0),
        shared.served.get(),
        shared.failed.get(),
        shared.shed.get(),
        shared.cancelled.get(),
        shared.slo_requests.get(),
        shared.slo_violations.get(),
        json_opt(shared.slo_burn.percentile(50.0)),
        json_opt(shared.slo_burn.percentile(99.0)),
    )
}

/// The `/debug/cache` JSON: aggregate store stats, the per-entry
/// snapshot, and (when module analytics are on) the heat ranking.
pub(crate) fn render_debug_cache(engine: &PromptCache) -> String {
    use std::fmt::Write as _;
    let stats = engine.store_stats();
    let mut out = format!(
        "{{\"stats\":{{\"hits\":{},\"misses\":{},\"device_hits\":{},\
         \"evictions\":{},\"bytes_copied_h2d\":{},\"corruptions\":{},\
         \"demotions\":{},\"promotions\":{},\"disk_hits\":{},\
         \"disk_corruptions\":{},\"disk_bytes\":{}}},\
         \"modules\":[",
        stats.hits,
        stats.misses,
        stats.device_hits,
        stats.evictions,
        stats.bytes_copied_h2d,
        stats.corruptions_detected,
        stats.demotions,
        stats.promotions,
        stats.disk_hits,
        stats.disk_corruptions,
        engine.store().disk_bytes(),
    );
    for (i, m) in engine.store().snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"module\":\"{}\",\"size_bytes\":{},\"on_device\":{},\"tier\":\"{}\",\
             \"access_count\":{},\"last_access\":{},\"recompute_cost\":{:.3}}}",
            json_escape(&m.module),
            m.size_bytes,
            m.on_device,
            m.tier,
            m.access_count,
            m.last_access,
            m.recompute_cost,
        );
    }
    out.push_str("],\"heat\":[");
    if let Some(analytics) = engine.store().analytics() {
        for (i, h) in analytics.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"module\":\"{}\",\"hits\":{},\"misses\":{},\"degrades\":{},\
                 \"evictions\":{},\"relocations\":{},\"bytes_shared\":{},\
                 \"bytes_copied\":{},\"shared_rows\":{},\"last_access_tick\":{}}}",
                json_escape(&h.module),
                h.hits,
                h.misses,
                h.degrades,
                h.evictions,
                h.relocations,
                h.bytes_shared,
                h.bytes_copied,
                h.shared_rows,
                h.last_access_tick,
            );
        }
    }
    out.push_str("]}");
    out
}

/// The `/debug/batch` JSON: the latest published batch-membership
/// snapshot, or `{"enabled":false}` when the server is not batching (or
/// no tick has run yet).
pub(crate) fn render_debug_batch(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let snapshot = shared.batch_debug.lock().unwrap().clone();
    let Some(snapshot) = snapshot else {
        return "{\"enabled\":false}".to_owned();
    };
    let mut out = format!(
        "{{\"enabled\":true,\"max_batch_size\":{},\"prefix_sharing\":{},\"sequences\":[",
        snapshot.max_batch_size, snapshot.prefix_sharing,
    );
    for (i, s) in snapshot.sequences.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"tokens_generated\":{},\"next_pos\":{},\"shared_rows\":{}}}",
            s.id, s.tokens_generated, s.next_pos, s.shared_rows,
        );
    }
    out.push_str("],\"groups\":[");
    for (i, g) in snapshot.groups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let members = g
            .members
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let _ = write!(
            out,
            "{{\"members\":[{members}],\"prefix_segments\":{},\"prefix_rows\":{},\"shared\":{}}}",
            g.prefix_segments, g.prefix_rows, g.shared,
        );
    }
    out.push_str("]}");
    out
}

/// The `/debug/flight` payload: JSON Lines, or `None` when the flight
/// recorder is disabled (the endpoint answers 404).
pub(crate) fn render_flight(shared: &Shared) -> Option<String> {
    shared.flight.as_ref().map(|f| f.jsonl())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_model::{Model, ModelConfig};
    use pc_tokenizer::{Tokenizer, WordTokenizer};
    use prompt_cache::EngineConfig;

    const CORPUS: &str =
        "alpha beta gamma delta epsilon zeta eta theta question one two three four";

    fn engine() -> PromptCache {
        let tokenizer = WordTokenizer::train(&[CORPUS]);
        let vocab = tokenizer.vocab_size().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_tiny(vocab), 5),
            tokenizer,
            EngineConfig::default(),
        );
        engine
            .register_schema(
                r#"<schema name="s">
                     <module name="ctx">alpha beta gamma delta epsilon zeta eta theta</module>
                   </schema>"#,
            )
            .unwrap();
        engine
    }

    fn opts() -> ServeOptions {
        ServeOptions::default().max_new_tokens(2)
    }

    fn submit(server: &Server, prompt: String, options: ServeOptions) -> RequestHandle {
        server
            .submit_request(&SubmitRequest::new(prompt).options(options).blocking(true))
            .expect("blocking submit cannot fail")
    }

    fn submit_baseline(server: &Server, prompt: String, options: ServeOptions) -> RequestHandle {
        server
            .submit_request(
                &SubmitRequest::new(prompt)
                    .options(options)
                    .baseline(true)
                    .blocking(true),
            )
            .expect("blocking submit cannot fail")
    }

    fn try_submit(
        server: &Server,
        prompt: String,
        options: ServeOptions,
    ) -> Result<RequestHandle, SubmitError> {
        server.submit_request(&SubmitRequest::new(prompt).options(options))
    }

    #[test]
    fn serves_a_request() {
        let server = Server::start(engine(), ServerConfig::default());
        let result = submit(&server, r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap();
        let response = result.outcome.unwrap();
        assert!(response.stats.cached_tokens > 0);
        assert_eq!(server.metrics().served, 1);
        server.shutdown();
    }

    #[test]
    fn concurrent_results_match_direct_serving() {
        let reference = engine()
            .serve(&ServeRequest::new(r#"<prompt schema="s"><ctx/>question</prompt>"#).options(opts().clone())).map(Served::into_response)
            .unwrap()
            .tokens;
        let server = Server::start(engine(), ServerConfig::default().workers(4).queue_capacity(64));
        let handles: Vec<_> = (0..32)
            .map(|_| {
                submit(&server, r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            })
            .collect();
        for handle in handles {
            let result = handle.wait().unwrap();
            assert_eq!(result.outcome.unwrap().tokens, reference);
        }
        let m = server.metrics();
        assert_eq!(m.served, 32);
        assert_eq!(m.failed, 0);
        assert!(m.ttft_p50.is_some() && m.ttft_p99 >= m.ttft_p50);
        server.shutdown();
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let server = Server::start(engine(), ServerConfig::default());
        let bad = submit(&server, r#"<prompt schema="ghost">x</prompt>"#.into(), opts())
            .wait()
            .unwrap();
        assert!(bad.outcome.is_err());
        // Server keeps serving afterwards.
        let good = submit(&server, r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap();
        assert!(good.outcome.is_ok());
        let m = server.metrics();
        assert_eq!((m.served, m.failed), (1, 1));
        server.shutdown();
    }

    #[test]
    fn baseline_and_cached_paths_share_the_queue() {
        let server = Server::start(engine(), ServerConfig::default());
        let cached = submit(&server, r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap()
            .outcome
            .unwrap();
        let baseline = submit_baseline(&server, r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap()
            .outcome
            .unwrap();
        assert_eq!(cached.tokens, baseline.tokens);
        assert_eq!(baseline.stats.cached_tokens, 0);
        server.shutdown();
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let server = Server::start(engine(), ServerConfig::default());
        let a = submit(&server, r#"<prompt schema="s"><ctx/>one</prompt>"#.into(), opts());
        let b = submit(&server, r#"<prompt schema="s"><ctx/>two</prompt>"#.into(), opts());
        assert!(b.id() > a.id());
        a.wait().unwrap();
        b.wait().unwrap();
        server.shutdown();
    }

    #[test]
    fn drop_without_shutdown_joins_cleanly() {
        let server = Server::start(engine(), ServerConfig::default());
        let handle = submit(&server, r#"<prompt schema="s"><ctx/>one</prompt>"#.into(), opts());
        handle.wait().unwrap();
        drop(server); // Drop impl joins workers without hanging
    }

    #[test]
    fn metrics_text_is_valid_prometheus_with_expected_series() {
        let server = Server::start(engine(), ServerConfig::default());
        submit(&server, r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap();
        let text = server.metrics_text();
        assert!(text.contains("# TYPE pc_cache_hits_total counter"), "{text}");
        assert!(text.contains("# TYPE pc_ttft_seconds histogram"), "{text}");
        assert!(text.contains("pc_ttft_seconds_bucket{le=\""), "{text}");
        assert!(text.contains("# TYPE pc_queue_depth gauge"), "{text}");
        assert!(text.contains("pc_requests_served_total 1"), "{text}");
        assert!(text.contains("pc_requests_shed_total 0"), "{text}");
        assert!(text.contains("pc_requests_cancelled_total 0"), "{text}");
        assert!(text.contains("pc_degraded_serves_total 0"), "{text}");
        assert!(text.contains("pc_cache_corruptions_total 0"), "{text}");
        // Build metadata rides along: an info-gauge labeled with version
        // and feature inventory, plus process uptime.
        assert!(
            text.contains(&format!(
                "pc_build_info{{version=\"{}\",features=\"",
                env!("CARGO_PKG_VERSION")
            )),
            "{text}"
        );
        assert!(text.contains("# TYPE pc_build_info gauge"), "{text}");
        assert!(text.contains("# TYPE pc_uptime_seconds gauge"), "{text}");
        assert!(text.contains("pc_uptime_seconds "), "{text}");
        // Every line parses as `# HELP …`, `# TYPE …`, or
        // `name[{labels}] value` — and every `# TYPE` is preceded by a
        // `# HELP` for the same series.
        let mut last_help: Option<&str> = None;
        let mut typed_series = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP name text");
                assert!(!help.trim().is_empty(), "empty HELP for {name}");
                last_help = Some(name);
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split(' ').next().unwrap();
                assert_eq!(
                    last_help,
                    Some(name),
                    "series {name} must carry a HELP line immediately before its TYPE"
                );
                typed_series += 1;
                continue;
            }
            assert!(!line.starts_with('#'), "unexpected comment: {line}");
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
        }
        assert!(typed_series > 10, "expected many typed series, got {typed_series}");
        server.shutdown();
    }

    #[test]
    fn metrics_text_merges_enabled_engine_telemetry_without_duplicates() {
        let tokenizer = WordTokenizer::train(&[CORPUS]);
        let vocab = tokenizer.vocab_size().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_tiny(vocab), 5),
            tokenizer,
            EngineConfig::default().telemetry(pc_telemetry::Telemetry::new()),
        );
        engine
            .register_schema(
                r#"<schema name="s">
                     <module name="ctx">alpha beta gamma delta epsilon zeta eta theta</module>
                   </schema>"#,
            )
            .unwrap();
        let server = Server::start(engine, ServerConfig::default());
        submit(&server, r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap();
        let text = server.metrics_text();
        // The engine registry provides the cache counters; the StoreStats
        // fallback must not add a second series with the same name.
        let hits_lines = text
            .lines()
            .filter(|l| l.starts_with("pc_cache_hits_total "))
            .count();
        assert_eq!(hits_lines, 1, "{text}");
        // Engine and server registries both define
        // pc_degraded_serves_total; the merge must keep exactly one.
        let degraded_lines = text
            .lines()
            .filter(|l| l.starts_with("pc_degraded_serves_total "))
            .count();
        assert_eq!(degraded_lines, 1, "{text}");
        // Engine-side metrics (sampled model timing) show up too.
        assert!(text.contains("pc_model_attention_seconds"), "{text}");
        server.shutdown();
    }

    #[test]
    fn batched_server_matches_worker_pool_byte_for_byte() {
        let prompt = r#"<prompt schema="s"><ctx/>question</prompt>"#;
        let reference = engine()
            .serve(&ServeRequest::new(prompt).options(opts()))
            .map(Served::into_response)
            .unwrap()
            .tokens;
        let server = Server::start(
            engine(),
            ServerConfig::default()
                .queue_capacity(64)
                .batching(BatchConfig::default().max_batch_size(4)),
        );
        let handles: Vec<_> = (0..16).map(|_| submit(&server, prompt.into(), opts())).collect();
        for handle in handles {
            let result = handle.wait().unwrap();
            assert_eq!(result.outcome.unwrap().tokens, reference);
        }
        let m = server.metrics();
        assert_eq!((m.served, m.failed), (16, 0));
        // Batch telemetry lands in the server's always-on registry.
        let text = server.metrics_text();
        assert!(text.contains("pc_batch_occupancy"), "{text}");
        assert!(text.contains("pc_tokens_generated_total"), "{text}");
        server.shutdown();
    }

    #[test]
    fn batched_server_reports_errors_and_serves_baselines_inline() {
        let server = Server::start(
            engine(),
            ServerConfig::default().batching(BatchConfig::default().max_batch_size(2)),
        );
        let bad = submit(&server, r#"<prompt schema="ghost">x</prompt>"#.into(), opts())
            .wait()
            .unwrap();
        assert!(bad.outcome.is_err());
        let cached = submit(&server, r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap()
            .outcome
            .unwrap();
        let baseline = submit_baseline(&server, r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap()
            .outcome
            .unwrap();
        assert_eq!(cached.tokens, baseline.tokens);
        assert_eq!(baseline.stats.cached_tokens, 0);
        let m = server.metrics();
        assert_eq!((m.served, m.failed), (2, 1));
        server.shutdown();
    }

    #[test]
    fn batched_server_cancels_in_flight_requests() {
        let server = Server::start(
            engine(),
            ServerConfig::default().batching(BatchConfig::default().max_batch_size(4)),
        );
        let prompt = r#"<prompt schema="s"><ctx/>question</prompt>"#;
        let handle = submit(&server, prompt.into(), ServeOptions::default().max_new_tokens(10_000));
        handle.cancel();
        let result = handle.wait().unwrap();
        match result.outcome {
            RequestOutcome::Ok(r) => assert_eq!(r.outcome, ServeOutcome::Cancelled),
            RequestOutcome::Shed(reason) => assert_eq!(reason, ShedReason::CancelledInQueue),
            RequestOutcome::Err(e) => panic!("unexpected error: {e}"),
        }
        assert!(server.metrics().cancelled >= 1);
        server.shutdown();
    }

    #[test]
    fn batched_shutdown_within_bounds_the_exit() {
        let server = Server::start(
            engine(),
            ServerConfig::default().batching(BatchConfig::default().max_batch_size(2)),
        );
        let prompt = r#"<prompt schema="s"><ctx/>question</prompt>"#;
        let handles: Vec<_> = (0..4)
            .map(|_| submit(&server, prompt.into(), ServeOptions::default().max_new_tokens(100_000)))
            .collect();
        assert!(server.shutdown_within(Duration::from_secs(30)));
        for handle in handles {
            if let Some(result) = handle.wait() {
                match result.outcome {
                    RequestOutcome::Ok(r) => assert_eq!(r.outcome, ServeOutcome::Cancelled),
                    RequestOutcome::Shed(_) => {}
                    RequestOutcome::Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
    }

    #[test]
    fn queue_depth_gauge_never_reads_negative() {
        let server = Server::start(
            engine(),
            ServerConfig::default()
                .queue_capacity(2)
                .batching(BatchConfig::default().max_batch_size(2)),
        );
        let prompt = r#"<prompt schema="s"><ctx/>question</prompt>"#;
        let depth = server.telemetry().gauge("pc_queue_depth");
        let mut handles = Vec::new();
        for _ in 0..16 {
            assert!(depth.get() >= 0, "queue depth dipped below zero");
            match try_submit(&server, prompt.into(), opts()) {
                Ok(handle) => handles.push(handle),
                Err(SubmitError::QueueFull) => {}
                Err(e) => panic!("unexpected rejection: {e}"),
            }
        }
        for handle in handles {
            handle.wait().unwrap();
        }
        assert!(depth.get() >= 0);
        server.shutdown();
    }

    #[test]
    fn queue_time_is_recorded() {
        let server = Server::start(engine(), ServerConfig::default().workers(1).queue_capacity(64));
        // Pile up work on a single worker so later requests queue.
        let handles: Vec<_> = (0..8)
            .map(|_| submit(&server, r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts()))
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        assert!(server.metrics().queue_mean.unwrap() > Duration::ZERO);
        server.shutdown();
    }
}
