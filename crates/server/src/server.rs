//! The worker-pool server.

use crate::metrics::{LatencyRecorder, MetricsSnapshot};
use crossbeam::channel::{bounded, Receiver, Sender};
use prompt_cache::{EngineError, PromptCache, Response, ServeOptions};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Maximum queued (not yet picked up) requests; submits beyond this
    /// block the caller — simple admission control.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    /// Workers follow [`prompt_cache::Parallelism::from_env`] (the
    /// `PC_THREADS` environment variable, else the number of available
    /// cores), so the whole serving stack scales with one knob.
    fn default() -> Self {
        ServerConfig {
            workers: prompt_cache::Parallelism::from_env().num_threads.max(2),
            queue_capacity: 64,
        }
    }
}

/// The completed result of one request.
#[derive(Debug)]
pub struct RequestResult {
    /// The id assigned at submission.
    pub id: u64,
    /// The engine outcome.
    pub outcome: Result<Response, EngineError>,
    /// Time spent queued before a worker started serving.
    pub queue_time: Duration,
    /// Time the worker spent serving.
    pub service_time: Duration,
}

/// A handle to a submitted request.
#[derive(Debug)]
pub struct RequestHandle {
    id: u64,
    rx: Receiver<RequestResult>,
}

impl RequestHandle {
    /// The request's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request completes. Returns `None` only if the
    /// server was shut down before serving it.
    pub fn wait(self) -> Option<RequestResult> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<RequestResult> {
        self.rx.try_recv().ok()
    }
}

struct Job {
    id: u64,
    prompt: String,
    options: ServeOptions,
    baseline: bool,
    submitted: Instant,
    reply: Sender<RequestResult>,
}

#[derive(Default)]
struct Shared {
    served: AtomicU64,
    failed: AtomicU64,
    ttft: LatencyRecorder,
    service: LatencyRecorder,
    queue: LatencyRecorder,
}

/// A multi-threaded Prompt Cache server. See the [crate docs](crate).
pub struct Server {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    next_id: AtomicU64,
    engine: Arc<PromptCache>,
}

impl Server {
    /// Starts the worker pool over `engine`.
    pub fn start(engine: PromptCache, config: ServerConfig) -> Self {
        let engine = Arc::new(engine);
        let shared = Arc::new(Shared::default());
        let (tx, rx) = bounded::<Job>(config.queue_capacity.max(1));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let engine = Arc::clone(&engine);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&rx, &engine, &shared))
            })
            .collect();
        Server {
            tx: Some(tx),
            workers,
            shared,
            next_id: AtomicU64::new(0),
            engine,
        }
    }

    /// The engine behind the server (for registration and stats).
    pub fn engine(&self) -> &PromptCache {
        &self.engine
    }

    /// Submits a cached-inference request. Blocks when the queue is full.
    pub fn submit(&self, prompt_pml: String, options: ServeOptions) -> RequestHandle {
        self.submit_inner(prompt_pml, options, false)
    }

    /// Submits a baseline (full-prefill) request — lets load experiments
    /// mix both paths through the same queue.
    pub fn submit_baseline(&self, prompt_pml: String, options: ServeOptions) -> RequestHandle {
        self.submit_inner(prompt_pml, options, true)
    }

    fn submit_inner(&self, prompt: String, options: ServeOptions, baseline: bool) -> RequestHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = bounded(1);
        let job = Job {
            id,
            prompt,
            options,
            baseline,
            submitted: Instant::now(),
            reply,
        };
        self.tx
            .as_ref()
            .expect("server not shut down")
            .send(job)
            .expect("workers alive while server exists");
        RequestHandle { id, rx }
    }

    /// Current metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            served: self.shared.served.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            ttft_p50: self.shared.ttft.percentile(50.0),
            ttft_p95: self.shared.ttft.percentile(95.0),
            ttft_p99: self.shared.ttft.percentile(99.0),
            service_mean: self.shared.service.mean(),
            queue_mean: self.shared.queue.mean(),
        }
    }

    /// Drains the queue and joins the workers. Pending requests complete
    /// first; new submissions are impossible afterwards.
    pub fn shutdown(mut self) {
        self.tx.take(); // close the channel; workers exit on disconnect
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("served", &self.shared.served.load(Ordering::Relaxed))
            .finish()
    }
}

fn worker_loop(rx: &Receiver<Job>, engine: &PromptCache, shared: &Shared) {
    while let Ok(job) = rx.recv() {
        let queue_time = job.submitted.elapsed();
        let start = Instant::now();
        let outcome = if job.baseline {
            engine.serve_baseline(&job.prompt, &job.options)
        } else {
            engine.serve_with(&job.prompt, &job.options)
        };
        let service_time = start.elapsed();
        match &outcome {
            Ok(response) => {
                shared.served.fetch_add(1, Ordering::Relaxed);
                shared.ttft.record(response.timings.ttft);
            }
            Err(_) => {
                shared.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        shared.service.record(service_time);
        shared.queue.record(queue_time);
        // Receiver may have been dropped (caller gave up) — fine.
        let _ = job.reply.send(RequestResult {
            id: job.id,
            outcome,
            queue_time,
            service_time,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_model::{Model, ModelConfig};
    use pc_tokenizer::{Tokenizer, WordTokenizer};
    use prompt_cache::EngineConfig;

    const CORPUS: &str =
        "alpha beta gamma delta epsilon zeta eta theta question one two three four";

    fn engine() -> PromptCache {
        let tokenizer = WordTokenizer::train(&[CORPUS]);
        let vocab = tokenizer.vocab_size().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_tiny(vocab), 5),
            tokenizer,
            EngineConfig::default(),
        );
        engine
            .register_schema(
                r#"<schema name="s">
                     <module name="ctx">alpha beta gamma delta epsilon zeta eta theta</module>
                   </schema>"#,
            )
            .unwrap();
        engine
    }

    fn opts() -> ServeOptions {
        ServeOptions {
            max_new_tokens: 2,
            ..Default::default()
        }
    }

    #[test]
    fn serves_a_request() {
        let server = Server::start(engine(), ServerConfig::default());
        let result = server
            .submit(r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap();
        let response = result.outcome.unwrap();
        assert!(response.stats.cached_tokens > 0);
        assert_eq!(server.metrics().served, 1);
        server.shutdown();
    }

    #[test]
    fn concurrent_results_match_direct_serving() {
        let reference = engine()
            .serve_with(r#"<prompt schema="s"><ctx/>question</prompt>"#, &opts())
            .unwrap()
            .tokens;
        let server = Server::start(
            engine(),
            ServerConfig {
                workers: 4,
                queue_capacity: 64,
            },
        );
        let handles: Vec<_> = (0..32)
            .map(|_| {
                server.submit(r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            })
            .collect();
        for handle in handles {
            let result = handle.wait().unwrap();
            assert_eq!(result.outcome.unwrap().tokens, reference);
        }
        let m = server.metrics();
        assert_eq!(m.served, 32);
        assert_eq!(m.failed, 0);
        assert!(m.ttft_p50.is_some() && m.ttft_p99 >= m.ttft_p50);
        server.shutdown();
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let server = Server::start(engine(), ServerConfig::default());
        let bad = server
            .submit(r#"<prompt schema="ghost">x</prompt>"#.into(), opts())
            .wait()
            .unwrap();
        assert!(bad.outcome.is_err());
        // Server keeps serving afterwards.
        let good = server
            .submit(r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap();
        assert!(good.outcome.is_ok());
        let m = server.metrics();
        assert_eq!((m.served, m.failed), (1, 1));
        server.shutdown();
    }

    #[test]
    fn baseline_and_cached_paths_share_the_queue() {
        let server = Server::start(engine(), ServerConfig::default());
        let cached = server
            .submit(r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap()
            .outcome
            .unwrap();
        let baseline = server
            .submit_baseline(r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap()
            .outcome
            .unwrap();
        assert_eq!(cached.tokens, baseline.tokens);
        assert_eq!(baseline.stats.cached_tokens, 0);
        server.shutdown();
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let server = Server::start(engine(), ServerConfig::default());
        let a = server.submit(r#"<prompt schema="s"><ctx/>one</prompt>"#.into(), opts());
        let b = server.submit(r#"<prompt schema="s"><ctx/>two</prompt>"#.into(), opts());
        assert!(b.id() > a.id());
        a.wait().unwrap();
        b.wait().unwrap();
        server.shutdown();
    }

    #[test]
    fn drop_without_shutdown_joins_cleanly() {
        let server = Server::start(engine(), ServerConfig::default());
        let handle = server.submit(r#"<prompt schema="s"><ctx/>one</prompt>"#.into(), opts());
        handle.wait().unwrap();
        drop(server); // Drop impl joins workers without hanging
    }

    #[test]
    fn queue_time_is_recorded() {
        let server = Server::start(
            engine(),
            ServerConfig {
                workers: 1,
                queue_capacity: 64,
            },
        );
        // Pile up work on a single worker so later requests queue.
        let handles: Vec<_> = (0..8)
            .map(|_| server.submit(r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts()))
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        assert!(server.metrics().queue_mean.unwrap() > Duration::ZERO);
        server.shutdown();
    }
}
