//! The worker-pool server.

use crate::metrics::MetricsSnapshot;
use crossbeam::channel::{bounded, Receiver, Sender};
use pc_telemetry::{Counter, Gauge, Histogram, Telemetry};
use prompt_cache::{EngineError, PromptCache, Response, ServeOptions};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Maximum queued (not yet picked up) requests; submits beyond this
    /// block the caller — simple admission control.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    /// Workers follow [`prompt_cache::Parallelism::from_env`] (the
    /// `PC_THREADS` environment variable, else the number of available
    /// cores), so the whole serving stack scales with one knob.
    fn default() -> Self {
        ServerConfig {
            workers: prompt_cache::Parallelism::from_env().num_threads.max(2),
            queue_capacity: 64,
        }
    }
}

/// The completed result of one request.
#[derive(Debug)]
pub struct RequestResult {
    /// The id assigned at submission.
    pub id: u64,
    /// The engine outcome.
    pub outcome: Result<Response, EngineError>,
    /// Time spent queued before a worker started serving.
    pub queue_time: Duration,
    /// Time the worker spent serving.
    pub service_time: Duration,
}

/// A handle to a submitted request.
#[derive(Debug)]
pub struct RequestHandle {
    id: u64,
    rx: Receiver<RequestResult>,
}

impl RequestHandle {
    /// The request's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request completes. Returns `None` only if the
    /// server was shut down before serving it.
    pub fn wait(self) -> Option<RequestResult> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<RequestResult> {
        self.rx.try_recv().ok()
    }
}

struct Job {
    id: u64,
    prompt: String,
    options: ServeOptions,
    baseline: bool,
    submitted: Instant,
    reply: Sender<RequestResult>,
}

/// Per-server metric state: an always-on [`Telemetry`] registry with
/// pre-resolved handles, replacing the bespoke sample-vector aggregation
/// this crate used to carry. Recording is atomics-only on the worker
/// path; the registry lock is touched exactly once per handle, here.
struct Shared {
    telemetry: Telemetry,
    served: Counter,
    failed: Counter,
    ttft: Histogram,
    service: Histogram,
    queue: Histogram,
    queue_depth: Gauge,
}

impl Default for Shared {
    fn default() -> Self {
        let telemetry = Telemetry::new();
        Shared {
            served: telemetry.counter("pc_requests_served_total"),
            failed: telemetry.counter("pc_requests_failed_total"),
            ttft: telemetry.latency_histogram("pc_ttft_seconds"),
            service: telemetry.latency_histogram("pc_service_seconds"),
            queue: telemetry.latency_histogram("pc_queue_wait_seconds"),
            queue_depth: telemetry.gauge("pc_queue_depth"),
            telemetry,
        }
    }
}

/// A multi-threaded Prompt Cache server. See the [crate docs](crate).
pub struct Server {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    next_id: AtomicU64,
    engine: Arc<PromptCache>,
}

impl Server {
    /// Starts the worker pool over `engine`.
    pub fn start(engine: PromptCache, config: ServerConfig) -> Self {
        let engine = Arc::new(engine);
        let shared = Arc::new(Shared::default());
        let (tx, rx) = bounded::<Job>(config.queue_capacity.max(1));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let engine = Arc::clone(&engine);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&rx, &engine, &shared))
            })
            .collect();
        Server {
            tx: Some(tx),
            workers,
            shared,
            next_id: AtomicU64::new(0),
            engine,
        }
    }

    /// The engine behind the server (for registration and stats).
    pub fn engine(&self) -> &PromptCache {
        &self.engine
    }

    /// Submits a cached-inference request. Blocks when the queue is full.
    pub fn submit(&self, prompt_pml: String, options: ServeOptions) -> RequestHandle {
        self.submit_inner(prompt_pml, options, false)
    }

    /// Submits a baseline (full-prefill) request — lets load experiments
    /// mix both paths through the same queue.
    pub fn submit_baseline(&self, prompt_pml: String, options: ServeOptions) -> RequestHandle {
        self.submit_inner(prompt_pml, options, true)
    }

    fn submit_inner(&self, prompt: String, options: ServeOptions, baseline: bool) -> RequestHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = bounded(1);
        let job = Job {
            id,
            prompt,
            options,
            baseline,
            submitted: Instant::now(),
            reply,
        };
        self.shared.queue_depth.add(1);
        self.tx
            .as_ref()
            .expect("server not shut down")
            .send(job)
            .expect("workers alive while server exists");
        RequestHandle { id, rx }
    }

    /// Current metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let dur = |s: Option<f64>| s.map(Duration::from_secs_f64);
        MetricsSnapshot {
            served: self.shared.served.get(),
            failed: self.shared.failed.get(),
            ttft_p50: dur(self.shared.ttft.percentile(50.0)),
            ttft_p95: dur(self.shared.ttft.percentile(95.0)),
            ttft_p99: dur(self.shared.ttft.percentile(99.0)),
            service_mean: dur(self.shared.service.mean()),
            queue_mean: dur(self.shared.queue.mean()),
        }
    }

    /// All server and cache metrics in Prometheus text exposition format
    /// — the payload a `/metrics` HTTP endpoint would return. Contains
    /// the server's own registry (`pc_requests_*_total`, the
    /// `pc_ttft_seconds` / `pc_service_seconds` / `pc_queue_wait_seconds`
    /// histograms, the `pc_queue_depth` gauge), everything the engine's
    /// telemetry recorded (when enabled), and the module-store counters
    /// (`pc_cache_*_total`), which are synthesised from the always-on
    /// [`prompt_cache::PromptCache::store_stats`] if the engine registry
    /// did not already provide them.
    pub fn metrics_text(&self) -> String {
        let mut snap = self.shared.telemetry.snapshot();
        let engine_snap = self.engine.telemetry().snapshot();
        snap.counters.extend(engine_snap.counters);
        snap.gauges.extend(engine_snap.gauges);
        snap.histograms.extend(engine_snap.histograms);
        let stats = self.engine.store_stats();
        for (name, value) in [
            ("pc_cache_hits_total", stats.hits),
            ("pc_cache_misses_total", stats.misses),
            ("pc_cache_device_hits_total", stats.device_hits),
            ("pc_cache_evictions_total", stats.evictions),
            ("pc_cache_bytes_copied_h2d_total", stats.bytes_copied_h2d),
        ] {
            if !snap.counters.iter().any(|(n, _)| n == name) {
                snap.counters.push((name.to_owned(), value));
            }
        }
        snap.counters.sort();
        snap.gauges.sort();
        snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        pc_telemetry::export::prometheus_text(&snap)
    }

    /// The server's own telemetry registry (always enabled; distinct from
    /// the engine's [`prompt_cache::EngineConfig::telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Drains the queue and joins the workers. Pending requests complete
    /// first; new submissions are impossible afterwards.
    pub fn shutdown(mut self) {
        self.tx.take(); // close the channel; workers exit on disconnect
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("served", &self.shared.served.get())
            .finish()
    }
}

fn worker_loop(rx: &Receiver<Job>, engine: &PromptCache, shared: &Shared) {
    while let Ok(job) = rx.recv() {
        shared.queue_depth.add(-1);
        let queue_time = job.submitted.elapsed();
        let start = Instant::now();
        let outcome = if job.baseline {
            engine.serve_baseline(&job.prompt, &job.options)
        } else {
            engine.serve_with(&job.prompt, &job.options)
        };
        let service_time = start.elapsed();
        match &outcome {
            Ok(response) => {
                shared.served.inc();
                shared.ttft.observe(response.timings.ttft.as_secs_f64());
            }
            Err(_) => {
                shared.failed.inc();
            }
        }
        shared.service.observe(service_time.as_secs_f64());
        shared.queue.observe(queue_time.as_secs_f64());
        // Receiver may have been dropped (caller gave up) — fine.
        let _ = job.reply.send(RequestResult {
            id: job.id,
            outcome,
            queue_time,
            service_time,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_model::{Model, ModelConfig};
    use pc_tokenizer::{Tokenizer, WordTokenizer};
    use prompt_cache::EngineConfig;

    const CORPUS: &str =
        "alpha beta gamma delta epsilon zeta eta theta question one two three four";

    fn engine() -> PromptCache {
        let tokenizer = WordTokenizer::train(&[CORPUS]);
        let vocab = tokenizer.vocab_size().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_tiny(vocab), 5),
            tokenizer,
            EngineConfig::default(),
        );
        engine
            .register_schema(
                r#"<schema name="s">
                     <module name="ctx">alpha beta gamma delta epsilon zeta eta theta</module>
                   </schema>"#,
            )
            .unwrap();
        engine
    }

    fn opts() -> ServeOptions {
        ServeOptions {
            max_new_tokens: 2,
            ..Default::default()
        }
    }

    #[test]
    fn serves_a_request() {
        let server = Server::start(engine(), ServerConfig::default());
        let result = server
            .submit(r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap();
        let response = result.outcome.unwrap();
        assert!(response.stats.cached_tokens > 0);
        assert_eq!(server.metrics().served, 1);
        server.shutdown();
    }

    #[test]
    fn concurrent_results_match_direct_serving() {
        let reference = engine()
            .serve_with(r#"<prompt schema="s"><ctx/>question</prompt>"#, &opts())
            .unwrap()
            .tokens;
        let server = Server::start(
            engine(),
            ServerConfig {
                workers: 4,
                queue_capacity: 64,
            },
        );
        let handles: Vec<_> = (0..32)
            .map(|_| {
                server.submit(r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            })
            .collect();
        for handle in handles {
            let result = handle.wait().unwrap();
            assert_eq!(result.outcome.unwrap().tokens, reference);
        }
        let m = server.metrics();
        assert_eq!(m.served, 32);
        assert_eq!(m.failed, 0);
        assert!(m.ttft_p50.is_some() && m.ttft_p99 >= m.ttft_p50);
        server.shutdown();
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let server = Server::start(engine(), ServerConfig::default());
        let bad = server
            .submit(r#"<prompt schema="ghost">x</prompt>"#.into(), opts())
            .wait()
            .unwrap();
        assert!(bad.outcome.is_err());
        // Server keeps serving afterwards.
        let good = server
            .submit(r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap();
        assert!(good.outcome.is_ok());
        let m = server.metrics();
        assert_eq!((m.served, m.failed), (1, 1));
        server.shutdown();
    }

    #[test]
    fn baseline_and_cached_paths_share_the_queue() {
        let server = Server::start(engine(), ServerConfig::default());
        let cached = server
            .submit(r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap()
            .outcome
            .unwrap();
        let baseline = server
            .submit_baseline(r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap()
            .outcome
            .unwrap();
        assert_eq!(cached.tokens, baseline.tokens);
        assert_eq!(baseline.stats.cached_tokens, 0);
        server.shutdown();
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let server = Server::start(engine(), ServerConfig::default());
        let a = server.submit(r#"<prompt schema="s"><ctx/>one</prompt>"#.into(), opts());
        let b = server.submit(r#"<prompt schema="s"><ctx/>two</prompt>"#.into(), opts());
        assert!(b.id() > a.id());
        a.wait().unwrap();
        b.wait().unwrap();
        server.shutdown();
    }

    #[test]
    fn drop_without_shutdown_joins_cleanly() {
        let server = Server::start(engine(), ServerConfig::default());
        let handle = server.submit(r#"<prompt schema="s"><ctx/>one</prompt>"#.into(), opts());
        handle.wait().unwrap();
        drop(server); // Drop impl joins workers without hanging
    }

    #[test]
    fn metrics_text_is_valid_prometheus_with_expected_series() {
        let server = Server::start(engine(), ServerConfig::default());
        server
            .submit(r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap();
        let text = server.metrics_text();
        assert!(text.contains("# TYPE pc_cache_hits_total counter"), "{text}");
        assert!(text.contains("# TYPE pc_ttft_seconds histogram"), "{text}");
        assert!(text.contains("pc_ttft_seconds_bucket{le=\""), "{text}");
        assert!(text.contains("# TYPE pc_queue_depth gauge"), "{text}");
        assert!(text.contains("pc_requests_served_total 1"), "{text}");
        // Every line parses as `# TYPE …` or `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "{line}");
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
        }
        server.shutdown();
    }

    #[test]
    fn metrics_text_merges_enabled_engine_telemetry_without_duplicates() {
        let tokenizer = WordTokenizer::train(&[CORPUS]);
        let vocab = tokenizer.vocab_size().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_tiny(vocab), 5),
            tokenizer,
            EngineConfig {
                telemetry: pc_telemetry::Telemetry::new(),
                ..Default::default()
            },
        );
        engine
            .register_schema(
                r#"<schema name="s">
                     <module name="ctx">alpha beta gamma delta epsilon zeta eta theta</module>
                   </schema>"#,
            )
            .unwrap();
        let server = Server::start(engine, ServerConfig::default());
        server
            .submit(r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts())
            .wait()
            .unwrap();
        let text = server.metrics_text();
        // The engine registry provides the cache counters; the StoreStats
        // fallback must not add a second series with the same name.
        let hits_lines = text
            .lines()
            .filter(|l| l.starts_with("pc_cache_hits_total "))
            .count();
        assert_eq!(hits_lines, 1, "{text}");
        // Engine-side metrics (sampled model timing) show up too.
        assert!(text.contains("pc_model_attention_seconds"), "{text}");
        server.shutdown();
    }

    #[test]
    fn queue_time_is_recorded() {
        let server = Server::start(
            engine(),
            ServerConfig {
                workers: 1,
                queue_capacity: 64,
            },
        );
        // Pile up work on a single worker so later requests queue.
        let handles: Vec<_> = (0..8)
            .map(|_| server.submit(r#"<prompt schema="s"><ctx/>question</prompt>"#.into(), opts()))
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        assert!(server.metrics().queue_mean.unwrap() > Duration::ZERO);
        server.shutdown();
    }
}
