//! Process-mode fleet worker: one engine in its own OS process.
//!
//! Spawned by [`pc_server::Router`] with the router's loopback address as
//! the sole argument. The worker connects back, receives a `Hello` frame
//! carrying an [`pc_server::EngineBlueprint`], deterministically builds
//! its engine, and then serves `Register`/`Serve` frames serially until
//! `Shutdown` (or the connection drops — which is exactly what a
//! router-side `kill_worker` looks like from in here).

use std::net::TcpStream;
use std::process::ExitCode;

use pc_server::wire::{
    read_frame, write_frame, FromWorker, ToWorker, WireError, WireResult,
};
use prompt_cache::{RegisterOptions, ServeOptions, ServeRequest};

fn main() -> ExitCode {
    let Some(addr) = std::env::args().nth(1) else {
        eprintln!("usage: pc_fleet_worker <router-addr>");
        return ExitCode::FAILURE;
    };
    let mut stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pc_fleet_worker: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _ = stream.set_nodelay(true);

    // First frame must be Hello: build the engine from its blueprint.
    let engine = match read_frame(&mut stream).and_then(|f| ToWorker::from_frame(&f)) {
        Ok(ToWorker::Hello { blueprint, .. }) => blueprint.build(),
        Ok(other) => {
            eprintln!("pc_fleet_worker: expected Hello, got {other:?}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("pc_fleet_worker: handshake: {e}");
            return ExitCode::FAILURE;
        }
    };
    if write_frame(&mut stream, &FromWorker::Ready.to_frame()).is_err() {
        return ExitCode::FAILURE;
    }

    loop {
        let msg = match read_frame(&mut stream).and_then(|f| ToWorker::from_frame(&f)) {
            Ok(msg) => msg,
            // Router gone (shutdown or kill): nothing left to serve.
            Err(_) => return ExitCode::SUCCESS,
        };
        let reply = match msg {
            ToWorker::Shutdown => return ExitCode::SUCCESS,
            ToWorker::Hello { .. } => {
                eprintln!("pc_fleet_worker: unexpected second Hello");
                return ExitCode::FAILURE;
            }
            ToWorker::Register { pml, warm } => {
                let error = match engine
                    .register_schema_with(&pml, &RegisterOptions::new().warm(warm))
                {
                    Ok(_) => String::new(),
                    Err(e) => e.to_string(),
                };
                FromWorker::Registered { error }
            }
            ToWorker::Serve {
                id,
                prompt,
                options,
                baseline,
            } => {
                let mut serve_options = ServeOptions::default();
                serve_options.max_new_tokens = options.max_new_tokens;
                serve_options.temperature = options.temperature;
                serve_options.use_scaffolds = options.use_scaffolds;
                serve_options.deadline = options.deadline;
                let request = ServeRequest::new(&prompt)
                    .options(serve_options)
                    .baseline(baseline);
                match engine.serve(&request) {
                    Ok(served) => {
                        let response = served.into_response();
                        let stats = engine.store_stats();
                        FromWorker::Result(WireResult {
                            id,
                            text: response.text,
                            tokens: response.tokens,
                            outcome: response.outcome,
                            cached_tokens: response.stats.cached_tokens as u64,
                            new_tokens: response.stats.new_tokens as u64,
                            degraded_spans: response.stats.degraded_spans as u64,
                            store_hits: stats.hits,
                            store_misses: stats.misses,
                        })
                    }
                    Err(e) => FromWorker::ServeErr {
                        id,
                        error: WireError::from_engine(&e),
                    },
                }
            }
        };
        if write_frame(&mut stream, &reply.to_frame()).is_err() {
            return ExitCode::SUCCESS;
        }
    }
}
