//! Trace-driven load replay: Poisson arrivals over a prompt mix.
//!
//! Serving papers evaluate under open-loop load; this module generates
//! deterministic Poisson arrival traces and replays them against a
//! [`crate::Server`], reporting the latency distribution the offered load
//! produced — the methodology for exercising the §5.4 throughput claims
//! beyond closed-loop bursts.

use crate::metrics::LatencyRecorder;
use crate::{Server, SubmitRequest};
use prompt_cache::ServeOptions;
use std::time::{Duration, Instant};

/// One scheduled arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Offset from replay start.
    pub at: Duration,
    /// Index into the prompt mix.
    pub prompt_index: usize,
}

/// Generates a deterministic Poisson arrival trace: `requests` arrivals
/// at `rate_hz` mean rate, cycling through `num_prompts` prompt-mix
/// entries. Inter-arrival gaps are exponential via inverse-CDF over a
/// seeded xorshift stream.
pub fn poisson_trace(
    requests: usize,
    rate_hz: f64,
    num_prompts: usize,
    seed: u64,
) -> Vec<TraceEvent> {
    assert!(rate_hz > 0.0, "arrival rate must be positive");
    assert!(num_prompts > 0, "need at least one prompt");
    let mut state = seed | 1;
    let mut uniform = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let x = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        // map to (0, 1]
        ((x >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    };
    let mut at = 0.0f64;
    (0..requests)
        .map(|i| {
            at += -uniform().ln() / rate_hz;
            TraceEvent {
                at: Duration::from_secs_f64(at),
                prompt_index: i % num_prompts,
            }
        })
        .collect()
}

/// Replay outcome.
#[derive(Debug)]
pub struct ReplayReport {
    /// Wall-clock duration of the whole replay.
    pub wall: Duration,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that errored (the engine returned an error).
    pub failed: u64,
    /// Requests whose handle yielded no result at all (the server shut
    /// down before serving them) — distinct from `failed`, which saw an
    /// engine error.
    pub dropped: u64,
    /// Requests shed by the server (load-shedding, deadline passed in
    /// queue, cancelled, or shutdown drain) — see
    /// [`crate::RequestOutcome::Shed`].
    pub shed: u64,
    /// Of the completed requests: how many returned a *partial* response
    /// ([`prompt_cache::ServeOutcome`] cancelled/deadline-exceeded).
    pub interrupted: u64,
    /// End-to-end latency (submission → completion) distribution.
    pub e2e: LatencyRecorder,
    /// Queue-wait distribution across all requests that produced a
    /// result (served or shed).
    pub queue: LatencyRecorder,
    /// TTFT distribution across completed requests.
    pub ttft: LatencyRecorder,
    /// Per-phase TTFT breakdown distributions (from each completed
    /// response's [`prompt_cache::TtftBreakdown`]), keyed
    /// tokenize/fetch/prefill/sample.
    pub phases: [(&'static str, LatencyRecorder); 4],
}

impl ReplayReport {
    /// Achieved goodput in requests/second.
    pub fn goodput_rps(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Human-readable multi-line summary: counts, goodput, end-to-end and
    /// TTFT percentiles, and per-phase TTFT percentiles.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "replay: {} completed, {} failed, {} dropped, {} shed, {} interrupted in {:.3}s ({:.1} req/s)",
            self.completed,
            self.failed,
            self.dropped,
            self.shed,
            self.interrupted,
            self.wall.as_secs_f64(),
            self.goodput_rps(),
        );
        let line = |out: &mut String, name: &str, rec: &LatencyRecorder| {
            let p = |q| {
                rec.percentile(q)
                    .map_or_else(|| "-".to_owned(), |d| format!("{:.3}ms", d.as_secs_f64() * 1e3))
            };
            let _ = writeln!(
                out,
                "  {name:<10} p50 {:>10}  p95 {:>10}  p99 {:>10}",
                p(50.0),
                p(95.0),
                p(99.0)
            );
        };
        line(&mut out, "e2e", &self.e2e);
        line(&mut out, "queue", &self.queue);
        line(&mut out, "ttft", &self.ttft);
        for (name, rec) in &self.phases {
            line(&mut out, name, rec);
        }
        out
    }
}

/// Replays `trace` against `server`: each event submits
/// `prompts[event.prompt_index]` at its scheduled offset (sleeping as
/// needed), then all completions are awaited.
pub fn replay(
    server: &Server,
    prompts: &[String],
    trace: &[TraceEvent],
    options: &ServeOptions,
) -> ReplayReport {
    let start = Instant::now();
    let mut pending = Vec::with_capacity(trace.len());
    for event in trace {
        if let Some(wait) = event.at.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let request = SubmitRequest::new(prompts[event.prompt_index].clone())
            .options(options.clone())
            .blocking(true);
        let handle = server
            .submit_request(&request)
            .expect("blocking submit cannot fail");
        pending.push((Instant::now(), handle));
    }
    let e2e = LatencyRecorder::new();
    let queue = LatencyRecorder::new();
    let ttft = LatencyRecorder::new();
    let phases = [
        ("tokenize", LatencyRecorder::new()),
        ("fetch", LatencyRecorder::new()),
        ("prefill", LatencyRecorder::new()),
        ("sample", LatencyRecorder::new()),
    ];
    let mut completed = 0;
    let mut failed = 0;
    let mut dropped = 0;
    let mut shed = 0;
    let mut interrupted = 0;
    for (submitted, handle) in pending {
        match handle.wait() {
            Some(result) => {
                queue.record(result.queue_time);
                match result.outcome {
                    crate::RequestOutcome::Ok(response) => {
                        completed += 1;
                        if response.outcome.is_interrupted() {
                            interrupted += 1;
                        }
                        e2e.record(submitted.elapsed());
                        ttft.record(response.timings.ttft);
                        for ((_, rec), (_, dur)) in
                            phases.iter().zip(response.breakdown.phases())
                        {
                            rec.record(dur);
                        }
                    }
                    crate::RequestOutcome::Err(_) => failed += 1,
                    crate::RequestOutcome::Shed(_) => shed += 1,
                }
            }
            None => dropped += 1,
        }
    }
    ReplayReport {
        wall: start.elapsed(),
        completed,
        failed,
        dropped,
        shed,
        interrupted,
        e2e,
        queue,
        ttft,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerConfig;
    use pc_model::{Model, ModelConfig};
    use pc_tokenizer::{Tokenizer, WordTokenizer};
    use prompt_cache::{EngineConfig, PromptCache};

    #[test]
    fn trace_is_deterministic_and_monotone() {
        let a = poisson_trace(50, 100.0, 3, 7);
        let b = poisson_trace(50, 100.0, 3, 7);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
        assert_ne!(a, poisson_trace(50, 100.0, 3, 8));
    }

    #[test]
    fn mean_interarrival_matches_rate() {
        let trace = poisson_trace(2000, 250.0, 1, 3);
        let total = trace.last().unwrap().at.as_secs_f64();
        let mean_gap = total / trace.len() as f64;
        assert!((mean_gap - 1.0 / 250.0).abs() < 0.0008, "{mean_gap}");
    }

    #[test]
    fn prompt_mix_cycles() {
        let trace = poisson_trace(6, 10.0, 3, 1);
        let idx: Vec<usize> = trace.iter().map(|e| e.prompt_index).collect();
        assert_eq!(idx, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn replay_completes_offered_load() {
        let corpus = "alpha beta gamma delta question one two";
        let tokenizer = WordTokenizer::train(&[corpus]);
        let vocab = tokenizer.vocab_size().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_tiny(vocab), 2),
            tokenizer,
            EngineConfig::default(),
        );
        engine
            .register_schema(
                r#"<schema name="t"><module name="m">alpha beta gamma delta</module></schema>"#,
            )
            .unwrap();
        let server = Server::start(
            engine,
            ServerConfig::default().workers(2).queue_capacity(64),
        );
        let prompts = vec![
            r#"<prompt schema="t"><m/>question one</prompt>"#.to_owned(),
            r#"<prompt schema="t"><m/>question two</prompt>"#.to_owned(),
        ];
        let trace = poisson_trace(20, 500.0, prompts.len(), 11);
        let report = replay(
            &server,
            &prompts,
            &trace,
            &ServeOptions::default().max_new_tokens(1),
        );
        assert_eq!(report.completed, 20);
        assert_eq!(report.failed, 0);
        assert_eq!(report.dropped, 0);
        assert!(report.goodput_rps() > 1.0);
        assert!(report.e2e.percentile(99.0).unwrap() >= report.e2e.percentile(50.0).unwrap());
        // Per-phase breakdown distributions cover every completed request.
        assert_eq!(report.ttft.len(), 20);
        for (name, rec) in &report.phases {
            assert_eq!(rec.len(), 20, "phase {name}");
        }
        let summary = report.summary();
        assert!(summary.contains("20 completed, 0 failed, 0 dropped"), "{summary}");
        for phase in ["tokenize", "fetch", "prefill", "sample"] {
            assert!(summary.contains(phase), "{summary}");
        }
        server.shutdown();
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        poisson_trace(1, 0.0, 1, 1);
    }
}

#[cfg(test)]
mod overload_tests {
    use super::*;
    use crate::ServerConfig;
    use pc_model::{Model, ModelConfig};
    use pc_tokenizer::{Tokenizer, WordTokenizer};
    use prompt_cache::{EngineConfig, PromptCache, ServeOptions};

    #[test]
    fn overload_degrades_gracefully_without_loss() {
        // Offered load far above capacity: everything still completes
        // (closed channel admission blocks, no drops) and tail latency
        // grows beyond the median.
        let doc: String = (0..200).map(|i| format!("w{} ", i % 31)).collect();
        let corpus = format!("{doc} q");
        let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
        let vocab = tokenizer.vocab_size().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_small(vocab), 4),
            tokenizer,
            EngineConfig::default(),
        );
        engine
            .register_schema(&format!(
                r#"<schema name="o"><module name="doc">{doc}</module></schema>"#
            ))
            .unwrap();
        let server = Server::start(
            engine,
            ServerConfig::default().workers(1).queue_capacity(8),
        );
        let prompts = vec![r#"<prompt schema="o"><doc/>q</prompt>"#.to_owned()];
        // 40 arrivals at a nominal 10 kHz — far beyond one worker.
        let trace = poisson_trace(40, 10_000.0, 1, 5);
        let report = replay(
            &server,
            &prompts,
            &trace,
            &ServeOptions::default().max_new_tokens(1),
        );
        assert_eq!(report.completed, 40);
        assert_eq!(report.failed, 0);
        let p50 = report.e2e.percentile(50.0).unwrap();
        let p99 = report.e2e.percentile(99.0).unwrap();
        assert!(p99 > p50, "queueing must show up in the tail");
        server.shutdown();
    }
}
