//! Trace-driven load replay: Poisson arrivals over a prompt mix.
//!
//! Serving papers evaluate under open-loop load; this module generates
//! deterministic Poisson arrival traces and replays them against a
//! [`crate::Server`], reporting the latency distribution the offered load
//! produced — the methodology for exercising the §5.4 throughput claims
//! beyond closed-loop bursts.

use crate::metrics::LatencyRecorder;
use crate::Server;
use prompt_cache::ServeOptions;
use std::time::{Duration, Instant};

/// One scheduled arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Offset from replay start.
    pub at: Duration,
    /// Index into the prompt mix.
    pub prompt_index: usize,
}

/// Generates a deterministic Poisson arrival trace: `requests` arrivals
/// at `rate_hz` mean rate, cycling through `num_prompts` prompt-mix
/// entries. Inter-arrival gaps are exponential via inverse-CDF over a
/// seeded xorshift stream.
pub fn poisson_trace(
    requests: usize,
    rate_hz: f64,
    num_prompts: usize,
    seed: u64,
) -> Vec<TraceEvent> {
    assert!(rate_hz > 0.0, "arrival rate must be positive");
    assert!(num_prompts > 0, "need at least one prompt");
    let mut state = seed | 1;
    let mut uniform = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let x = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        // map to (0, 1]
        ((x >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    };
    let mut at = 0.0f64;
    (0..requests)
        .map(|i| {
            at += -uniform().ln() / rate_hz;
            TraceEvent {
                at: Duration::from_secs_f64(at),
                prompt_index: i % num_prompts,
            }
        })
        .collect()
}

/// Replay outcome.
#[derive(Debug)]
pub struct ReplayReport {
    /// Wall-clock duration of the whole replay.
    pub wall: Duration,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that errored.
    pub failed: u64,
    /// End-to-end latency (submission → completion) distribution.
    pub e2e: LatencyRecorder,
}

impl ReplayReport {
    /// Achieved goodput in requests/second.
    pub fn goodput_rps(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Replays `trace` against `server`: each event submits
/// `prompts[event.prompt_index]` at its scheduled offset (sleeping as
/// needed), then all completions are awaited.
pub fn replay(
    server: &Server,
    prompts: &[String],
    trace: &[TraceEvent],
    options: &ServeOptions,
) -> ReplayReport {
    let start = Instant::now();
    let mut pending = Vec::with_capacity(trace.len());
    for event in trace {
        if let Some(wait) = event.at.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let handle = server.submit(prompts[event.prompt_index].clone(), options.clone());
        pending.push((Instant::now(), handle));
    }
    let e2e = LatencyRecorder::new();
    let mut completed = 0;
    let mut failed = 0;
    for (submitted, handle) in pending {
        match handle.wait() {
            Some(result) if result.outcome.is_ok() => {
                completed += 1;
                e2e.record(submitted.elapsed());
            }
            Some(_) => failed += 1,
            None => failed += 1,
        }
    }
    ReplayReport {
        wall: start.elapsed(),
        completed,
        failed,
        e2e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerConfig;
    use pc_model::{Model, ModelConfig};
    use pc_tokenizer::{Tokenizer, WordTokenizer};
    use prompt_cache::{EngineConfig, PromptCache};

    #[test]
    fn trace_is_deterministic_and_monotone() {
        let a = poisson_trace(50, 100.0, 3, 7);
        let b = poisson_trace(50, 100.0, 3, 7);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
        assert_ne!(a, poisson_trace(50, 100.0, 3, 8));
    }

    #[test]
    fn mean_interarrival_matches_rate() {
        let trace = poisson_trace(2000, 250.0, 1, 3);
        let total = trace.last().unwrap().at.as_secs_f64();
        let mean_gap = total / trace.len() as f64;
        assert!((mean_gap - 1.0 / 250.0).abs() < 0.0008, "{mean_gap}");
    }

    #[test]
    fn prompt_mix_cycles() {
        let trace = poisson_trace(6, 10.0, 3, 1);
        let idx: Vec<usize> = trace.iter().map(|e| e.prompt_index).collect();
        assert_eq!(idx, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn replay_completes_offered_load() {
        let corpus = "alpha beta gamma delta question one two";
        let tokenizer = WordTokenizer::train(&[corpus]);
        let vocab = tokenizer.vocab_size().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_tiny(vocab), 2),
            tokenizer,
            EngineConfig::default(),
        );
        engine
            .register_schema(
                r#"<schema name="t"><module name="m">alpha beta gamma delta</module></schema>"#,
            )
            .unwrap();
        let server = Server::start(
            engine,
            ServerConfig {
                workers: 2,
                queue_capacity: 64,
            },
        );
        let prompts = vec![
            r#"<prompt schema="t"><m/>question one</prompt>"#.to_owned(),
            r#"<prompt schema="t"><m/>question two</prompt>"#.to_owned(),
        ];
        let trace = poisson_trace(20, 500.0, prompts.len(), 11);
        let report = replay(
            &server,
            &prompts,
            &trace,
            &ServeOptions {
                max_new_tokens: 1,
                ..Default::default()
            },
        );
        assert_eq!(report.completed, 20);
        assert_eq!(report.failed, 0);
        assert!(report.goodput_rps() > 1.0);
        assert!(report.e2e.percentile(99.0).unwrap() >= report.e2e.percentile(50.0).unwrap());
        server.shutdown();
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        poisson_trace(1, 0.0, 1, 1);
    }
}

#[cfg(test)]
mod overload_tests {
    use super::*;
    use crate::ServerConfig;
    use pc_model::{Model, ModelConfig};
    use pc_tokenizer::{Tokenizer, WordTokenizer};
    use prompt_cache::{EngineConfig, PromptCache, ServeOptions};

    #[test]
    fn overload_degrades_gracefully_without_loss() {
        // Offered load far above capacity: everything still completes
        // (closed channel admission blocks, no drops) and tail latency
        // grows beyond the median.
        let doc: String = (0..200).map(|i| format!("w{} ", i % 31)).collect();
        let corpus = format!("{doc} q");
        let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
        let vocab = tokenizer.vocab_size().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_small(vocab), 4),
            tokenizer,
            EngineConfig::default(),
        );
        engine
            .register_schema(&format!(
                r#"<schema name="o"><module name="doc">{doc}</module></schema>"#
            ))
            .unwrap();
        let server = Server::start(
            engine,
            ServerConfig {
                workers: 1,
                queue_capacity: 8,
            },
        );
        let prompts = vec![r#"<prompt schema="o"><doc/>q</prompt>"#.to_owned()];
        // 40 arrivals at a nominal 10 kHz — far beyond one worker.
        let trace = poisson_trace(40, 10_000.0, 1, 5);
        let report = replay(
            &server,
            &prompts,
            &trace,
            &ServeOptions {
                max_new_tokens: 1,
                ..Default::default()
            },
        );
        assert_eq!(report.completed, 40);
        assert_eq!(report.failed, 0);
        let p50 = report.e2e.percentile(50.0).unwrap();
        let p99 = report.e2e.percentile(99.0).unwrap();
        assert!(p99 > p50, "queueing must show up in the tail");
        server.shutdown();
    }
}
