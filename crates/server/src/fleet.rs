//! The sharded serving fleet: a [`Router`] over N worker engines.
//!
//! The paper's modular reuse pays at scale only when hot modules stay
//! hot. One in-process scheduler caps both throughput and locality, so
//! the fleet splits the module store across N `EngineWorker`s — each an
//! independent engine built from the same [`EngineBlueprint`] — and
//! routes requests to a worker that already holds their modules:
//!
//! * **Shard ownership.** Schemas are consistent-hashed over workers
//!   ([`pc_cache::ShardMap`], rendezvous hashing) with a configurable
//!   [replication factor](FleetConfig::replication). Owners register a
//!   schema *warm* (modules encoded at registration); every other
//!   worker registers it *cold* (layout only) and can still serve it
//!   byte-identically by re-encoding on demand through the engine's
//!   degrade-on-miss path.
//! * **Schema-affinity routing.** A request routes to the least-loaded
//!   *owner* of its schema (load = queued × EWMA service time, the
//!   PR 4/5 admission estimate, per worker); when
//!   [`FleetConfig::spill_after`] is set and every owner is busier than
//!   that bound, it spills to the globally least-loaded worker instead.
//!   [`FleetConfig::affinity`] turns the owner preference off entirely
//!   (pure least-loaded) — the A/B the sharding experiment measures.
//! * **Worker loss is not a correctness event.** Killing a worker
//!   ([`Router::kill_worker`], or the chaos plan's deterministic
//!   self-kill via [`FleetFaults`]) interrupts its in-flight serve
//!   within one decode step and re-routes the request — and everything
//!   still queued behind it — to surviving workers. Re-serving from
//!   scratch is deterministic, so the caller sees exactly the bytes a
//!   healthy fleet (or a single process) would have produced.
//! * **Threads or processes.** Workers are threads by default.
//!   [`FleetConfig::process_mode`] runs each as an OS process (the
//!   `pc_fleet_worker` binary) speaking the std-only length-prefixed
//!   protocol in [`crate::wire`]; the router-side loop is the same, so
//!   routing, replication, kill, and re-route behave identically.
//!
//! The router submits through the same [`SubmitRequest`] builder and
//! returns the same [`RequestHandle`] / [`RequestResult`] /
//! [`SubmitError`] types as the single-process [`crate::Server`] — no
//! separate error taxonomy.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use pc_cache::ShardMap;
use pc_telemetry::{Counter, Histogram, Telemetry};
use prompt_cache::{
    CancelToken, EngineError, PromptCache, RegisterOptions, Response, ServeOptions, ServeOutcome,
    ServeRequest, ServeStats,
};

use crate::ops::{self, OpsHandle, Routes, JSON, PROM};
use crate::server::{json_escape, RequestHandle, RequestOutcome, RequestResult, ShedReason};
use crate::submit::SubmitRequest;
use crate::wire::{read_frame, write_frame, EngineBlueprint, FromWorker, ToWorker, WireOptions};
use crate::SubmitError;

/// Injected fleet-level faults for chaos testing — the fleet analogue of
/// [`crate::WorkerFaults`], keyed by worker so one seed drives a whole
/// fleet's failure schedule deterministically. `pc-faults` implements
/// this for its seeded plans.
pub trait FleetFaults: Send + Sync + std::fmt::Debug {
    /// Stall applied on `worker` before serving request `id`;
    /// `Duration::ZERO` for a healthy pickup.
    fn pre_serve_delay(&self, worker: usize, id: u64) -> Duration;

    /// If `Some(n)`, `worker` kills itself once it has completed `n`
    /// serves (at the next pickup) — a deterministic mid-run worker
    /// loss. `None` means the worker never self-kills.
    fn kill_after(&self, worker: usize) -> Option<u64> {
        let _ = worker;
        None
    }
}

/// Fleet topology and routing knobs. `#[non_exhaustive]` with chainable
/// setters, like every config in this workspace.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct FleetConfig {
    /// Number of engine workers (shards). Clamped to at least 1.
    pub shards: usize,
    /// Owners per schema (clamped to `1..=shards`). With replication 2,
    /// losing one owner leaves a warm copy — no re-encode needed.
    pub replication: usize,
    /// Prefer a schema's owners when routing (`true`, the default) or
    /// always pick the globally least-loaded worker (`false`).
    pub affinity: bool,
    /// With affinity on: when the best owner's estimated wait exceeds
    /// this bound, spill to the globally least-loaded worker. `None`
    /// (default) never spills — owners absorb their schema's load.
    pub spill_after: Option<Duration>,
    /// Run workers as OS processes over the [`crate::wire`] protocol
    /// instead of threads.
    pub process_mode: bool,
    /// Path to the `pc_fleet_worker` binary for process mode. Falls back
    /// to the `PC_FLEET_WORKER_BIN` environment variable.
    pub worker_bin: Option<PathBuf>,
    /// Per-worker queue capacity.
    pub queue_capacity: usize,
    /// Bind an ops-plane HTTP listener (`/metrics`, `/healthz`,
    /// `/debug/fleet`) on this address.
    pub ops_addr: Option<SocketAddr>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 2,
            replication: 1,
            affinity: true,
            spill_after: None,
            process_mode: false,
            worker_bin: None,
            queue_capacity: 64,
            ops_addr: None,
        }
    }
}

impl FleetConfig {
    /// Sets the worker count.
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Sets the replication factor.
    #[must_use]
    pub fn replication(mut self, n: usize) -> Self {
        self.replication = n;
        self
    }

    /// Toggles schema-affinity routing.
    #[must_use]
    pub fn affinity(mut self, on: bool) -> Self {
        self.affinity = on;
        self
    }

    /// Sets the owner-load bound past which requests spill.
    #[must_use]
    pub fn spill_after(mut self, bound: Duration) -> Self {
        self.spill_after = Some(bound);
        self
    }

    /// Toggles OS-process workers.
    #[must_use]
    pub fn process_mode(mut self, on: bool) -> Self {
        self.process_mode = on;
        self
    }

    /// Sets the worker binary for process mode.
    #[must_use]
    pub fn worker_bin(mut self, path: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(path.into());
        self
    }

    /// Sets the per-worker queue capacity.
    #[must_use]
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Binds the fleet ops endpoint.
    #[must_use]
    pub fn ops_addr(mut self, addr: SocketAddr) -> Self {
        self.ops_addr = Some(addr);
        self
    }
}

/// A point-in-time view of one worker, for `/debug/fleet` and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct WorkerInfo {
    /// Shard index.
    pub id: usize,
    /// Whether the worker is alive (not killed).
    pub alive: bool,
    /// Requests routed to this worker and not yet completed.
    pub queued: u64,
    /// Serves this worker completed (including errors).
    pub served: u64,
    /// Jobs this worker handed off to survivors (kill drain/re-route).
    pub rerouted_from: u64,
    /// Worker-engine store hits (cumulative).
    pub store_hits: u64,
    /// Worker-engine store misses (cumulative).
    pub store_misses: u64,
}

/// One queued unit of fleet work. Boxed in [`WorkerMsg`] so a re-route
/// moves a pointer, not the prompt.
struct FleetJob {
    id: u64,
    /// Schema name parsed from the prompt at submit ("" when the prompt
    /// failed to parse — the engine will report the real error).
    schema: String,
    prompt: String,
    /// Options with `deadline`/`cancel` stripped: the deadline lives in
    /// `cancel`'s absolute deadline, and the serve token is built at
    /// pickup (linked to the serving worker's kill token).
    options: ServeOptions,
    baseline: bool,
    /// Caller token + submission-relative budget. NOT linked to any
    /// worker: re-routes re-link to the new worker's kill token.
    cancel: CancelToken,
    budget: Option<Duration>,
    submitted: Instant,
    reply: Sender<RequestResult>,
    /// Re-route count; bounded so a dying fleet degrades to shed, not to
    /// a routing loop.
    attempts: u32,
}

enum WorkerMsg {
    Job(Box<FleetJob>),
    Register {
        pml: String,
        warm: bool,
        ack: Sender<Result<(), EngineError>>,
    },
}

/// Router-side state for one worker.
struct WorkerState {
    /// Sender for this worker's queue; `None` after shutdown takes it.
    tx: Mutex<Option<Sender<WorkerMsg>>>,
    /// Fired on kill: interrupts the in-flight serve (thread mode) and
    /// marks every pickup on this worker as a re-route.
    kill: CancelToken,
    alive: AtomicBool,
    queued: AtomicU64,
    served: AtomicU64,
    rerouted_from: AtomicU64,
    ewma_ns: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    /// Thread mode: the worker's engine (shared for stats/debug reads).
    engine: Option<Arc<PromptCache>>,
    /// Process mode: the child process (killed on [`Router::kill_worker`],
    /// reaped at shutdown).
    child: Mutex<Option<Child>>,
}

impl WorkerState {
    /// Estimated wait if routed here now: queued × EWMA service time.
    fn est_wait_ns(&self) -> u128 {
        u128::from(self.queued.load(Ordering::Relaxed))
            * u128::from(self.ewma_ns.load(Ordering::Relaxed))
    }

    fn record_service(&self, service: Duration) {
        let sample = u64::try_from(service.as_nanos()).unwrap_or(u64::MAX);
        let old = self.ewma_ns.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            ((u128::from(old) * 7 + u128::from(sample)) / 8) as u64
        };
        self.ewma_ns.store(new, Ordering::Relaxed);
    }

    /// Sends to this worker's queue. Non-blocking unless `blocking`.
    /// Returns the message back on failure (queue full, shut down).
    fn send(&self, msg: WorkerMsg, blocking: bool) -> Result<(), WorkerMsg> {
        let guard = self.tx.lock().unwrap();
        let Some(tx) = guard.as_ref() else {
            return Err(msg);
        };
        if blocking {
            // Holding the lock across a blocking send is fine: only
            // shutdown takes this mutex for anything slow, and shutdown
            // waits for submitters anyway.
            tx.send(msg).map_err(|e| e.0)
        } else {
            tx.try_send(msg).map_err(|e| match e {
                TrySendError::Full(m) | TrySendError::Disconnected(m) => m,
            })
        }
    }
}

/// State shared by the router handle and every worker loop.
struct FleetShared {
    map: ShardMap,
    affinity: bool,
    spill_after: Option<Duration>,
    process_mode: bool,
    workers: Vec<WorkerState>,
    telemetry: Telemetry,
    served: Counter,
    failed: Counter,
    shed: Counter,
    cancelled: Counter,
    deadline_exceeded: Counter,
    rerouted: Counter,
    routed_affinity: Counter,
    routed_spilled: Counter,
    queue: Histogram,
    service: Histogram,
    faults: Mutex<Option<Arc<dyn FleetFaults>>>,
    schemas: Mutex<Vec<String>>,
    started: Instant,
}

impl FleetShared {
    fn alive_vec(&self) -> Vec<bool> {
        self.workers
            .iter()
            .map(|w| w.alive.load(Ordering::Acquire))
            .collect()
    }

    /// Least-loaded worker among `candidates` (est wait, then queue
    /// depth, then index — a total order, so routing is deterministic
    /// given the load observations).
    fn least_loaded(&self, candidates: impl Iterator<Item = usize>) -> Option<usize> {
        candidates.min_by_key(|&w| {
            let s = &self.workers[w];
            (s.est_wait_ns(), s.queued.load(Ordering::Relaxed), w)
        })
    }

    /// Picks the worker for a fresh submission, counting the routing
    /// decision. `None` when no worker is alive.
    fn pick_worker(&self, schema: &str) -> Option<usize> {
        let alive = self.alive_vec();
        let global = self.least_loaded((0..self.workers.len()).filter(|&w| alive[w]));
        if self.affinity && !schema.is_empty() {
            let owners = self.map.owners_alive(schema, &alive);
            if let Some(best) = self.least_loaded(owners.into_iter()) {
                let over_bound = self.spill_after.is_some_and(|bound| {
                    self.workers[best].est_wait_ns() > bound.as_nanos()
                });
                if over_bound {
                    self.routed_spilled.inc();
                    return global;
                }
                self.routed_affinity.inc();
                return Some(best);
            }
            // No owner survives: anything alive re-encodes on demand.
            if global.is_some() {
                self.routed_spilled.inc();
            }
        }
        global
    }

    fn fault_delay(&self, worker: usize, id: u64) -> Duration {
        self.faults
            .lock()
            .unwrap()
            .as_ref()
            .map_or(Duration::ZERO, |f| f.pre_serve_delay(worker, id))
    }

    fn fault_kill_after(&self, worker: usize) -> Option<u64> {
        self.faults
            .lock()
            .unwrap()
            .as_ref()
            .and_then(|f| f.kill_after(worker))
    }

    /// Marks `worker` dead: alive flag down, kill token fired (aborts an
    /// in-flight thread serve within one decode step), child process
    /// killed in process mode. Idempotent.
    fn kill_state(&self, worker: usize) {
        let state = &self.workers[worker];
        if !state.alive.swap(false, Ordering::AcqRel) {
            return;
        }
        state.kill.cancel();
        if let Some(child) = state.child.lock().unwrap().as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Queue-level shed checks at pickup, mirroring the single-process
    /// server: caller cancellation and already-passed deadlines never
    /// reach the engine.
    fn pickup_shed_reason(&self, job: &FleetJob) -> Option<ShedReason> {
        if job.cancel.is_cancelled() {
            Some(ShedReason::CancelledInQueue)
        } else if job.cancel.interruption() == Some(ServeOutcome::DeadlineExceeded) {
            Some(ShedReason::DeadlineBeforeStart)
        } else {
            None
        }
    }

    /// Sheds a job that was already routed to `worker`.
    fn shed_routed(&self, worker: usize, job: Box<FleetJob>, reason: ShedReason) {
        self.workers[worker].queued.fetch_sub(1, Ordering::AcqRel);
        self.deliver_shed(job, reason);
    }

    fn deliver_shed(&self, job: Box<FleetJob>, reason: ShedReason) {
        self.shed.inc();
        let _ = job.reply.send(RequestResult {
            id: job.id,
            outcome: RequestOutcome::Shed(reason),
            queue_time: job.submitted.elapsed(),
            service_time: Duration::ZERO,
        });
    }

    /// Moves a job off a dead (or dying) worker onto the best survivor.
    /// Survivor preference follows the schema's rendezvous ranking, so a
    /// re-routed request still lands on the next-best owner when one
    /// exists. Bounded by `attempts`; a fleet with no capacity left
    /// sheds with [`ShedReason::ShuttingDown`].
    fn reroute(&self, mut job: Box<FleetJob>, from: usize) {
        let state = &self.workers[from];
        state.queued.fetch_sub(1, Ordering::AcqRel);
        state.rerouted_from.fetch_add(1, Ordering::Relaxed);
        self.rerouted.inc();
        job.attempts += 1;
        if job.attempts as usize > self.workers.len() + 2 {
            self.deliver_shed(job, ShedReason::ShuttingDown);
            return;
        }
        let alive = self.alive_vec();
        for target in self
            .map
            .ranked(&job.schema)
            .into_iter()
            .filter(|&w| w != from && alive[w])
        {
            self.workers[target].queued.fetch_add(1, Ordering::AcqRel);
            match self.workers[target].send(WorkerMsg::Job(job), false) {
                Ok(()) => return,
                Err(WorkerMsg::Job(j)) => {
                    self.workers[target].queued.fetch_sub(1, Ordering::AcqRel);
                    job = j;
                }
                Err(_) => unreachable!("job sends return jobs"),
            }
        }
        self.deliver_shed(job, ShedReason::ShuttingDown);
    }

    /// Records a completed pickup (served, failed, cancelled, or
    /// deadline-exceeded) and replies to the caller.
    fn complete(
        &self,
        worker: usize,
        job: Box<FleetJob>,
        outcome: RequestOutcome,
        queue_time: Duration,
        service_time: Duration,
    ) {
        let state = &self.workers[worker];
        state.queued.fetch_sub(1, Ordering::AcqRel);
        state.served.fetch_add(1, Ordering::Relaxed);
        state.record_service(service_time);
        match &outcome {
            RequestOutcome::Ok(response) => match response.outcome {
                ServeOutcome::Complete => self.served.inc(),
                ServeOutcome::Cancelled => self.cancelled.inc(),
                ServeOutcome::DeadlineExceeded => self.deadline_exceeded.inc(),
            },
            RequestOutcome::Err(_) => self.failed.inc(),
            RequestOutcome::Shed(_) => self.shed.inc(),
        }
        self.queue.observe(queue_time.as_secs_f64());
        self.service.observe(service_time.as_secs_f64());
        let _ = job.reply.send(RequestResult {
            id: job.id,
            outcome,
            queue_time,
            service_time,
        });
    }
}

/// Sleeps `stall`, waking early if the worker is killed or the request
/// cancelled — a chaos stall must not outlive the events that make it
/// moot.
fn stall_with_checks(stall: Duration, kill: &CancelToken, cancel: &CancelToken) {
    let end = Instant::now() + stall;
    loop {
        if kill.is_cancelled() || cancel.is_cancelled() {
            return;
        }
        let now = Instant::now();
        if now >= end {
            return;
        }
        std::thread::sleep((end - now).min(Duration::from_millis(2)));
    }
}

/// Common pre-serve gauntlet for both worker modes. Returns the job if
/// it should actually be served, handling kills/sheds/re-routes.
fn admit_at_pickup(
    shared: &FleetShared,
    worker: usize,
    completed: u64,
    job: Box<FleetJob>,
) -> Option<Box<FleetJob>> {
    let state = &shared.workers[worker];
    // Deterministic chaos self-kill: scheduled by completed-serve count,
    // applied at the next pickup.
    if state.alive.load(Ordering::Acquire) {
        if let Some(kill_at) = shared.fault_kill_after(worker) {
            if completed >= kill_at {
                shared.kill_state(worker);
            }
        }
    }
    if !state.alive.load(Ordering::Acquire) {
        shared.reroute(job, worker);
        return None;
    }
    if let Some(reason) = shared.pickup_shed_reason(&job) {
        shared.shed_routed(worker, job, reason);
        return None;
    }
    let stall = shared.fault_delay(worker, job.id);
    if !stall.is_zero() {
        stall_with_checks(stall, &state.kill, &job.cancel);
        if !state.alive.load(Ordering::Acquire) {
            shared.reroute(job, worker);
            return None;
        }
        if let Some(reason) = shared.pickup_shed_reason(&job) {
            shared.shed_routed(worker, job, reason);
            return None;
        }
    }
    Some(job)
}

/// Thread-mode worker loop: serve serially from the queue on a local
/// engine. Ends when the router drops the queue sender.
fn thread_worker_loop(
    shared: &FleetShared,
    worker: usize,
    engine: &PromptCache,
    rx: &Receiver<WorkerMsg>,
) {
    let mut completed: u64 = 0;
    for msg in rx.iter() {
        match msg {
            WorkerMsg::Register { pml, warm, ack } => {
                let result = engine
                    .register_schema_with(&pml, &RegisterOptions::new().warm(warm))
                    .map(|_| ());
                let _ = ack.send(result);
            }
            WorkerMsg::Job(job) => {
                let Some(job) = admit_at_pickup(shared, worker, completed, job) else {
                    continue;
                };
                let state = &shared.workers[worker];
                let queue_time = job.submitted.elapsed();
                // The serve token: caller cancel + deadline, linked to
                // THIS worker's kill token — a kill interrupts within
                // one decode step and the job re-routes below.
                let serve_token = job.cancel.clone().linked_to(&state.kill);
                let mut options = job.options.clone();
                options.cancel = Some(serve_token);
                let request = ServeRequest::new(&job.prompt)
                    .options(options)
                    .baseline(job.baseline);
                let start = Instant::now();
                match engine.serve(&request) {
                    Ok(served) => {
                        let response = served.into_response();
                        if response.outcome == ServeOutcome::Cancelled
                            && state.kill.is_cancelled()
                            && !job.cancel.is_cancelled()
                        {
                            // The kill, not the caller, interrupted this
                            // serve: discard the partial and re-serve on
                            // a survivor — deterministic, so the caller
                            // sees exactly the healthy-fleet bytes.
                            shared.reroute(job, worker);
                            continue;
                        }
                        completed += 1;
                        let stats = engine.store_stats();
                        state.store_hits.store(stats.hits, Ordering::Relaxed);
                        state.store_misses.store(stats.misses, Ordering::Relaxed);
                        shared.complete(
                            worker,
                            job,
                            RequestOutcome::Ok(response),
                            queue_time,
                            start.elapsed(),
                        );
                    }
                    Err(e) => {
                        completed += 1;
                        shared.complete(
                            worker,
                            job,
                            RequestOutcome::Err(e),
                            queue_time,
                            start.elapsed(),
                        );
                    }
                }
            }
        }
    }
}

/// Builds the router-side [`Response`] for a process-mode serve result.
/// Wire results carry outcome and accounting, not timings — the fleet
/// histograms measure wall-clock around the RPC instead.
fn response_from_wire(r: crate::wire::WireResult) -> Response {
    Response {
        text: r.text,
        tokens: r.tokens,
        timings: Default::default(),
        breakdown: Default::default(),
        stats: ServeStats {
            cached_tokens: r.cached_tokens as usize,
            new_tokens: r.new_tokens as usize,
            degraded_spans: r.degraded_spans as usize,
            ..Default::default()
        },
        outcome: r.outcome,
        warnings: Vec::new(),
    }
}

/// Process-mode worker loop: forward queue items over the wire, translate
/// replies. A broken stream means the worker died — re-route.
fn process_worker_loop(
    shared: &FleetShared,
    worker: usize,
    mut stream: TcpStream,
    rx: &Receiver<WorkerMsg>,
) {
    let mut completed: u64 = 0;
    for msg in rx.iter() {
        let state = &shared.workers[worker];
        match msg {
            WorkerMsg::Register { pml, warm, ack } => {
                if !state.alive.load(Ordering::Acquire) {
                    let _ = ack.send(Err(EngineError::Remote {
                        detail: "worker is dead".into(),
                    }));
                    continue;
                }
                let reply = write_frame(&mut stream, &ToWorker::Register { pml, warm }.to_frame())
                    .and_then(|()| read_frame(&mut stream))
                    .and_then(|f| FromWorker::from_frame(&f));
                match reply {
                    Ok(FromWorker::Registered { error }) if error.is_empty() => {
                        let _ = ack.send(Ok(()));
                    }
                    Ok(FromWorker::Registered { error }) => {
                        let _ = ack.send(Err(EngineError::Remote { detail: error }));
                    }
                    _ => {
                        shared.kill_state(worker);
                        let _ = ack.send(Err(EngineError::Remote {
                            detail: "worker connection lost".into(),
                        }));
                    }
                }
            }
            WorkerMsg::Job(job) => {
                let Some(job) = admit_at_pickup(shared, worker, completed, job) else {
                    continue;
                };
                let queue_time = job.submitted.elapsed();
                // Deadline crosses the wire as the remaining budget; a
                // cooperative cancel token cannot, so an in-flight
                // remote serve is interrupted only by killing the
                // worker (see crate::wire docs).
                let options = WireOptions {
                    max_new_tokens: job.options.max_new_tokens,
                    temperature: job.options.temperature,
                    use_scaffolds: job.options.use_scaffolds,
                    deadline: job
                        .cancel
                        .deadline()
                        .map(|d| d.saturating_duration_since(Instant::now())),
                };
                let serve = ToWorker::Serve {
                    id: job.id,
                    prompt: job.prompt.clone(),
                    options,
                    baseline: job.baseline,
                };
                let start = Instant::now();
                let reply = write_frame(&mut stream, &serve.to_frame())
                    .and_then(|()| read_frame(&mut stream))
                    .and_then(|f| FromWorker::from_frame(&f));
                match reply {
                    Ok(FromWorker::Result(r)) => {
                        state.store_hits.store(r.store_hits, Ordering::Relaxed);
                        state.store_misses.store(r.store_misses, Ordering::Relaxed);
                        completed += 1;
                        shared.complete(
                            worker,
                            job,
                            RequestOutcome::Ok(response_from_wire(r)),
                            queue_time,
                            start.elapsed(),
                        );
                    }
                    Ok(FromWorker::ServeErr { error, .. }) => {
                        completed += 1;
                        shared.complete(
                            worker,
                            job,
                            RequestOutcome::Err(error.into_engine()),
                            queue_time,
                            start.elapsed(),
                        );
                    }
                    Ok(_) | Err(_) => {
                        // Stream broken or protocol violated: the worker
                        // is gone. Its queue drains through the
                        // `admit_at_pickup` dead-worker branch.
                        shared.kill_state(worker);
                        if job.cancel.is_cancelled() {
                            // The caller aborted anyway: report the
                            // cancellation rather than re-serving work
                            // nobody wants.
                            completed += 1;
                            let response = Response {
                                text: String::new(),
                                tokens: Vec::new(),
                                timings: Default::default(),
                                breakdown: Default::default(),
                                stats: ServeStats::default(),
                                outcome: ServeOutcome::Cancelled,
                                warnings: Vec::new(),
                            };
                            shared.complete(
                                worker,
                                job,
                                RequestOutcome::Ok(response),
                                queue_time,
                                start.elapsed(),
                            );
                        } else {
                            shared.reroute(job, worker);
                        }
                    }
                }
            }
        }
    }
    // Queue closed (shutdown): ask a still-healthy worker to exit, then
    // reap the child either way.
    if shared.workers[worker].alive.load(Ordering::Acquire) {
        let _ = write_frame(&mut stream, &ToWorker::Shutdown.to_frame());
    }
    if let Some(mut child) = shared.workers[worker].child.lock().unwrap().take() {
        let _ = child.wait();
    }
}

/// Spawns one process-mode worker: bind an ephemeral loopback port, hand
/// it to the child, accept the connection back, and complete the
/// `Hello → Ready` handshake (building the engine in the child).
fn spawn_process_worker(
    blueprint: &EngineBlueprint,
    worker: usize,
    bin: Option<&PathBuf>,
) -> io::Result<(TcpStream, Child)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let bin = bin
        .cloned()
        .or_else(|| std::env::var_os("PC_FLEET_WORKER_BIN").map(PathBuf::from))
        .ok_or_else(|| {
            io::Error::other(
                "process mode needs FleetConfig::worker_bin or PC_FLEET_WORKER_BIN \
                 (the pc_fleet_worker binary)",
            )
        })?;
    let mut child = Command::new(&bin)
        .arg(addr.to_string())
        .stdin(Stdio::null())
        .spawn()?;
    // Bounded accept: poll so a child that died on startup surfaces as
    // an error instead of a hang.
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut stream = loop {
        match listener.accept() {
            Ok((stream, _)) => break stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Some(status) = child.try_wait()? {
                    return Err(io::Error::other(format!(
                        "fleet worker {worker} exited before connecting: {status}"
                    )));
                }
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    return Err(io::Error::other(format!(
                        "fleet worker {worker} did not connect within 30s"
                    )));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                let _ = child.kill();
                return Err(e);
            }
        }
    };
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    let hello = ToWorker::Hello {
        worker_id: worker as u32,
        blueprint: blueprint.clone(),
    };
    write_frame(&mut stream, &hello.to_frame())?;
    match FromWorker::from_frame(&read_frame(&mut stream)?)? {
        FromWorker::Ready => Ok((stream, child)),
        other => {
            let _ = child.kill();
            Err(io::Error::other(format!(
                "fleet worker {worker} sent {other:?} instead of Ready"
            )))
        }
    }
}

/// The fleet front-end: owns the workers, routes submissions, and hosts
/// the fleet ops plane. See the [module docs](self).
pub struct Router {
    shared: Arc<FleetShared>,
    next_id: AtomicU64,
    threads: Vec<JoinHandle<()>>,
    ops: Option<OpsHandle>,
}

impl Router {
    /// Starts the fleet: builds (thread mode) or spawns and handshakes
    /// (process mode) every worker, then binds the ops endpoint if
    /// configured.
    ///
    /// # Panics
    ///
    /// On process-mode spawn/handshake failures and ops bind failures —
    /// construction-time misconfiguration, like `Server::start`.
    #[must_use]
    pub fn start(blueprint: EngineBlueprint, config: FleetConfig) -> Router {
        let shards = config.shards.max(1);
        let map = ShardMap::new(shards, config.replication);
        let mut rxs = Vec::with_capacity(shards);
        let mut states = Vec::with_capacity(shards);
        let mut backends: Vec<Option<TcpStream>> = Vec::with_capacity(shards);
        for worker in 0..shards {
            let (tx, rx) = bounded(config.queue_capacity.max(1));
            rxs.push(rx);
            let (engine, child, stream) = if config.process_mode {
                let (stream, child) =
                    spawn_process_worker(&blueprint, worker, config.worker_bin.as_ref())
                        .unwrap_or_else(|e| panic!("fleet worker {worker} failed to start: {e}"));
                (None, Some(child), Some(stream))
            } else {
                (Some(Arc::new(blueprint.build())), None, None)
            };
            backends.push(stream);
            states.push(WorkerState {
                tx: Mutex::new(Some(tx)),
                kill: CancelToken::new(),
                alive: AtomicBool::new(true),
                queued: AtomicU64::new(0),
                served: AtomicU64::new(0),
                rerouted_from: AtomicU64::new(0),
                ewma_ns: AtomicU64::new(0),
                store_hits: AtomicU64::new(0),
                store_misses: AtomicU64::new(0),
                engine,
                child: Mutex::new(child),
            });
        }
        let telemetry = Telemetry::new();
        let shared = Arc::new(FleetShared {
            map,
            affinity: config.affinity,
            spill_after: config.spill_after,
            process_mode: config.process_mode,
            workers: states,
            served: telemetry.counter("pc_fleet_requests_served_total"),
            failed: telemetry.counter("pc_fleet_requests_failed_total"),
            shed: telemetry.counter("pc_fleet_requests_shed_total"),
            cancelled: telemetry.counter("pc_fleet_requests_cancelled_total"),
            deadline_exceeded: telemetry.counter("pc_fleet_deadline_exceeded_total"),
            rerouted: telemetry.counter("pc_fleet_rerouted_total"),
            routed_affinity: telemetry.counter("pc_fleet_routed_affinity_total"),
            routed_spilled: telemetry.counter("pc_fleet_routed_spilled_total"),
            queue: telemetry.latency_histogram("pc_fleet_queue_wait_seconds"),
            service: telemetry.latency_histogram("pc_fleet_service_seconds"),
            telemetry,
            faults: Mutex::new(None),
            schemas: Mutex::new(Vec::new()),
            started: Instant::now(),
        });
        let mut threads = Vec::with_capacity(shards);
        for (worker, (rx, stream)) in rxs.into_iter().zip(backends).enumerate() {
            let shared_ref = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || match stream {
                Some(stream) => process_worker_loop(&shared_ref, worker, stream, &rx),
                None => {
                    let engine = shared_ref.workers[worker]
                        .engine
                        .as_ref()
                        .expect("thread worker has an engine")
                        .clone();
                    thread_worker_loop(&shared_ref, worker, &engine, &rx);
                }
            }));
        }
        let ops = config.ops_addr.map(|addr| {
            let routes = fleet_routes(Arc::clone(&shared));
            ops::spawn_routes(addr, routes)
                .unwrap_or_else(|e| panic!("fleet ops bind failed on {addr}: {e}"))
        });
        Router {
            shared,
            next_id: AtomicU64::new(0),
            threads,
            ops,
        }
    }

    /// The fleet's shard map.
    #[must_use]
    pub fn shard_map(&self) -> ShardMap {
        self.shared.map
    }

    /// The owner workers of `schema` (ignoring liveness).
    #[must_use]
    pub fn owners_of(&self, schema: &str) -> Vec<usize> {
        self.shared.map.owners(schema)
    }

    /// Registers a schema fleet-wide: warm (modules encoded) on its
    /// owners, cold (layout only) everywhere else. Blocks until every
    /// worker acknowledges.
    ///
    /// # Errors
    ///
    /// Parse errors, and the first per-worker registration error (a
    /// process worker's error arrives as [`EngineError::Remote`] unless
    /// it has a structured wire form).
    pub fn register_schema(&self, pml: &str) -> prompt_cache::Result<()> {
        let schema = pc_pml::parse_schema(pml).map_err(EngineError::from)?;
        let name = schema.name;
        let mut acks = Vec::with_capacity(self.shared.workers.len());
        for worker in 0..self.shared.workers.len() {
            let warm = self.shared.map.is_owner(&name, worker);
            let (ack, ack_rx) = bounded(1);
            let msg = WorkerMsg::Register {
                pml: pml.to_owned(),
                warm,
                ack,
            };
            self.shared.workers[worker]
                .send(msg, true)
                .map_err(|_| EngineError::Remote {
                    detail: format!("worker {worker} unavailable for registration"),
                })?;
            acks.push(ack_rx);
        }
        for ack_rx in acks {
            ack_rx.recv().map_err(|_| EngineError::Remote {
                detail: "worker exited during registration".into(),
            })??;
        }
        self.shared.schemas.lock().unwrap().push(name);
        Ok(())
    }

    /// Submits a request to the fleet — same [`SubmitRequest`] builder,
    /// same [`RequestHandle`], same [`SubmitError`] taxonomy as
    /// [`crate::Server::submit_request`].
    ///
    /// Routing: schema-affinity first (least-loaded alive owner), spill
    /// or global least-loaded per [`FleetConfig`]. When no worker is
    /// alive the request is accepted and immediately shed with
    /// [`ShedReason::ShuttingDown`] (observable on the handle).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] or
    /// [`SubmitError::PredictedDeadlineExceeded`] (never with
    /// `.blocking(true)`).
    pub fn submit(&self, request: &SubmitRequest) -> Result<RequestHandle, SubmitError> {
        let schema = pc_pml::parse_prompt(request.prompt())
            .map(|p| p.schema)
            .unwrap_or_default();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = bounded(1);
        let mut options = request.options_ref().clone();
        let base = options.cancel.take().unwrap_or_default();
        let budget = options.deadline.take();
        let token = match budget {
            Some(budget) => base.with_budget(budget),
            None => base,
        };
        let job = Box::new(FleetJob {
            id,
            schema: schema.clone(),
            prompt: request.prompt().to_owned(),
            options,
            baseline: request.is_baseline(),
            cancel: token.clone(),
            budget,
            submitted: Instant::now(),
            reply,
            attempts: 0,
        });
        let handle = RequestHandle::assemble(id, token, rx);
        let Some(worker) = self.shared.pick_worker(&schema) else {
            self.shared.deliver_shed(job, ShedReason::ShuttingDown);
            return Ok(handle);
        };
        if !request.is_blocking() {
            if let Some(budget) = job.budget {
                let estimated_wait =
                    Duration::from_nanos(self.shared.workers[worker].est_wait_ns() as u64);
                if estimated_wait > budget {
                    self.shared.shed.inc();
                    return Err(SubmitError::PredictedDeadlineExceeded { estimated_wait });
                }
            }
        }
        self.shared.workers[worker]
            .queued
            .fetch_add(1, Ordering::AcqRel);
        match self.shared.workers[worker].send(WorkerMsg::Job(job), request.is_blocking()) {
            Ok(()) => Ok(handle),
            Err(_) => {
                self.shared.workers[worker]
                    .queued
                    .fetch_sub(1, Ordering::AcqRel);
                self.shared.shed.inc();
                Err(SubmitError::QueueFull)
            }
        }
    }

    /// Kills a worker: its in-flight serve is interrupted (thread mode)
    /// or its process killed, and every request on it — in flight and
    /// queued — re-routes to survivors. Idempotent. The fleet keeps
    /// serving as long as one worker survives.
    pub fn kill_worker(&self, worker: usize) {
        if worker < self.shared.workers.len() {
            self.shared.kill_state(worker);
        }
    }

    /// Installs (or clears) the fleet fault injector — see
    /// [`FleetFaults`]. Takes effect from the next pickup.
    pub fn set_fleet_faults(&self, faults: Option<Arc<dyn FleetFaults>>) {
        *self.shared.faults.lock().unwrap() = faults;
    }

    /// Point-in-time per-worker views.
    #[must_use]
    pub fn workers(&self) -> Vec<WorkerInfo> {
        self.shared
            .workers
            .iter()
            .enumerate()
            .map(|(id, w)| WorkerInfo {
                id,
                alive: w.alive.load(Ordering::Acquire),
                queued: w.queued.load(Ordering::Relaxed),
                served: w.served.load(Ordering::Relaxed),
                rerouted_from: w.rerouted_from.load(Ordering::Relaxed),
                store_hits: w.store_hits.load(Ordering::Relaxed),
                store_misses: w.store_misses.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Total requests re-routed across the fleet's lifetime.
    #[must_use]
    pub fn rerouted_total(&self) -> u64 {
        self.shared.rerouted.get()
    }

    /// Requests routed by schema affinity vs spilled/least-loaded.
    #[must_use]
    pub fn routing_split(&self) -> (u64, u64) {
        (
            self.shared.routed_affinity.get(),
            self.shared.routed_spilled.get(),
        )
    }

    /// The fleet `/metrics` payload (Prometheus text): fleet counters
    /// and histograms plus hand-rendered per-worker series.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        render_fleet_metrics(&self.shared)
    }

    /// The `/debug/fleet` JSON payload.
    #[must_use]
    pub fn fleet_json(&self) -> String {
        render_fleet_debug(&self.shared)
    }

    /// The bound ops address, when [`FleetConfig::ops_addr`] was set
    /// (resolves an ephemeral port 0).
    #[must_use]
    pub fn ops_local_addr(&self) -> Option<SocketAddr> {
        self.ops.as_ref().map(OpsHandle::local_addr)
    }

    /// Graceful shutdown: stop accepting, drain every queue (queued
    /// requests still serve), join workers, reap processes, stop the
    /// ops listener.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for worker in &self.shared.workers {
            worker.tx.lock().unwrap().take();
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        if let Some(ops) = self.ops.take() {
            ops.stop();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Renders per-worker gauge/counter families with `worker="N"` labels.
fn render_fleet_metrics(shared: &FleetShared) -> String {
    let mut snap = shared.telemetry.snapshot();
    snap.counters.sort();
    snap.gauges.sort();
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    let mut text = pc_telemetry::export::prometheus_text(&snap);
    use std::fmt::Write as _;
    let help = pc_telemetry::export::help_for;
    type WorkerRead = fn(&WorkerState) -> u64;
    let families: [(&str, &str, WorkerRead); 6] = [
        ("pc_worker_alive", "gauge", |w| {
            u64::from(w.alive.load(Ordering::Acquire))
        }),
        ("pc_worker_queue_depth", "gauge", |w| {
            w.queued.load(Ordering::Relaxed)
        }),
        ("pc_worker_served_total", "counter", |w| {
            w.served.load(Ordering::Relaxed)
        }),
        ("pc_worker_rerouted_total", "counter", |w| {
            w.rerouted_from.load(Ordering::Relaxed)
        }),
        ("pc_worker_store_hits_total", "counter", |w| {
            w.store_hits.load(Ordering::Relaxed)
        }),
        ("pc_worker_store_misses_total", "counter", |w| {
            w.store_misses.load(Ordering::Relaxed)
        }),
    ];
    for (name, kind, read) in families {
        let _ = writeln!(text, "# HELP {name} {}\n# TYPE {name} {kind}", help(name));
        for (id, worker) in shared.workers.iter().enumerate() {
            let _ = writeln!(text, "{name}{{worker=\"{id}\"}} {}", read(worker));
        }
    }
    let _ = writeln!(
        text,
        "# HELP pc_fleet_uptime_seconds {}\n# TYPE pc_fleet_uptime_seconds gauge\n\
         pc_fleet_uptime_seconds {:.3}",
        help("pc_fleet_uptime_seconds"),
        shared.started.elapsed().as_secs_f64(),
    );
    text
}

/// `/debug/fleet`: topology, per-worker state, schema placement.
fn render_fleet_debug(shared: &FleetShared) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"shards\":{},\"replication\":{},\"affinity\":{},\"process_mode\":{}",
        shared.map.workers(),
        shared.map.replication(),
        shared.affinity,
        shared.process_mode,
    );
    let _ = write!(out, ",\"workers\":[");
    for (id, worker) in shared.workers.iter().enumerate() {
        if id > 0 {
            out.push(',');
        }
        let cached_bytes = worker
            .engine
            .as_ref()
            .map_or(0, |engine| engine.cached_bytes());
        let _ = write!(
            out,
            "{{\"id\":{id},\"alive\":{},\"queued\":{},\"served\":{},\
             \"rerouted_from\":{},\"store_hits\":{},\"store_misses\":{},\
             \"ewma_service_us\":{},\"cached_bytes\":{cached_bytes}}}",
            worker.alive.load(Ordering::Acquire),
            worker.queued.load(Ordering::Relaxed),
            worker.served.load(Ordering::Relaxed),
            worker.rerouted_from.load(Ordering::Relaxed),
            worker.store_hits.load(Ordering::Relaxed),
            worker.store_misses.load(Ordering::Relaxed),
            worker.ewma_ns.load(Ordering::Relaxed) / 1_000,
        );
    }
    let _ = write!(out, "],\"schemas\":{{");
    let schemas = shared.schemas.lock().unwrap().clone();
    for (i, name) in schemas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let owners = shared.map.owners(name);
        let owners: Vec<String> = owners.iter().map(ToString::to_string).collect();
        let _ = write!(out, "\"{}\":[{}]", json_escape(name), owners.join(","));
    }
    let _ = write!(
        out,
        "}},\"counters\":{{\"served\":{},\"failed\":{},\"shed\":{},\"cancelled\":{},\
         \"deadline_exceeded\":{},\"rerouted\":{},\"routed_affinity\":{},\
         \"routed_spilled\":{}}}}}",
        shared.served.get(),
        shared.failed.get(),
        shared.shed.get(),
        shared.cancelled.get(),
        shared.deadline_exceeded.get(),
        shared.rerouted.get(),
        shared.routed_affinity.get(),
        shared.routed_spilled.get(),
    );
    out
}

/// `/healthz` for the fleet: alive counts and queue totals.
fn render_fleet_health(shared: &FleetShared) -> String {
    let alive = shared
        .workers
        .iter()
        .filter(|w| w.alive.load(Ordering::Acquire))
        .count();
    let queued: u64 = shared
        .workers
        .iter()
        .map(|w| w.queued.load(Ordering::Relaxed))
        .sum();
    format!(
        "{{\"status\":\"{}\",\"workers_alive\":{alive},\"workers\":{},\"queued\":{queued}}}",
        if alive > 0 { "ok" } else { "dead" },
        shared.workers.len(),
    )
}

fn fleet_routes(shared: Arc<FleetShared>) -> Routes {
    Arc::new(move |path| match path {
        "/metrics" => Some(("200 OK", PROM, render_fleet_metrics(&shared))),
        "/healthz" => Some(("200 OK", JSON, render_fleet_health(&shared))),
        "/debug/fleet" => Some(("200 OK", JSON, render_fleet_debug(&shared))),
        _ => None,
    })
}
