//! Memory-budgeted batch capacity with and without module sharing.
//!
//! §5.4's throughput argument, made computable: "suppose there are 100
//! requests, each with a 2K token prompt. If all prompts share the same 1K
//! token module, Prompt Cache can reduce the memory footprint by 50% when
//! combined with methods like paged attention, allowing for a larger
//! working batch size and thus higher throughput."
//!
//! A batch's KV footprint in tokens:
//!
//! * **naive** — every request stores its full prompt:
//!   `Σ total_tokens`;
//! * **shared** — each distinct module is stored once, plus every
//!   request's private (uncached) tokens:
//!   `Σ_unique module_tokens + Σ private_tokens`.

use std::collections::HashMap;

/// One request's KV footprint description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFootprint {
    /// `(module id, token length)` for every imported module.
    pub modules: Vec<(u64, usize)>,
    /// Uncached tokens private to this request (question + arguments +
    /// generated tokens it will hold).
    pub private_tokens: usize,
}

impl RequestFootprint {
    /// Total prompt tokens of this request.
    pub fn total_tokens(&self) -> usize {
        self.modules.iter().map(|(_, n)| n).sum::<usize>() + self.private_tokens
    }
}

/// Capacity analysis of one request population under a token budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityReport {
    /// KV tokens a naive (duplicating) batch of all requests needs.
    pub naive_tokens: usize,
    /// KV tokens a module-sharing batch needs.
    pub shared_tokens: usize,
    /// Requests that fit the budget without sharing.
    pub naive_batch: usize,
    /// Requests that fit the budget with sharing.
    pub shared_batch: usize,
}

impl CapacityReport {
    /// Footprint reduction from sharing, in `[0, 1)`.
    pub fn footprint_reduction(&self) -> f64 {
        if self.naive_tokens == 0 {
            0.0
        } else {
            1.0 - self.shared_tokens as f64 / self.naive_tokens as f64
        }
    }

    /// Throughput multiplier from the larger batch (≥ 1 when sharing
    /// helps and the budget binds).
    pub fn batch_gain(&self) -> f64 {
        if self.naive_batch == 0 {
            0.0
        } else {
            self.shared_batch as f64 / self.naive_batch as f64
        }
    }
}

/// Analyses `requests` (assumed homogeneous admission order) against a
/// `budget_tokens` KV budget. Batch sizes count how many requests, taken
/// in order, fit before the budget is exceeded.
pub fn analyze(budget_tokens: usize, requests: &[RequestFootprint]) -> CapacityReport {
    let naive_tokens: usize = requests.iter().map(RequestFootprint::total_tokens).sum();
    let mut seen: HashMap<u64, usize> = HashMap::new();
    let mut shared_tokens = 0usize;
    for r in requests {
        shared_tokens += r.private_tokens;
        for &(id, len) in &r.modules {
            if seen.insert(id, len).is_none() {
                shared_tokens += len;
            }
        }
    }

    // Admission sweeps.
    let mut naive_batch = 0;
    let mut used = 0usize;
    for r in requests {
        if used + r.total_tokens() > budget_tokens {
            break;
        }
        used += r.total_tokens();
        naive_batch += 1;
    }
    let mut shared_batch = 0;
    let mut used = 0usize;
    let mut resident: HashMap<u64, usize> = HashMap::new();
    for r in requests {
        let mut marginal = r.private_tokens;
        for &(id, len) in &r.modules {
            if !resident.contains_key(&id) {
                marginal += len;
            }
        }
        if used + marginal > budget_tokens {
            break;
        }
        used += marginal;
        for &(id, len) in &r.modules {
            resident.insert(id, len);
        }
        shared_batch += 1;
    }

    CapacityReport {
        naive_tokens,
        shared_tokens,
        naive_batch,
        shared_batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_population() -> Vec<RequestFootprint> {
        // §5.4: 100 requests × 2K tokens, all sharing one 1K module.
        (0..100)
            .map(|_| RequestFootprint {
                modules: vec![(1, 1000)],
                private_tokens: 1000,
            })
            .collect()
    }

    #[test]
    fn paper_example_50_percent_reduction() {
        let report = analyze(usize::MAX, &paper_population());
        assert_eq!(report.naive_tokens, 200_000);
        assert_eq!(report.shared_tokens, 101_000);
        assert!((report.footprint_reduction() - 0.495).abs() < 0.01);
    }

    #[test]
    fn paper_example_doubles_batch_under_binding_budget() {
        // Budget that naively fits 50 requests.
        let report = analyze(100_000, &paper_population());
        assert_eq!(report.naive_batch, 50);
        assert_eq!(report.shared_batch, 99);
        assert!(report.batch_gain() > 1.9);
    }

    #[test]
    fn disjoint_modules_share_nothing() {
        let requests: Vec<RequestFootprint> = (0..10)
            .map(|i| RequestFootprint {
                modules: vec![(i, 500)],
                private_tokens: 100,
            })
            .collect();
        let report = analyze(usize::MAX, &requests);
        assert_eq!(report.naive_tokens, report.shared_tokens);
        assert_eq!(report.footprint_reduction(), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // Two module pools: even requests use module 1, odd use module 2.
        let requests: Vec<RequestFootprint> = (0..4)
            .map(|i| RequestFootprint {
                modules: vec![(1 + (i % 2), 300)],
                private_tokens: 50,
            })
            .collect();
        let report = analyze(usize::MAX, &requests);
        assert_eq!(report.naive_tokens, 4 * 350);
        assert_eq!(report.shared_tokens, 2 * 300 + 4 * 50);
    }

    #[test]
    fn empty_population() {
        let report = analyze(1000, &[]);
        assert_eq!(report.naive_batch, 0);
        assert_eq!(report.footprint_reduction(), 0.0);
        assert_eq!(report.batch_gain(), 0.0);
    }

    #[test]
    fn budget_smaller_than_one_request() {
        let report = analyze(10, &paper_population());
        assert_eq!(report.naive_batch, 0);
        assert_eq!(report.shared_batch, 0);
    }

    #[test]
    fn shared_batch_never_smaller_than_naive() {
        for budget in [0usize, 1000, 5000, 50_000, 150_000] {
            let report = analyze(budget, &paper_population());
            assert!(report.shared_batch >= report.naive_batch, "budget {budget}");
        }
    }
}
