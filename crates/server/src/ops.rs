//! The ops plane: a std-only HTTP/1.1 endpoint thread.
//!
//! Enabled by [`crate::ServerConfig::ops_addr`], one listener thread
//! serves read-only endpoints over plain TCP — no HTTP library,
//! just [`std::net::TcpListener`] and a minimal request-line parser —
//! so operators can scrape and debug a running server without linking
//! against it:
//!
//! | Path            | Payload                                               |
//! |-----------------|-------------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition (0.0.4) with HELP metadata |
//! | `/healthz`      | JSON admission/queue/SLO rollup                       |
//! | `/debug/cache`  | JSON store snapshot + per-module heat ranking         |
//! | `/debug/batch`  | JSON live batch membership + prefix groups            |
//! | `/debug/flight` | Flight-recorder events as JSON Lines                  |
//!
//! The fleet router ([`crate::Router`]) reuses the same listener with
//! its own route table (`/metrics`, `/healthz`, `/debug/fleet`): the
//! listener is generic over a [`Routes`] dispatch function.
//!
//! The thread blocks in `accept`; shutdown sets a flag and self-connects
//! once to wake it. Requests are served one at a time with short I/O
//! timeouts — this is an operator plane, not a data plane. A server
//! without `ops_addr` spawns no thread and binds no socket.

use crate::server::{
    render_debug_batch, render_debug_cache, render_flight, render_healthz, render_metrics, Shared,
};
use prompt_cache::PromptCache;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Plain-text content type.
pub(crate) const TEXT: &str = "text/plain; charset=utf-8";
/// Prometheus text exposition content type.
pub(crate) const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
/// JSON content type.
pub(crate) const JSON: &str = "application/json";
/// JSON Lines content type.
pub(crate) const NDJSON: &str = "application/x-ndjson";

/// One rendered HTTP response: status line tail, content type, body.
pub(crate) type RouteReply = (&'static str, &'static str, String);

/// A route table: maps a GET path to a response. Returning `None` means
/// 404.
pub(crate) type Routes = Arc<dyn Fn(&str) -> Option<RouteReply> + Send + Sync>;

/// Handle to a running ops listener: its bound address (useful with
/// port 0) plus the shutdown hook.
pub(crate) struct OpsHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl OpsHandle {
    /// The actually-bound address (resolves an ephemeral port 0).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener: sets the flag, self-connects to wake the
    /// blocking `accept`, and joins the thread.
    pub(crate) fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Binds `addr` and spawns a listener thread over an arbitrary route
/// table — the shared engine room for the single-process server and the
/// fleet router.
pub(crate) fn spawn_routes(addr: SocketAddr, routes: Routes) -> std::io::Result<OpsHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::spawn(move || serve_loop(&listener, &stop_flag, &routes));
    Ok(OpsHandle {
        addr,
        stop,
        thread: Some(thread),
    })
}

/// Binds `addr` and spawns the single-process server's listener.
pub(crate) fn spawn(
    addr: SocketAddr,
    shared: Arc<Shared>,
    engine: Arc<PromptCache>,
) -> std::io::Result<OpsHandle> {
    let routes: Routes = Arc::new(move |path| match path {
        "/metrics" => Some(("200 OK", PROM, render_metrics(&shared, &engine))),
        "/healthz" => Some(("200 OK", JSON, render_healthz(&shared))),
        "/debug/cache" => Some(("200 OK", JSON, render_debug_cache(&engine))),
        "/debug/batch" => Some(("200 OK", JSON, render_debug_batch(&shared))),
        "/debug/flight" => Some(match render_flight(&shared) {
            Some(body) => ("200 OK", NDJSON, body),
            None => (
                "404 Not Found",
                TEXT,
                "flight recorder disabled (set ServerConfig::flight_recorder)\n".to_owned(),
            ),
        }),
        _ => None,
    });
    spawn_routes(addr, routes)
}

fn serve_loop(listener: &TcpListener, stop: &AtomicBool, routes: &Routes) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // One connection at a time: an operator plane never needs more,
        // and serial handling keeps the thread trivially robust.
        let _ = handle_conn(stream, routes);
    }
}

fn handle_conn(mut stream: TcpStream, routes: &Routes) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers to the blank line; their contents don't matter.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", TEXT, "method not allowed\n".to_owned())
    } else {
        routes(path).unwrap_or_else(|| ("404 Not Found", TEXT, "not found\n".to_owned()))
    };
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
