//! Serving metrics: latency percentiles and throughput counters.

use parking_lot::Mutex;
use std::time::Duration;

/// A thread-safe latency recorder with percentile queries.
///
/// Stores every sample (serving experiments here run thousands, not
/// billions, of requests — exact percentiles beat sketch complexity).
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    samples: Mutex<Vec<Duration>>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&self, sample: Duration) {
        self.samples.lock().push(sample);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.lock().len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.lock().is_empty()
    }

    /// The `q`-th percentile (`0.0..=100.0`) by nearest-rank, or `None`
    /// when empty. Sorts the samples in place under the lock — no clone;
    /// later `record` calls append and the next query re-sorts.
    pub fn percentile(&self, q: f64) -> Option<Duration> {
        let mut samples = self.samples.lock();
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let rank = ((q / 100.0) * samples.len() as f64).ceil() as usize;
        Some(samples[rank.clamp(1, samples.len()) - 1])
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<Duration> {
        let samples = self.samples.lock();
        if samples.is_empty() {
            return None;
        }
        Some(samples.iter().sum::<Duration>() / samples.len() as u32)
    }
}

/// A point-in-time snapshot of server health.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests completed successfully.
    pub served: u64,
    /// Requests that returned an error.
    pub failed: u64,
    /// Requests shed without being served (admission rejection, deadline
    /// passed before pickup, cancelled in queue, or shutdown drain).
    pub shed: u64,
    /// Requests cancelled by their caller — whether shed in queue or
    /// stopped mid-serve with a partial response.
    pub cancelled: u64,
    /// Median time-to-first-token.
    pub ttft_p50: Option<Duration>,
    /// 95th-percentile time-to-first-token.
    pub ttft_p95: Option<Duration>,
    /// 99th-percentile time-to-first-token.
    pub ttft_p99: Option<Duration>,
    /// Mean end-to-end service time (queue excluded).
    pub service_mean: Option<Duration>,
    /// Mean time spent queued before a worker picked the request up.
    pub queue_mean: Option<Duration>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn percentiles_nearest_rank() {
        let rec = LatencyRecorder::new();
        for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            rec.record(ms(v));
        }
        assert_eq!(rec.percentile(50.0), Some(ms(50)));
        assert_eq!(rec.percentile(90.0), Some(ms(90)));
        assert_eq!(rec.percentile(100.0), Some(ms(100)));
        assert_eq!(rec.percentile(1.0), Some(ms(10)));
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let rec = LatencyRecorder::new();
        rec.record(ms(42));
        for q in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(rec.percentile(q), Some(ms(42)));
        }
    }

    #[test]
    fn empty_recorder_returns_none() {
        let rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.percentile(50.0), None);
        assert_eq!(rec.mean(), None);
    }

    #[test]
    fn percentile_stays_exact_after_interleaved_records() {
        // The in-place sort must not disturb later queries: recording
        // after a percentile query (which sorted the buffer) still yields
        // exact nearest-rank answers.
        let rec = LatencyRecorder::new();
        for v in [50, 10, 30] {
            rec.record(ms(v));
        }
        assert_eq!(rec.percentile(100.0), Some(ms(50)));
        rec.record(ms(20));
        rec.record(ms(40));
        assert_eq!(rec.percentile(50.0), Some(ms(30)));
        assert_eq!(rec.percentile(100.0), Some(ms(50)));
        assert_eq!(rec.len(), 5);
    }

    #[test]
    fn mean_is_exact() {
        let rec = LatencyRecorder::new();
        rec.record(ms(10));
        rec.record(ms(30));
        assert_eq!(rec.mean(), Some(ms(20)));
    }

    #[test]
    fn concurrent_recording() {
        let rec = std::sync::Arc::new(LatencyRecorder::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let rec = std::sync::Arc::clone(&rec);
                s.spawn(move || {
                    for i in 0..100 {
                        rec.record(ms(t * 100 + i));
                    }
                });
            }
        });
        assert_eq!(rec.len(), 400);
    }
}
