//! Property-based tests for the capacity model and latency recorder.

use pc_server::capacity::{analyze, RequestFootprint};
use pc_server::metrics::LatencyRecorder;
use proptest::prelude::*;
use std::time::Duration;

fn population() -> impl Strategy<Value = Vec<RequestFootprint>> {
    proptest::collection::vec(
        (
            proptest::collection::vec((0u64..6, 10usize..500), 0..4),
            10usize..300,
        )
            .prop_map(|(modules, private_tokens)| RequestFootprint {
                modules,
                private_tokens,
            }),
        0..20,
    )
    .prop_map(|mut requests| {
        // Same module id must have one consistent length across requests.
        let mut canonical: std::collections::HashMap<u64, usize> = Default::default();
        for r in &mut requests {
            for (id, len) in &mut r.modules {
                let e = canonical.entry(*id).or_insert(*len);
                *len = *e;
            }
        }
        requests
    })
}

proptest! {
    /// Sharing never stores more than duplicating, and the batch under
    /// any budget is never smaller.
    #[test]
    fn sharing_dominates(requests in population(), budget in 0usize..50_000) {
        let report = analyze(budget, &requests);
        prop_assert!(report.shared_tokens <= report.naive_tokens);
        prop_assert!(report.shared_batch >= report.naive_batch);
        prop_assert!((0.0..1.0).contains(&report.footprint_reduction())
            || report.naive_tokens == 0);
    }

    /// With an unbounded budget every request is admitted on both paths.
    #[test]
    fn unbounded_budget_admits_all(requests in population()) {
        let report = analyze(usize::MAX, &requests);
        prop_assert_eq!(report.naive_batch, requests.len());
        prop_assert_eq!(report.shared_batch, requests.len());
    }

    /// Shared footprint equals naive when no module id repeats.
    #[test]
    fn no_overlap_means_no_saving(n in 1usize..12, len in 10usize..100) {
        let requests: Vec<RequestFootprint> = (0..n as u64)
            .map(|i| RequestFootprint { modules: vec![(i, len)], private_tokens: 7 })
            .collect();
        let report = analyze(usize::MAX, &requests);
        prop_assert_eq!(report.naive_tokens, report.shared_tokens);
    }

    /// Percentiles are monotone in q and bounded by min/max samples.
    #[test]
    fn percentiles_monotone(samples in proptest::collection::vec(1u64..10_000, 1..80)) {
        let rec = LatencyRecorder::new();
        for &s in &samples {
            rec.record(Duration::from_micros(s));
        }
        let p = |q| rec.percentile(q).unwrap();
        prop_assert!(p(10.0) <= p(50.0));
        prop_assert!(p(50.0) <= p(90.0));
        prop_assert!(p(90.0) <= p(100.0));
        let max = Duration::from_micros(*samples.iter().max().unwrap());
        let min = Duration::from_micros(*samples.iter().min().unwrap());
        prop_assert_eq!(p(100.0), max);
        prop_assert!(p(0.1) >= min && p(0.1) <= max);
    }
}
