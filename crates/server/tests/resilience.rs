//! Server-level resilience edge cases: in-queue cancellation, bounded
//! admission, predicted-wait shedding, deadline-dead requests never
//! reaching a worker, and drain-or-cancel shutdown.

use pc_model::{Model, ModelConfig};
use pc_server::{
    RequestHandle, RequestOutcome, Server, ServerConfig, ShedReason, SubmitError, SubmitRequest,
    WorkerFaults,
};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions, ServeOutcome};
use std::time::Duration;

const CORPUS: &str = "alpha beta gamma delta epsilon zeta eta theta answer the question";
const SCHEMA: &str =
    r#"<schema name="s"><module name="ctx">alpha beta gamma delta epsilon zeta eta theta</module></schema>"#;
const PROMPT: &str = r#"<prompt schema="s"><ctx/>answer the question</prompt>"#;

fn engine() -> PromptCache {
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 5),
        tokenizer,
        EngineConfig::default(),
    );
    engine.register_schema(SCHEMA).unwrap();
    engine
}

fn server(workers: usize, queue_capacity: usize) -> Server {
    Server::start(engine(), ServerConfig::default().workers(workers).queue_capacity(queue_capacity))
}

fn opts() -> ServeOptions {
    ServeOptions::default().max_new_tokens(2)
}

fn submit(server: &Server, prompt: String, options: ServeOptions) -> RequestHandle {
    server
        .submit_request(&SubmitRequest::new(prompt).options(options).blocking(true))
        .expect("blocking submit cannot fail")
}

fn try_submit(
    server: &Server,
    prompt: String,
    options: ServeOptions,
) -> Result<RequestHandle, SubmitError> {
    server.submit_request(&SubmitRequest::new(prompt).options(options))
}

/// Stalls every pickup by a fixed duration — pins a worker so requests
/// pile up behind it deterministically.
#[derive(Debug)]
struct StallEvery(Duration);

impl WorkerFaults for StallEvery {
    fn pre_serve_delay(&self, _id: u64) -> Duration {
        self.0
    }
}

#[test]
fn cancel_before_pickup_sheds_without_serving() {
    let server = server(1, 16);
    server.set_worker_faults(Some(std::sync::Arc::new(StallEvery(
        Duration::from_millis(60),
    ))));
    // The first request occupies the (stalled) worker; the second sits in
    // the queue where its cancellation must be noticed at pickup.
    let first = submit(&server, PROMPT.into(), opts());
    let second = submit(&server, PROMPT.into(), opts());
    second.cancel();
    let result = second.wait().unwrap();
    assert_eq!(
        result.outcome.shed_reason(),
        Some(ShedReason::CancelledInQueue)
    );
    assert_eq!(result.service_time, Duration::ZERO, "never reached the engine");
    assert!(first.wait().unwrap().outcome.is_ok());
    let m = server.metrics();
    assert_eq!(m.served, 1);
    assert!(m.shed >= 1);
    assert!(m.cancelled >= 1);
    server.shutdown();
}

#[test]
fn try_submit_rejects_when_the_queue_is_full() {
    let server = server(1, 1);
    server.set_worker_faults(Some(std::sync::Arc::new(StallEvery(
        Duration::from_millis(60),
    ))));
    // Fill the single worker and the single queue slot, then keep trying
    // until admission control pushes back.
    let mut admitted = vec![submit(&server, PROMPT.into(), opts())];
    let rejection = loop {
        match try_submit(&server, PROMPT.into(), opts()) {
            Ok(handle) => admitted.push(handle),
            Err(e) => break e,
        }
    };
    assert!(matches!(rejection, SubmitError::QueueFull), "{rejection:?}");
    assert!(server.metrics().shed >= 1, "rejection counts as shed");
    for handle in admitted {
        assert!(handle.wait().unwrap().outcome.is_ok());
    }
    server.shutdown();
}

#[test]
fn try_submit_sheds_on_predicted_deadline_overrun() {
    let server = server(1, 32);
    // Seed the EWMA service-time estimate with one real serve.
    assert!(submit(&server, PROMPT.into(), opts())
        .wait()
        .unwrap()
        .outcome
        .is_ok());
    // Pin the worker and build queue depth so the wait estimate is
    // strictly positive.
    server.set_worker_faults(Some(std::sync::Arc::new(StallEvery(
        Duration::from_millis(120),
    ))));
    let backlog: Vec<_> = (0..3).map(|_| submit(&server, PROMPT.into(), opts())).collect();
    std::thread::sleep(Duration::from_millis(20));
    assert!(server.estimated_queue_wait() > Duration::ZERO);
    let rejection = try_submit(&server, 
            PROMPT.into(),
            opts().clone().deadline(Duration::from_nanos(1)),
        )
        .unwrap_err();
    assert!(
        matches!(rejection, SubmitError::PredictedDeadlineExceeded { estimated_wait }
            if estimated_wait > Duration::from_nanos(1)),
        "{rejection:?}"
    );
    for handle in backlog {
        handle.wait().unwrap();
    }
    server.shutdown();
}

#[test]
fn deadline_dead_requests_never_reach_a_worker() {
    let server = server(2, 16);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            submit(&server, 
                PROMPT.into(),
                opts().clone().deadline(Duration::ZERO),
            )
        })
        .collect();
    for handle in handles {
        let result = handle.wait().unwrap();
        assert_eq!(
            result.outcome.shed_reason(),
            Some(ShedReason::DeadlineBeforeStart)
        );
        assert_eq!(result.service_time, Duration::ZERO);
    }
    let m = server.metrics();
    assert_eq!(m.served, 0, "no worker ever served a dead request");
    assert_eq!(m.shed, 4);
    server.shutdown();
}

#[test]
fn shutdown_within_sheds_queued_and_cancels_in_flight() {
    let server = server(1, 16);
    server.set_worker_faults(Some(std::sync::Arc::new(StallEvery(
        Duration::from_millis(100),
    ))));
    // One request in flight (stalled inside the worker), two queued.
    let in_flight = submit(&server, PROMPT.into(), opts());
    let queued: Vec<_> = (0..2).map(|_| submit(&server, PROMPT.into(), opts())).collect();
    std::thread::sleep(Duration::from_millis(20));

    assert!(
        server.shutdown_within(Duration::from_secs(5)),
        "grace period must suffice: the stall is bounded"
    );

    // The in-flight request was cancelled via the linked shutdown token —
    // the engine returned its partial rather than completing.
    let result = in_flight.wait().unwrap();
    match result.outcome {
        RequestOutcome::Ok(response) => {
            assert_eq!(response.outcome, ServeOutcome::Cancelled);
            assert!(response.tokens.is_empty(), "cancelled before any decode");
        }
        other => panic!("expected a cancelled partial, got {other:?}"),
    }
    // Everything still queued was shed by the drain.
    for handle in queued {
        assert_eq!(
            handle.wait().unwrap().outcome.shed_reason(),
            Some(ShedReason::ShuttingDown)
        );
    }
}
