//! Ops-plane integration tests: the four observability endpoints served
//! over plain TCP, the flight recorder, SLO accounting, and the
//! zero-overhead-when-disabled guarantee (no listener thread, no event
//! ring, byte-identical serve results with the ops plane on vs off).

use pc_cache::StoreConfig;
use pc_model::{Model, ModelConfig};
use pc_server::{RequestHandle, Server, ServerConfig, SubmitRequest};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{BatchConfig, EngineConfig, PromptCache, ServeOptions, Telemetry};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const CORPUS: &str = "the miami coast has warm beaches surf and sun all year \
    tokyo offers temples gardens and remarkable food in every district \
    you are a helpful travel assistant highlight surf spots please \
    what should i pack for the journey answer the question";

const SCHEMA: &str = r#"<schema name="trip">
    <module name="miami">the miami coast has warm beaches surf and sun</module>
    <module name="tokyo">tokyo offers temples gardens and remarkable food</module>
  </schema>"#;

const PROMPTS: [&str; 3] = [
    r#"<prompt schema="trip"><miami/>highlight surf spots please</prompt>"#,
    r#"<prompt schema="trip"><miami/>what should i pack</prompt>"#,
    r#"<prompt schema="trip"><tokyo/>answer the question</prompt>"#,
];

fn engine_with(config: EngineConfig) -> PromptCache {
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine =
        PromptCache::new(Model::new(ModelConfig::llama_tiny(vocab), 7), tokenizer, config);
    engine.register_schema(SCHEMA).unwrap();
    engine
}

/// A fully observable engine: telemetry registry + per-module analytics.
fn observable_engine() -> PromptCache {
    engine_with(
        EngineConfig::default()
            .telemetry(Telemetry::new())
            .store(StoreConfig::default().module_analytics(true)),
    )
}

fn submit(server: &Server, prompt: String, options: ServeOptions) -> RequestHandle {
    server
        .submit_request(&SubmitRequest::new(prompt).options(options).blocking(true))
        .expect("blocking submit cannot fail")
}

fn opts() -> ServeOptions {
    ServeOptions::default().max_new_tokens(3)
}

fn localhost() -> SocketAddr {
    // Port 0: the OS picks an ephemeral port, read back via
    // `Server::ops_local_addr`.
    "127.0.0.1:0".parse().unwrap()
}

/// Minimal HTTP/1.1 GET over a raw `TcpStream` (the curl-equivalent the
/// ops plane is built for). Returns `(status_line, headers, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (String, String, String) {
    http_request(addr, "GET", path)
}

fn http_request(addr: SocketAddr, method: &str, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to ops endpoint");
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let response = String::from_utf8(response).expect("utf-8 response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_owned(), headers.to_owned(), body.to_owned())
}

/// Drives a few requests through the server so every subsystem has
/// state to report.
fn warm(server: &Server) {
    for prompt in PROMPTS {
        assert!(submit(&server, prompt.into(), opts()).wait().unwrap().outcome.is_ok());
    }
    // Repeat one cached prompt with a deadline so the SLO tracker has a
    // completed deadline-carrying request.
    assert!(submit(&server, PROMPTS[0].into(), opts().deadline(Duration::from_secs(30)))
        .wait()
        .unwrap()
        .outcome
        .is_ok());
}

#[test]
fn all_four_endpoints_serve_over_plain_tcp() {
    let server = Server::start(
        observable_engine(),
        ServerConfig::default()
            .ops_addr(localhost())
            .flight_recorder(256)
            .batching(BatchConfig::default().max_batch_size(4)),
    );
    let addr = server.ops_local_addr().expect("ops endpoint bound");
    warm(&server);

    // /metrics — Prometheus text with HELP metadata, per-module labeled
    // series, build info, and uptime; identical to Server::metrics_text
    // modulo the moving uptime sample.
    let (status, headers, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK", "{status}");
    assert!(headers.contains("text/plain; version=0.0.4"), "{headers}");
    assert!(metrics.contains("# HELP pc_requests_served_total "), "{metrics}");
    assert!(metrics.contains("# TYPE pc_requests_served_total counter"), "{metrics}");
    assert!(metrics.contains("pc_requests_served_total 4"), "{metrics}");
    assert!(metrics.contains("pc_module_hits_total{module=\"trip:<span>/"), "{metrics}");
    assert!(metrics.contains("pc_module_misses_total{module="), "{metrics}");
    assert!(metrics.contains("pc_module_kv_bytes_shared_total{module="), "{metrics}");
    assert!(metrics.contains("pc_build_info{version=\""), "{metrics}");
    assert!(metrics.contains("pc_uptime_seconds "), "{metrics}");
    assert!(metrics.contains("pc_slo_requests_total 1"), "{metrics}");
    assert!(metrics.contains("pc_slo_violations_total 0"), "{metrics}");
    assert!(metrics.contains("pc_slo_budget_burn_ratio_bucket{le=\"1\"}"), "{metrics}");
    // Tiered-persistence series are always exported (zero without a
    // disk tier), with per-tier occupancy labeled host/device/disk.
    assert!(metrics.contains("# HELP pc_demotions_total "), "{metrics}");
    assert!(metrics.contains("# HELP pc_promotions_total "), "{metrics}");
    assert!(metrics.contains("pc_cache_disk_hits_total "), "{metrics}");
    assert!(metrics.contains("pc_cache_disk_corruptions_total "), "{metrics}");
    assert!(metrics.contains("pc_store_tier_bytes{tier=\"host\"}"), "{metrics}");
    assert!(metrics.contains("pc_store_tier_bytes{tier=\"device\"}"), "{metrics}");
    assert!(metrics.contains("pc_store_tier_bytes{tier=\"disk\"}"), "{metrics}");
    // Every non-comment line is `name[{labels}] value`.
    for line in metrics.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let (name, value) = line.rsplit_once(' ').expect("name value");
        assert!(!name.is_empty());
        assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
    }

    // /healthz — JSON rollup of liveness, queue, and SLO state.
    let (status, headers, health) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(headers.contains("application/json"), "{headers}");
    let health: serde_json::Value = serde_json::from_str(&health).expect("valid JSON");
    assert_eq!(health["status"], "ok");
    assert_eq!(health["served"].as_u64(), Some(4));
    assert_eq!(health["queue_depth"].as_u64(), Some(0));
    assert!(health["queue_capacity"].as_u64().unwrap() > 0);
    assert_eq!(health["slo"]["tracked"].as_u64(), Some(1));
    assert_eq!(health["slo"]["violations"].as_u64(), Some(0));
    assert!(health["slo"]["burn_p50"].as_f64().unwrap() >= 0.0);
    assert!(health["uptime_seconds"].as_f64().unwrap() >= 0.0);

    // /debug/cache — store snapshot plus the per-module heat ranking.
    let (status, _, cache) = http_get(addr, "/debug/cache");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let cache: serde_json::Value = serde_json::from_str(&cache).expect("valid JSON");
    assert!(cache["stats"]["hits"].as_u64().unwrap() > 0);
    let modules = cache["modules"].as_array().unwrap();
    assert!(!modules.is_empty());
    for m in modules {
        assert!(m["module"].as_str().unwrap().starts_with("trip:"));
        assert!(m["size_bytes"].as_u64().unwrap() > 0);
        let tier = m["tier"].as_str().unwrap();
        assert!(matches!(tier, "host" | "device" | "disk"), "{tier}");
    }
    // The tier counters ride in stats (zero here: no disk tier).
    assert_eq!(cache["stats"]["demotions"].as_u64(), Some(0));
    assert_eq!(cache["stats"]["disk_bytes"].as_u64(), Some(0));
    let heat = cache["heat"].as_array().unwrap();
    assert!(!heat.is_empty(), "analytics enabled → heat ranking present");
    assert!(heat[0]["hits"].as_u64().unwrap() >= heat[heat.len() - 1]["hits"].as_u64().unwrap());
    assert!(heat[0]["bytes_shared"].as_u64().unwrap() > 0, "zero-copy bytes attributed");

    // /debug/batch — live batch membership and prefix groups (batching
    // is enabled, so at least one tick has published a snapshot).
    let (status, _, batch) = http_get(addr, "/debug/batch");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let batch: serde_json::Value = serde_json::from_str(&batch).expect("valid JSON");
    assert_eq!(batch["enabled"], true);
    assert_eq!(batch["max_batch_size"].as_u64(), Some(4));
    assert!(batch["sequences"].as_array().is_some());
    assert!(batch["groups"].as_array().is_some());

    // /debug/flight — one JSON object per line, each with the documented
    // seq/request/kind envelope.
    let (status, headers, flight) = http_get(addr, "/debug/flight");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(headers.contains("application/x-ndjson"), "{headers}");
    assert!(!flight.is_empty());
    let mut kinds = Vec::new();
    for line in flight.lines() {
        let event: serde_json::Value = serde_json::from_str(line).expect("valid JSONL");
        assert!(event["seq"].as_u64().is_some(), "{line}");
        assert!(event["request"].as_u64().is_some() || event["request"] == "batch", "{line}");
        kinds.push(event["kind"].as_str().unwrap().to_owned());
    }
    for expected in ["submit", "pickup", "batch_join", "fetch", "finish", "tick", "batch_leave"] {
        assert!(kinds.iter().any(|k| k == expected), "missing {expected} in {kinds:?}");
    }
    assert_eq!(flight, server.flight_json(), "endpoint and API agree");

    // Unknown paths 404; non-GET methods 405.
    let (status, _, _) = http_get(addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    let (status, _, _) = http_request(addr, "POST", "/metrics");
    assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");

    server.shutdown();
}

#[test]
fn worker_pool_server_reports_batch_disabled_and_flight_404() {
    // No batching, no flight recorder: /debug/batch reports disabled and
    // /debug/flight is a 404 with a pointer to the knob.
    let server = Server::start(
        observable_engine(),
        ServerConfig::default().workers(2).ops_addr(localhost()),
    );
    let addr = server.ops_local_addr().unwrap();
    warm(&server);
    let (status, _, batch) = http_get(addr, "/debug/batch");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(batch, "{\"enabled\":false}");
    let (status, _, body) = http_get(addr, "/debug/flight");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    assert!(body.contains("flight_recorder"), "{body}");
    assert_eq!(server.flight_json(), "");
    server.shutdown();
}

#[test]
fn slo_violations_are_counted() {
    let server = Server::start(observable_engine(), ServerConfig::default().workers(1));
    // An impossible budget: the serve completes but overruns, or is shed
    // dead-on-pickup — either way it burned its whole budget.
    let _ = submit(&server, PROMPTS[0].into(), opts().deadline(Duration::from_nanos(1)))
        .wait()
        .unwrap();
    let text = server.metrics_text();
    assert!(text.contains("pc_slo_violations_total 1"), "{text}");
    assert!(text.contains("pc_slo_requests_total 1"), "{text}");
    server.shutdown();
}

#[test]
fn ops_plane_disabled_is_zero_overhead_and_byte_identical() {
    // Disabled = the default config: no listener thread, no event ring.
    let baseline = Server::start(observable_engine(), ServerConfig::default());
    assert!(baseline.ops_local_addr().is_none(), "no listener by default");
    assert_eq!(baseline.flight_json(), "", "no ring by default");

    // Same workload through a fully instrumented server: results must be
    // byte-identical — observation never perturbs serving.
    let observed = Server::start(
        observable_engine(),
        ServerConfig::default().ops_addr(localhost()).flight_recorder(128),
    );
    let run = |server: &Server| -> Vec<(Vec<u32>, String)> {
        PROMPTS
            .iter()
            .map(|p| {
                let r = submit(&server, (*p).into(), opts()).wait().unwrap().outcome.unwrap();
                (r.tokens, r.text)
            })
            .collect()
    };
    let plain = run(&baseline);
    let instrumented = run(&observed);
    assert_eq!(plain, instrumented, "ops plane must not change outputs");
    assert!(!observed.flight_json().is_empty(), "instrumented run recorded events");
    baseline.shutdown();
    observed.shutdown();
}

#[test]
fn batched_server_telemetry_on_off_byte_identity() {
    // The PR 2 on/off byte-identity smoke, with ServerConfig::batching
    // enabled: engine telemetry (and the ops plane) must not perturb
    // batched serving either.
    let run = |config: EngineConfig, server_config: ServerConfig| -> Vec<Vec<u32>> {
        let server = Server::start(engine_with(config), server_config);
        let handles: Vec<_> =
            PROMPTS.iter().map(|p| submit(&server, (*p).into(), opts())).collect();
        let out = handles
            .into_iter()
            .map(|h| h.wait().unwrap().outcome.unwrap().tokens)
            .collect();
        server.shutdown();
        out
    };
    let batching = || ServerConfig::default().batching(BatchConfig::default().max_batch_size(4));
    let quiet = run(EngineConfig::default(), batching());
    let observed = run(
        EngineConfig::default()
            .telemetry(Telemetry::new())
            .store(StoreConfig::default().module_analytics(true)),
        batching().ops_addr(localhost()).flight_recorder(128),
    );
    assert_eq!(quiet, observed, "telemetry + ops plane must not perturb batched output");
}
