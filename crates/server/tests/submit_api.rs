//! `SubmitRequest` unification: the single builder-based entry point
//! must behave exactly like the three PR 4/5 signatures it deprecates
//! (`submit`, `submit_baseline`, `try_submit`), which remain as shims.
#![allow(deprecated)]

use pc_model::{Model, ModelConfig};
use pc_server::{Server, ServerConfig, SubmitError, SubmitRequest, WorkerFaults};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use std::time::Duration;

const CORPUS: &str = "alpha beta gamma delta epsilon zeta eta theta answer the question";
const SCHEMA: &str = r#"<schema name="s"><module name="ctx">alpha beta gamma delta epsilon zeta eta theta</module></schema>"#;
const PROMPT: &str = r#"<prompt schema="s"><ctx/>answer the question</prompt>"#;

fn engine() -> PromptCache {
    let tokenizer = WordTokenizer::train(&[CORPUS]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 5),
        tokenizer,
        EngineConfig::default(),
    );
    engine.register_schema(SCHEMA).unwrap();
    engine
}

fn opts() -> ServeOptions {
    ServeOptions::default().max_new_tokens(3)
}

#[test]
fn blocking_submit_request_matches_deprecated_submit() {
    let server = Server::start(engine(), ServerConfig::default());
    let old = server.submit(PROMPT.into(), opts()).wait().unwrap().outcome.unwrap();
    let new = server
        .submit_request(&SubmitRequest::new(PROMPT).options(opts()).blocking(true))
        .unwrap()
        .wait()
        .unwrap()
        .outcome
        .unwrap();
    assert_eq!(old.text, new.text);
    assert_eq!(old.tokens, new.tokens);
    server.shutdown();
}

#[test]
fn baseline_option_matches_deprecated_submit_baseline() {
    let server = Server::start(engine(), ServerConfig::default());
    let old = server
        .submit_baseline(PROMPT.into(), opts())
        .wait()
        .unwrap()
        .outcome
        .unwrap();
    let new = server
        .submit_request(
            &SubmitRequest::new(PROMPT)
                .options(opts())
                .baseline(true)
                .blocking(true),
        )
        .unwrap()
        .wait()
        .unwrap()
        .outcome
        .unwrap();
    assert_eq!(old.text, new.text);
    assert_eq!(old.tokens, new.tokens);
    assert_eq!(old.stats.cached_tokens, 0, "baseline never reads the cache");
    assert_eq!(new.stats.cached_tokens, 0, "baseline never reads the cache");
    server.shutdown();
}

/// Pins the worker so admission decisions are observable.
#[derive(Debug)]
struct Stall(Duration);

impl WorkerFaults for Stall {
    fn pre_serve_delay(&self, _id: u64) -> Duration {
        self.0
    }
}

#[test]
fn default_submit_request_sheds_like_deprecated_try_submit() {
    let server = Server::start(
        engine(),
        ServerConfig::default().workers(1).queue_capacity(1),
    );
    server.set_worker_faults(Some(std::sync::Arc::new(Stall(Duration::from_millis(80)))));
    // Fill the worker and the queue.
    let running = server
        .submit_request(&SubmitRequest::new(PROMPT).options(opts()).blocking(true))
        .unwrap();
    let queued = loop {
        match server.submit_request(&SubmitRequest::new(PROMPT).options(opts())) {
            Ok(handle) => break handle,
            // The first request may not have been picked up yet; the
            // queue slot frees the moment it is.
            Err(SubmitError::QueueFull) => std::thread::sleep(Duration::from_millis(2)),
            Err(e) => panic!("unexpected: {e:?}"),
        }
    };
    // Both rejection paths must agree while the queue is full.
    let old = server.try_submit(PROMPT.into(), opts());
    let new = server.submit_request(&SubmitRequest::new(PROMPT).options(opts()));
    assert!(matches!(old, Err(SubmitError::QueueFull)), "{old:?}");
    assert!(matches!(new, Err(SubmitError::QueueFull)), "{new:?}");
    running.wait().unwrap();
    queued.wait().unwrap();
    server.shutdown();
}

#[test]
fn builder_setters_populate_serve_options() {
    let request = SubmitRequest::new(PROMPT)
        .max_new_tokens(7)
        .use_scaffolds(false)
        .temperature(0.5, 9)
        .deadline(Duration::from_secs(3));
    assert_eq!(request.prompt(), PROMPT);
    assert_eq!(request.options_ref().max_new_tokens, 7);
    assert!(!request.options_ref().use_scaffolds);
    assert_eq!(request.options_ref().temperature, Some((0.5, 9)));
    assert_eq!(request.options_ref().deadline, Some(Duration::from_secs(3)));
    assert!(!request.is_baseline());
    assert!(!request.is_blocking(), "non-blocking is the default");
}

#[test]
fn deadline_rides_through_submit_request() {
    let server = Server::start(engine(), ServerConfig::default());
    let result = server
        .submit_request(
            &SubmitRequest::new(PROMPT)
                .options(opts())
                .deadline(Duration::from_secs(30))
                .blocking(true),
        )
        .unwrap()
        .wait()
        .unwrap();
    assert!(result.outcome.is_ok(), "{:?}", result.outcome);
    server.shutdown();
}
