//! Fleet integration tests: byte-identity of sharded serving against a
//! single engine across shard counts and replication factors, worker
//! kill mid-run (thread and process mode), schema-affinity routing, and
//! the fleet ops endpoints.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use pc_server::wire::TokenizerSpec;
use pc_server::{
    EngineBlueprint, FleetConfig, FleetFaults, Router, ShedReason, SubmitRequest,
};
use pc_model::ModelConfig;
use prompt_cache::{ServeOutcome, ServeRequest};

const CORPUS: &str = "tokyo offers temples gardens and remarkable food \
    kyoto keeps quiet shrines old wooden lanes \
    the miami coast has warm beaches surf sun \
    plan a day trip what should i pack answer briefly please";

const SCHEMA_EAST: &str = r#"<schema name="east">
    <module name="tokyo">tokyo offers temples gardens and remarkable food</module>
    <module name="kyoto">kyoto keeps quiet shrines old wooden lanes</module>
  </schema>"#;

const SCHEMA_WEST: &str = r#"<schema name="west">
    <module name="miami">the miami coast has warm beaches surf sun</module>
  </schema>"#;

fn blueprint() -> EngineBlueprint {
    EngineBlueprint::new(
        ModelConfig::llama_tiny(64),
        11,
        TokenizerSpec::Word {
            corpus: vec![CORPUS.to_owned()],
        },
    )
}

fn prompts() -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..4 {
        out.push(format!(
            r#"<prompt schema="east"><tokyo/>plan a day trip please q{i}</prompt>"#
        ));
        out.push(format!(
            r#"<prompt schema="east"><kyoto/>what should i pack q{i}</prompt>"#
        ));
        out.push(format!(
            r#"<prompt schema="west"><miami/>answer briefly q{i}</prompt>"#
        ));
    }
    out
}

/// Ground truth: the same prompts served on one single-process engine
/// built from the same blueprint.
fn single_engine_outputs(prompts: &[String]) -> Vec<(String, Vec<u32>)> {
    let engine = blueprint().build();
    engine.register_schema(SCHEMA_EAST).unwrap();
    engine.register_schema(SCHEMA_WEST).unwrap();
    prompts
        .iter()
        .map(|p| {
            let response = engine
                .serve(&ServeRequest::new(p).max_new_tokens(3))
                .unwrap()
                .into_response();
            (response.text, response.tokens)
        })
        .collect()
}

fn start_router(config: FleetConfig) -> Router {
    let router = Router::start(blueprint(), config);
    router.register_schema(SCHEMA_EAST).unwrap();
    router.register_schema(SCHEMA_WEST).unwrap();
    router
}

fn fleet_outputs(router: &Router, prompts: &[String]) -> Vec<(String, Vec<u32>)> {
    let handles: Vec<_> = prompts
        .iter()
        .map(|p| {
            router
                .submit(&SubmitRequest::new(p.clone()).max_new_tokens(3).blocking(true))
                .expect("blocking submit cannot fail")
        })
        .collect();
    handles
        .into_iter()
        .map(|h| {
            let response = h.wait().expect("router alive").outcome.unwrap();
            (response.text, response.tokens)
        })
        .collect()
}

#[test]
fn fleet_output_is_byte_identical_across_shard_counts_and_replication() {
    let prompts = prompts();
    let expected = single_engine_outputs(&prompts);
    for shards in [1usize, 2, 4] {
        for replication in [1usize, 2] {
            let router = start_router(
                FleetConfig::default()
                    .shards(shards)
                    .replication(replication),
            );
            let got = fleet_outputs(&router, &prompts);
            assert_eq!(
                got, expected,
                "shards={shards} replication={replication} must match single-process output"
            );
            router.shutdown();
        }
    }
}

/// Deterministic chaos: kill one worker once it has completed N serves.
#[derive(Debug)]
struct KillAfter {
    worker: usize,
    after: u64,
}

impl FleetFaults for KillAfter {
    fn pre_serve_delay(&self, _worker: usize, _id: u64) -> Duration {
        Duration::ZERO
    }

    fn kill_after(&self, worker: usize) -> Option<u64> {
        (worker == self.worker).then_some(self.after)
    }
}

#[test]
fn worker_kill_mid_run_reroutes_with_byte_identical_output() {
    let prompts = prompts();
    let expected = single_engine_outputs(&prompts);
    let router = start_router(FleetConfig::default().shards(2).queue_capacity(64));
    // Kill the owner of `east` after its second completed serve, so the
    // rest of its queue must drain onto the survivor.
    let victim = router.owners_of("east")[0];
    router.set_fleet_faults(Some(Arc::new(KillAfter {
        worker: victim,
        after: 2,
    })));
    let got = fleet_outputs(&router, &prompts);
    assert_eq!(got, expected, "output must survive the worker loss");
    let info = &router.workers()[victim];
    assert!(!info.alive, "victim must be dead");
    assert!(
        router.rerouted_total() > 0,
        "the victim's backlog must have re-routed"
    );
    router.shutdown();
}

#[test]
fn replicated_schema_survives_owner_loss_without_reencoding() {
    let prompts = prompts();
    let expected = single_engine_outputs(&prompts);
    let router = start_router(FleetConfig::default().shards(3).replication(2));
    let owners = router.owners_of("east");
    assert_eq!(owners.len(), 2, "replication factor 2 means two owners");
    router.kill_worker(owners[0]);
    let got = fleet_outputs(&router, &prompts);
    assert_eq!(got, expected, "the surviving replica must serve identically");
    router.shutdown();
}

#[test]
fn affinity_routing_prefers_owners_and_can_be_disabled() {
    let prompts = prompts();
    let affinity = start_router(FleetConfig::default().shards(4));
    fleet_outputs(&affinity, &prompts);
    let (owner_routed, spilled) = affinity.routing_split();
    assert!(
        owner_routed > 0,
        "affinity mode must route to schema owners (spilled={spilled})"
    );
    affinity.shutdown();

    let spread = start_router(FleetConfig::default().shards(4).affinity(false));
    fleet_outputs(&spread, &prompts);
    let (owner_routed, _) = spread.routing_split();
    assert_eq!(owner_routed, 0, "affinity off never counts owner routing");
    spread.shutdown();
}

#[test]
fn killing_every_worker_sheds_instead_of_hanging() {
    let router = start_router(FleetConfig::default().shards(2));
    router.kill_worker(0);
    router.kill_worker(1);
    let handle = router
        .submit(
            &SubmitRequest::new(
                r#"<prompt schema="west"><miami/>answer briefly q0</prompt>"#,
            )
            .max_new_tokens(3)
            .blocking(true),
        )
        .expect("submission is accepted");
    let result = handle.wait().expect("reply delivered");
    assert_eq!(
        result.outcome.shed_reason(),
        Some(ShedReason::ShuttingDown),
        "a dead fleet sheds rather than hangs"
    );
    router.shutdown();
}

#[test]
fn fleet_deadline_and_cancel_still_apply() {
    let router = start_router(FleetConfig::default().shards(2));
    // A zero deadline is dead on arrival: shed at pickup, never served.
    let dead = router
        .submit(
            &SubmitRequest::new(
                r#"<prompt schema="west"><miami/>answer briefly q1</prompt>"#,
            )
            .max_new_tokens(3)
            .deadline(Duration::ZERO)
            .blocking(true),
        )
        .unwrap();
    let result = dead.wait().unwrap();
    assert!(
        matches!(
            result.outcome.shed_reason(),
            Some(ShedReason::DeadlineBeforeStart | ShedReason::CancelledInQueue)
        ) || matches!(
            &result.outcome,
            pc_server::RequestOutcome::Ok(r) if r.outcome == ServeOutcome::DeadlineExceeded
        ),
        "a zero budget cannot produce a complete serve: {:?}",
        result.outcome
    );
    router.shutdown();
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect fleet ops");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: fleet\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (head.lines().next().unwrap_or_default().to_owned(), body.to_owned())
}

#[test]
fn fleet_ops_endpoints_serve_metrics_and_debug_views() {
    let router = start_router(
        FleetConfig::default()
            .shards(2)
            .ops_addr("127.0.0.1:0".parse().unwrap()),
    );
    fleet_outputs(&router, &prompts()[..3].to_vec());
    let addr = router.ops_local_addr().expect("ops endpoint bound");

    let (status, metrics) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(metrics.contains("pc_fleet_requests_served_total"), "{metrics}");
    assert!(metrics.contains("pc_worker_alive{worker=\"0\"} 1"), "{metrics}");
    assert!(metrics.contains("pc_worker_served_total{worker="), "{metrics}");

    let (status, health) = http_get(addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert!(health.contains("\"workers_alive\":2"), "{health}");

    let (status, debug) = http_get(addr, "/debug/fleet");
    assert!(status.contains("200"), "{status}");
    assert!(debug.contains("\"shards\":2"), "{debug}");
    assert!(debug.contains("\"east\":["), "schema placement: {debug}");
    assert!(debug.contains("\"routed_affinity\""), "{debug}");

    let (status, _) = http_get(addr, "/debug/nope");
    assert!(status.contains("404"), "{status}");
    router.shutdown();
}

#[test]
fn process_mode_serves_byte_identically_and_survives_worker_kill() {
    let prompts = prompts();
    let expected = single_engine_outputs(&prompts);
    let router = start_router(
        FleetConfig::default()
            .shards(2)
            .process_mode(true)
            .worker_bin(env!("CARGO_BIN_EXE_pc_fleet_worker")),
    );
    let got = fleet_outputs(&router, &prompts);
    assert_eq!(got, expected, "process-mode output must match single-process");

    // Kill one OS worker and keep serving: the survivor re-encodes on
    // demand and answers byte-identically.
    router.kill_worker(0);
    let got = fleet_outputs(&router, &prompts);
    assert_eq!(got, expected, "output must survive the process kill");
    assert!(!router.workers()[0].alive);
    router.shutdown();
}
