//! The request **flight recorder**: a fixed-capacity ring of structured
//! per-request events, the "black box" an operator dumps after a bad
//! request or a failed chaos replay.
//!
//! Recording claims a slot with one atomic `fetch_add` (lock-free slot
//! assignment; the ring never grows), then writes the event under that
//! slot's own micro-mutex — writers to *different* slots never contend,
//! and the recorder as a whole has no global lock. When the ring wraps,
//! the oldest events are overwritten; [`FlightRecorder::overwritten`]
//! reports how many were lost.
//!
//! Events split their payload into two parts:
//!
//! * [`FlightEvent::fields`] — **deterministic** facts (request id, shed
//!   reason, token counts, cache accounting, batch membership). Under
//!   seeded fault injection these depend only on the seed and submission
//!   order, so [`FlightRecorder::deterministic_jsonl`] is byte-identical
//!   across two same-seed runs and a failing replay can be diffed
//!   event-for-event against a healthy one.
//! * [`FlightEvent::timings_us`] — wall-clock measurements (TTFT phases,
//!   queue wait). Included by [`FlightRecorder::jsonl`] under a `"t"`
//!   object, excluded from the deterministic dump.
//!
//! The recorder is opt-in: nothing in the stack allocates one unless the
//! server is configured with a flight capacity, preserving the
//! zero-overhead-when-disabled guarantee (disabled = one `Option` check
//! at each would-be recording site).

use crate::export::escape_json;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One structured field value on a [`FlightEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum FlightValue {
    /// An unsigned integer (counts, byte totals, ids).
    U64(u64),
    /// A boolean flag.
    Bool(bool),
    /// A short string (reasons, outcomes, module labels).
    Str(String),
}

impl From<u64> for FlightValue {
    fn from(v: u64) -> Self {
        FlightValue::U64(v)
    }
}

impl From<usize> for FlightValue {
    fn from(v: usize) -> Self {
        FlightValue::U64(v as u64)
    }
}

impl From<bool> for FlightValue {
    fn from(v: bool) -> Self {
        FlightValue::Bool(v)
    }
}

impl From<&str> for FlightValue {
    fn from(v: &str) -> Self {
        FlightValue::Str(v.to_owned())
    }
}

impl From<String> for FlightValue {
    fn from(v: String) -> Self {
        FlightValue::Str(v)
    }
}

impl FlightValue {
    fn write_json(&self, out: &mut String) {
        match self {
            FlightValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FlightValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            FlightValue::Str(v) => {
                let _ = write!(out, "\"{}\"", escape_json(v));
            }
        }
    }
}

/// One recorded per-request event. Build with [`FlightEvent::new`] plus
/// the chainable [`field`](FlightEvent::field) /
/// [`timing_us`](FlightEvent::timing_us) setters; the recorder assigns
/// `seq` at [`FlightRecorder::record`] time.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Monotone sequence number (recorder-assigned, 0-based).
    pub seq: u64,
    /// The request id the event belongs to. Events that describe the
    /// whole batch rather than one request (per-tick membership) use the
    /// id of no request: `u64::MAX` renders as `"batch"` scope, and
    /// store-lifecycle events (tier demotions, disk restores) use
    /// `u64::MAX - 1`, rendered as `"store"`.
    pub request: u64,
    /// Event kind: `submit`, `shed`, `pickup`, `fetch`, `degrade`,
    /// `batch_join`, `batch_leave`, `tick`, `finish`; store-scoped
    /// events use `demote`, `restore`, `disk_corrupt`.
    pub kind: &'static str,
    /// Deterministic structured payload, in insertion order.
    pub fields: Vec<(&'static str, FlightValue)>,
    /// Wall-clock measurements in microseconds — excluded from
    /// [`FlightRecorder::deterministic_jsonl`].
    pub timings_us: Vec<(&'static str, u64)>,
}

/// Request id used for batch-scoped events (per-tick membership) that
/// belong to no single request.
pub const BATCH_SCOPE: u64 = u64::MAX;

/// Request id used for store-lifecycle events (tier demotions, disk
/// restores, disk corruption detections) that belong to no request.
pub const STORE_SCOPE: u64 = u64::MAX - 1;

impl FlightEvent {
    /// A new event for `request` of the given kind, with no payload yet.
    pub fn new(request: u64, kind: &'static str) -> Self {
        FlightEvent {
            seq: 0,
            request,
            kind,
            fields: Vec::new(),
            timings_us: Vec::new(),
        }
    }

    /// Appends a deterministic field.
    #[must_use]
    pub fn field(mut self, name: &'static str, value: impl Into<FlightValue>) -> Self {
        self.fields.push((name, value.into()));
        self
    }

    /// Appends a wall-clock measurement in microseconds.
    #[must_use]
    pub fn timing_us(mut self, name: &'static str, micros: u64) -> Self {
        self.timings_us.push((name, micros));
        self
    }

    /// Renders the event as one JSON object (no trailing newline).
    /// `include_timings` controls whether the non-deterministic `"t"`
    /// object is emitted.
    pub fn to_json(&self, include_timings: bool) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(out, "{{\"seq\":{},", self.seq);
        if self.request == BATCH_SCOPE {
            out.push_str("\"request\":\"batch\",");
        } else if self.request == STORE_SCOPE {
            out.push_str("\"request\":\"store\",");
        } else {
            let _ = write!(out, "\"request\":{},", self.request);
        }
        let _ = write!(out, "\"kind\":\"{}\"", escape_json(self.kind));
        for (name, value) in &self.fields {
            let _ = write!(out, ",\"{}\":", escape_json(name));
            value.write_json(&mut out);
        }
        if include_timings && !self.timings_us.is_empty() {
            out.push_str(",\"t\":{");
            for (i, (name, micros)) in self.timings_us.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{micros}", escape_json(name));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// A fixed-capacity ring of [`FlightEvent`]s. See the [module
/// docs](self) for the recording discipline and determinism contract.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightEvent>>>,
    head: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (clamped to ≥ 1);
    /// older events are overwritten once the ring wraps.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || Mutex::new(None));
        FlightRecorder {
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to ring wrap-around.
    pub fn overwritten(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Records one event: claims the next sequence number lock-free,
    /// stamps it onto the event, and writes it into its ring slot.
    /// Returns the assigned sequence number.
    pub fn record(&self, mut event: FlightEvent) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        event.seq = seq;
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().unwrap_or_else(|e| e.into_inner()) = Some(event);
        seq
    }

    /// Snapshot of every retained event, ordered by sequence number.
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut events: Vec<FlightEvent> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Every retained event as JSON Lines (one object per line,
    /// including wall-clock timings) — the `/debug/flight` payload.
    pub fn jsonl(&self) -> String {
        self.render(true)
    }

    /// The deterministic dump: JSON Lines without wall-clock timings.
    /// Under seeded fault injection this is byte-identical across two
    /// same-seed runs with the same submission order.
    pub fn deterministic_jsonl(&self) -> String {
        self.render(false)
    }

    fn render(&self, include_timings: bool) -> String {
        let mut out = String::new();
        for event in self.events() {
            out.push_str(&event.to_json(include_timings));
            out.push('\n');
        }
        out
    }

    /// Drops every retained event (sequence numbering continues).
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_orders_by_seq() {
        let r = FlightRecorder::new(8);
        r.record(FlightEvent::new(1, "submit").field("prompt_chars", 42u64));
        r.record(FlightEvent::new(1, "pickup"));
        r.record(
            FlightEvent::new(1, "finish")
                .field("outcome", "complete")
                .timing_us("ttft", 1234),
        );
        let events = r.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(events[0].kind, "submit");
        assert_eq!(r.recorded(), 3);
        assert_eq!(r.overwritten(), 0);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let r = FlightRecorder::new(2);
        for i in 0..5u64 {
            r.record(FlightEvent::new(i, "tick"));
        }
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].seq, 4);
        assert_eq!(r.overwritten(), 3);
    }

    #[test]
    fn jsonl_shapes() {
        let r = FlightRecorder::new(4);
        r.record(
            FlightEvent::new(7, "shed")
                .field("reason", "queue \"full\"")
                .field("queued", true)
                .timing_us("queue", 55),
        );
        r.record(FlightEvent::new(BATCH_SCOPE, "tick").field("members", "1,2"));
        r.record(FlightEvent::new(STORE_SCOPE, "demote").field("module", "s:a"));
        let full = r.jsonl();
        assert_eq!(
            full,
            "{\"seq\":0,\"request\":7,\"kind\":\"shed\",\
             \"reason\":\"queue \\\"full\\\"\",\"queued\":true,\"t\":{\"queue\":55}}\n\
             {\"seq\":1,\"request\":\"batch\",\"kind\":\"tick\",\"members\":\"1,2\"}\n\
             {\"seq\":2,\"request\":\"store\",\"kind\":\"demote\",\"module\":\"s:a\"}\n"
        );
        let det = r.deterministic_jsonl();
        assert!(!det.contains("\"t\""), "{det}");
        assert!(det.contains("\"reason\":\"queue \\\"full\\\"\""));
        // Every line parses as JSON.
        for line in full.lines().chain(det.lines()) {
            serde_json::from_str::<serde_json::Value>(line).expect("valid JSON line");
        }
    }

    #[test]
    fn concurrent_recording_keeps_every_seq_unique() {
        let r = std::sync::Arc::new(FlightRecorder::new(1024));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..100 {
                        r.record(FlightEvent::new(t, "tick").field("i", i as u64));
                    }
                });
            }
        });
        let events = r.events();
        assert_eq!(events.len(), 400);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 400, "sequence numbers are unique and sorted");
    }

    #[test]
    fn clear_drops_events_but_not_numbering() {
        let r = FlightRecorder::new(4);
        r.record(FlightEvent::new(0, "submit"));
        r.clear();
        assert!(r.events().is_empty());
        let seq = r.record(FlightEvent::new(0, "pickup"));
        assert_eq!(seq, 1);
    }
}
