//! Observability substrate for the Prompt Cache stack.
//!
//! The paper's headline claim is a *TTFT breakdown*: attention compute
//! shrinks while KV retrieval (a memcpy) grows linearly. Verifying that
//! requires seeing where time goes inside a serve — tokenize vs. cache
//! fetch vs. prefill of uncached tokens vs. sampling — and observing
//! cache behaviour (hit/miss/eviction) under load. This crate is the
//! measurement substrate every subsystem reports through:
//!
//! * [`Telemetry`] — a cheap, cloneable handle. [`Telemetry::disabled`]
//!   is the default everywhere: every recording call then reduces to one
//!   `Option` check, no allocation, no atomics.
//! * [`Span`] — hierarchical RAII span tracing (`telemetry.span("prefill")`
//!   or [`Span::enter`]) with per-thread nesting depth, thread-safe
//!   collection, and a panic on imbalanced (non-LIFO) span drops.
//! * [`metrics`] — a registry of named counters, gauges, and fixed-bucket
//!   histograms. Recording is lock-free (atomics on pre-resolved
//!   handles); the registry lock is only taken when a handle is first
//!   resolved, and for point-in-time snapshots.
//! * [`export`] — two exporters over snapshots: Prometheus text
//!   exposition format (with `# HELP`/`# TYPE` metadata on every
//!   series), and Chrome trace-event JSON loadable in
//!   `chrome://tracing` / Perfetto.
//! * [`flight`] — a fixed-capacity, lock-free ring of structured
//!   per-request events (the serving "black box"), dumpable as JSONL
//!   with a deterministic variant for seeded chaos replay diffing.
//!
//! # Example
//!
//! ```
//! use pc_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::new();
//! let requests = telemetry.counter("pc_requests_total");
//! {
//!     let _serve = telemetry.span("serve");
//!     let _prefill = telemetry.span("prefill"); // nested under "serve"
//!     requests.inc();
//! }
//! assert_eq!(requests.get(), 1);
//! let spans = telemetry.spans();
//! assert_eq!(spans.len(), 2);
//! assert!(telemetry.prometheus_text().contains("pc_requests_total 1"));
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod flight;
pub mod metrics;
mod span;
mod telemetry;

pub use flight::{FlightEvent, FlightRecorder, FlightValue};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot, LATENCY_BUCKETS,
};
pub use span::{Span, SpanRecord};
pub use telemetry::Telemetry;
