//! Exporters: Prometheus text exposition and Chrome trace-event JSON.

use crate::metrics::RegistrySnapshot;
use crate::span::SpanRecord;
use std::fmt::Write;

/// Renders a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# TYPE` comments, cumulative `_bucket{le="…"}`
/// histogram series, `_sum`/`_count`, one sample per line.
pub fn prometheus_text(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
    }
    for h in &snapshot.histograms {
        let name = &h.name;
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.buckets) {
            cum += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders spans as Chrome trace-event JSON: an object with a
/// `traceEvents` array of complete (`"ph":"X"`) events, timestamps in
/// microseconds relative to the telemetry epoch. Load the file in
/// `chrome://tracing` or <https://ui.perfetto.dev> to see the per-phase
/// flame graph of a serve.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"pc\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{\"depth\":{}}}}}",
            escape_json(s.name),
            s.thread,
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
            s.depth
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn prometheus_golden_string() {
        let t = Telemetry::new();
        t.counter("pc_cache_hits_total").add(3);
        t.gauge("pc_queue_depth").set(2);
        let h = t.histogram("pc_ttft_seconds", &[0.001, 0.01]);
        h.observe(0.0005);
        h.observe(0.0005);
        h.observe(0.5);
        assert_eq!(
            t.prometheus_text(),
            "# TYPE pc_cache_hits_total counter\n\
             pc_cache_hits_total 3\n\
             # TYPE pc_queue_depth gauge\n\
             pc_queue_depth 2\n\
             # TYPE pc_ttft_seconds histogram\n\
             pc_ttft_seconds_bucket{le=\"0.001\"} 2\n\
             pc_ttft_seconds_bucket{le=\"0.01\"} 2\n\
             pc_ttft_seconds_bucket{le=\"+Inf\"} 3\n\
             pc_ttft_seconds_sum 0.501\n\
             pc_ttft_seconds_count 3\n"
        );
    }

    #[test]
    fn prometheus_lines_are_well_formed() {
        let t = Telemetry::new();
        t.counter("a_total").inc();
        t.latency_histogram("lat_seconds").observe(0.01);
        for line in t.prometheus_text().lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "{line}");
                continue;
            }
            // Every sample line is `name[{labels}] value`.
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_fields() {
        let t = Telemetry::new();
        {
            let _outer = t.span("serve \"quoted\"");
            let _inner = t.span("prefill");
        }
        let json = t.chrome_trace_json();
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = value["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e["ph"], "X");
            assert!(e["ts"].as_f64().is_some());
            assert!(e["dur"].as_f64().is_some());
        }
        assert_eq!(events[0]["name"].as_str().unwrap(), "prefill");
        assert_eq!(events[0]["args"]["depth"].as_f64().unwrap(), 1.0);
    }

    #[test]
    fn empty_exports() {
        let t = Telemetry::new();
        assert_eq!(t.prometheus_text(), "");
        assert_eq!(
            t.chrome_trace_json(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }
}
