//! Exporters: Prometheus text exposition and Chrome trace-event JSON.

use crate::metrics::RegistrySnapshot;
use crate::span::SpanRecord;
use std::fmt::Write;

/// The logical thread id the Chrome-trace exporter assigns to batched-
/// scheduler tick spans ([`SCHEDULER_TICK_SPAN`]), so scheduler activity
/// renders on its own lane instead of interleaving with worker spans.
/// Real thread ids start at 1, so 0 is never taken by a worker.
pub const SCHEDULER_TRACE_TID: u64 = 0;

/// Span name the batched scheduler opens once per tick; the Chrome-trace
/// exporter routes spans with this name to [`SCHEDULER_TRACE_TID`].
pub const SCHEDULER_TICK_SPAN: &str = "batch-tick";

/// Help text for a metric name, used by [`prometheus_text`] to emit a
/// `# HELP` line for **every** series. Known `pc_*` series get curated
/// descriptions; anything else gets a generic fallback so the exposition
/// is never missing metadata.
pub fn help_for(name: &str) -> &'static str {
    match name {
        // Server request lifecycle.
        "pc_requests_served_total" => "Requests completed by the engine (including partial responses).",
        "pc_requests_failed_total" => "Requests that ended in an engine error.",
        "pc_requests_shed_total" => "Requests refused or abandoned without serving (admission control, queue shed, shutdown).",
        "pc_requests_cancelled_total" => "Requests cancelled by their caller, in queue or mid-serve.",
        "pc_requests_deadline_exceeded_total" => "Serves interrupted mid-flight by their deadline.",
        "pc_requests_in_flight" => "Requests picked up but not yet completed.",
        "pc_requests_total" => "Total requests observed.",
        "pc_queue_depth" => "Requests queued and not yet picked up.",
        "pc_ttft_seconds" => "Time to first token, measured from serve entry.",
        "pc_service_seconds" => "Wall-clock time a worker (or the batch) spent serving one request.",
        "pc_queue_wait_seconds" => "Time a request spent queued before pickup (or before a shed decision).",
        // SLO tracking.
        "pc_slo_violations_total" => "Deadline-carrying requests that blew their latency budget (overran, or were shed past-deadline).",
        "pc_slo_requests_total" => "Requests that carried a latency budget (deadline) and were SLO-tracked.",
        "pc_slo_budget_burn_ratio" => "Per-request latency-budget burn: (queue + service time) / deadline budget; >1 is a violation.",
        // Degradation.
        "pc_degraded_serves_total" => "Serves that recomputed at least one missing/corrupt cached span (graceful degradation).",
        "pc_degraded_spans_total" => "Cached spans recomputed from tokens instead of served from the store.",
        // Module store.
        "pc_cache_hits_total" => "Module-store lookups served from the store.",
        "pc_cache_misses_total" => "Module-store lookups that found nothing servable.",
        "pc_cache_device_hits_total" => "Lookups served without a copy because the module was already device-resident.",
        "pc_cache_evictions_total" => "Device-tier evictions performed.",
        "pc_cache_corruptions_total" => "Checksum mismatches caught by verification (entry dropped, caller recomputes).",
        "pc_cache_bytes_copied_h2d_total" => "Bytes copied host-to-device on module promotions and streaming reads.",
        "pc_cache_host_bytes" => "Bytes of encoded module state held in the host tier.",
        "pc_cache_device_bytes" => "Bytes of encoded module state resident in the device tier.",
        "pc_cache_modules" => "Modules currently stored in memory.",
        // Tiered persistence (disk tier below host/device).
        "pc_demotions_total" => "Modules demoted host-to-disk by the host capacity bound.",
        "pc_promotions_total" => "Modules promoted disk-to-host (lookup fallthrough or restore).",
        "pc_cache_disk_hits_total" => "Lookups that missed memory and were served from the disk tier.",
        "pc_cache_disk_corruptions_total" => "Disk records dropped on checksum/decode failure (caller re-encodes).",
        "pc_cache_disk_bytes" => "Live bytes held by the disk tier (encoded, after any quantization).",
        "pc_store_tier_bytes" => "Bytes held per store tier; labeled tier=\"host\"|\"device\"|\"disk\".",
        // Per-module analytics (labeled by module id).
        "pc_module_hits_total" => "Store hits attributed to one module.",
        "pc_module_misses_total" => "Store misses attributed to one module.",
        "pc_module_degrades_total" => "Graceful-degradation recomputes attributed to one module.",
        "pc_module_evictions_total" => "Device-tier evictions of one module.",
        "pc_module_relocations_total" => "Store hits served at a non-zero placement shift (deferred-RoPE relocation).",
        "pc_module_kv_bytes_shared_total" => "Module KV bytes served zero-copy (Arc-aliased into session views).",
        "pc_module_kv_bytes_copied_total" => "Module KV bytes memcpy'd into session views (zero_copy off).",
        "pc_module_shared_rows_total" => "KV rows of this module streamed once per prefix group by the batched kernel.",
        "pc_module_last_access_tick" => "Store logical clock at the module's most recent access.",
        // Engine KV accounting.
        "pc_kv_bytes_shared_total" => "Cached KV bytes aliased zero-copy into session views.",
        "pc_kv_bytes_copied_total" => "Cached KV bytes memcpy'd into session views.",
        // Batching.
        "pc_batch_size" => "Sequences currently in the in-flight decode batch.",
        "pc_batch_occupancy" => "Batch occupancy observed at each scheduler step.",
        "pc_batch_steps_total" => "Batched decode steps executed.",
        "pc_tokens_generated_total" => "Tokens generated across all batched sequences.",
        "pc_kv_rows_shared_read_total" => "KV rows streamed once per prefix group by the two-phase kernel.",
        "pc_kv_rows_private_read_total" => "KV rows streamed for a single sequence (tails, unshared caches).",
        "pc_batch_share_ratio" => "Shared fraction of the last tick's KV row reads, in percent.",
        // Model + arena.
        "pc_model_attention_seconds" => "Sampled attention time per forward pass.",
        "pc_model_mlp_seconds" => "Sampled MLP time per forward pass.",
        "pc_arena_bytes" => "Bytes held by the buffered-concatenation arena.",
        "pc_arena_rows" => "Rows held by the buffered-concatenation arena.",
        // Sharded fleet: router-level request lifecycle.
        "pc_fleet_requests_served_total" => "Requests completed by any fleet worker (including partial responses).",
        "pc_fleet_requests_failed_total" => "Fleet requests that ended in an engine or worker error.",
        "pc_fleet_requests_shed_total" => "Fleet requests dropped before service (dead fleet, cancelled or expired in queue).",
        "pc_fleet_requests_cancelled_total" => "Fleet serves that ended cancelled by their caller.",
        "pc_fleet_deadline_exceeded_total" => "Fleet serves interrupted mid-flight by their deadline.",
        "pc_fleet_rerouted_total" => "Jobs handed off to a surviving worker after their worker died.",
        "pc_fleet_routed_affinity_total" => "Submissions routed to a live owner of their schema (affinity placement).",
        "pc_fleet_routed_spilled_total" => "Submissions routed off-owner (spill bound hit, owners dead, or affinity off).",
        "pc_fleet_queue_wait_seconds" => "Time a fleet request spent queued before a worker picked it up.",
        "pc_fleet_service_seconds" => "Wall-clock time a fleet worker spent serving one request.",
        "pc_fleet_uptime_seconds" => "Seconds since the fleet router started.",
        // Sharded fleet: per-worker series (labeled worker="N").
        "pc_worker_alive" => "1 while the worker is alive, 0 once it has been killed.",
        "pc_worker_queue_depth" => "Jobs routed to this worker and not yet completed.",
        "pc_worker_served_total" => "Serves this worker completed (including errors).",
        "pc_worker_rerouted_total" => "Jobs this worker handed off to survivors when it died.",
        "pc_worker_store_hits_total" => "Module-store hits inside this worker's engine.",
        "pc_worker_store_misses_total" => "Module-store misses inside this worker's engine (re-encode on demand).",
        // Process-level.
        "pc_build_info" => "Build metadata as labels; value is always 1.",
        "pc_uptime_seconds" => "Seconds since the server started.",
        _ => "Metric recorded by the pc-telemetry registry.",
    }
}

/// Renders a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` + `# TYPE` comments for every series,
/// cumulative `_bucket{le="…"}` histogram series, `_sum`/`_count`, one
/// sample per line.
pub fn prometheus_text(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let help = help_for(name);
        let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let help = help_for(name);
        let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}");
    }
    for h in &snapshot.histograms {
        let name = &h.name;
        let help = help_for(name);
        let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} histogram");
        let mut cum = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.buckets) {
            cum += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders spans as Chrome trace-event JSON: an object with a
/// `traceEvents` array of complete (`"ph":"X"`) events, timestamps in
/// microseconds relative to the telemetry epoch. Load the file in
/// `chrome://tracing` or <https://ui.perfetto.dev> to see the per-phase
/// flame graph of a serve.
///
/// Spans named [`SCHEDULER_TICK_SPAN`] are routed to the dedicated
/// [`SCHEDULER_TRACE_TID`] lane (with a `thread_name` metadata event), so
/// the batched scheduler's tick cadence reads as its own track instead of
/// interleaving with worker spans.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    if spans.iter().any(|s| s.name == SCHEDULER_TICK_SPAN) {
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{SCHEDULER_TRACE_TID},\
             \"args\":{{\"name\":\"batch scheduler\"}}}}"
        );
        first = false;
    }
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        let tid = if s.name == SCHEDULER_TICK_SPAN {
            SCHEDULER_TRACE_TID
        } else {
            s.thread
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"pc\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{\"depth\":{}}}}}",
            escape_json(s.name),
            tid,
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
            s.depth
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::{SCHEDULER_TICK_SPAN, SCHEDULER_TRACE_TID};
    use crate::Telemetry;

    #[test]
    fn prometheus_golden_string() {
        let t = Telemetry::new();
        t.counter("pc_cache_hits_total").add(3);
        t.gauge("pc_queue_depth").set(2);
        let h = t.histogram("pc_ttft_seconds", &[0.001, 0.01]);
        h.observe(0.0005);
        h.observe(0.0005);
        h.observe(0.5);
        assert_eq!(
            t.prometheus_text(),
            "# HELP pc_cache_hits_total Module-store lookups served from the store.\n\
             # TYPE pc_cache_hits_total counter\n\
             pc_cache_hits_total 3\n\
             # HELP pc_queue_depth Requests queued and not yet picked up.\n\
             # TYPE pc_queue_depth gauge\n\
             pc_queue_depth 2\n\
             # HELP pc_ttft_seconds Time to first token, measured from serve entry.\n\
             # TYPE pc_ttft_seconds histogram\n\
             pc_ttft_seconds_bucket{le=\"0.001\"} 2\n\
             pc_ttft_seconds_bucket{le=\"0.01\"} 2\n\
             pc_ttft_seconds_bucket{le=\"+Inf\"} 3\n\
             pc_ttft_seconds_sum 0.501\n\
             pc_ttft_seconds_count 3\n"
        );
    }

    #[test]
    fn prometheus_lines_are_well_formed() {
        let t = Telemetry::new();
        t.counter("a_total").inc();
        t.latency_histogram("lat_seconds").observe(0.01);
        for line in t.prometheus_text().lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# TYPE ") || line.starts_with("# HELP "),
                    "{line}"
                );
                continue;
            }
            // Every sample line is `name[{labels}] value`.
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
        }
    }

    #[test]
    fn every_series_carries_help_metadata() {
        let t = Telemetry::new();
        t.counter("pc_requests_served_total").inc();
        t.counter("made_up_metric_total").inc(); // unknown → fallback help
        t.gauge("pc_queue_depth").set(1);
        t.latency_histogram("pc_ttft_seconds").observe(0.01);
        let text = t.prometheus_text();
        for series in [
            "pc_requests_served_total",
            "made_up_metric_total",
            "pc_queue_depth",
            "pc_ttft_seconds",
        ] {
            assert!(
                text.contains(&format!("# HELP {series} ")),
                "missing HELP for {series}:\n{text}"
            );
            // HELP precedes TYPE for the same series (Prometheus custom).
            let help_at = text.find(&format!("# HELP {series} ")).unwrap();
            let type_at = text.find(&format!("# TYPE {series} ")).unwrap();
            assert!(help_at < type_at, "{series}: HELP must precede TYPE");
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_fields() {
        let t = Telemetry::new();
        {
            let _outer = t.span("serve \"quoted\"");
            let _inner = t.span("prefill");
        }
        let json = t.chrome_trace_json();
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = value["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e["ph"], "X");
            assert!(e["ts"].as_f64().is_some());
            assert!(e["dur"].as_f64().is_some());
        }
        assert_eq!(events[0]["name"].as_str().unwrap(), "prefill");
        assert_eq!(events[0]["args"]["depth"].as_f64().unwrap(), 1.0);
    }

    #[test]
    fn scheduler_ticks_get_their_own_trace_lane() {
        let t = Telemetry::new();
        {
            let _worker = t.span("serve");
        }
        {
            let _tick = t.span(SCHEDULER_TICK_SPAN);
        }
        let json = t.chrome_trace_json();
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = value["traceEvents"].as_array().unwrap();
        // Metadata event names the scheduler lane.
        let meta = &events[0];
        assert_eq!(meta["ph"], "M");
        assert_eq!(meta["tid"].as_u64().unwrap(), SCHEDULER_TRACE_TID);
        assert_eq!(meta["args"]["name"], "batch scheduler");
        let tick = events
            .iter()
            .find(|e| e["name"] == SCHEDULER_TICK_SPAN)
            .expect("tick span present");
        assert_eq!(tick["tid"].as_u64().unwrap(), SCHEDULER_TRACE_TID);
        let worker = events.iter().find(|e| e["name"] == "serve").unwrap();
        assert_ne!(worker["tid"].as_u64().unwrap(), SCHEDULER_TRACE_TID);
    }

    #[test]
    fn empty_exports() {
        let t = Telemetry::new();
        assert_eq!(t.prometheus_text(), "");
        assert_eq!(
            t.chrome_trace_json(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }
}
