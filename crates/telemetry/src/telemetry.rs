//! The [`Telemetry`] handle — the one type the rest of the stack holds.

use crate::metrics::{Counter, Gauge, Histogram, Registry, RegistrySnapshot, LATENCY_BUCKETS};
use crate::span::{Span, SpanRecord};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Debug)]
pub(crate) struct Inner {
    /// All span offsets are relative to this instant.
    pub(crate) epoch: Instant,
    pub(crate) spans: Mutex<Vec<SpanRecord>>,
    pub(crate) registry: Registry,
    sample_clock: AtomicU64,
}

/// A cheap, cloneable telemetry handle: span tracer + metrics registry.
///
/// The default ([`Telemetry::disabled`]) mode is the global off switch:
/// every recording call reduces to one `Option` discriminant check —
/// no locks, no atomics, no allocation — so instrumented code pays
/// nothing in production-off configurations. Clones share the same
/// collection, so one handle threaded through engine, cache, model, and
/// server aggregates everything in one place.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// Creates an **enabled** telemetry collector.
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
                registry: Registry::new(),
                sample_clock: AtomicU64::new(0),
            })),
        }
    }

    /// The disabled handle (also [`Default`]): all operations are no-ops.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a named span; it measures until dropped. No-op (and
    /// allocation-free) when disabled.
    pub fn span(&self, name: &'static str) -> Span {
        match &self.inner {
            Some(inner) => Span::open(Arc::clone(inner), name),
            None => Span::noop(),
        }
    }

    /// Resolves a counter handle (a no-op handle when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name),
            None => Counter::default(),
        }
    }

    /// Resolves a gauge handle (a no-op handle when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name),
            None => Gauge::default(),
        }
    }

    /// Resolves a histogram handle with explicit bucket bounds.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name, bounds),
            None => Histogram::default(),
        }
    }

    /// Resolves a latency histogram using [`LATENCY_BUCKETS`] (seconds).
    pub fn latency_histogram(&self, name: &str) -> Histogram {
        self.histogram(name, &LATENCY_BUCKETS)
    }

    /// Sampling guard for instrumentation too hot to time every call
    /// (e.g. per-layer model timing): returns `true` on every `every`-th
    /// invocation across the process, and never when disabled.
    pub fn should_sample(&self, every: u64) -> bool {
        match &self.inner {
            Some(inner) => {
                inner.sample_clock.fetch_add(1, Ordering::Relaxed) % every.max(1) == 0
            }
            None => false,
        }
    }

    /// Snapshot of every completed span, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner
                .spans
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            None => Vec::new(),
        }
    }

    /// Drains (removes and returns) every completed span.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => std::mem::take(
                &mut *inner.spans.lock().unwrap_or_else(|e| e.into_inner()),
            ),
            None => Vec::new(),
        }
    }

    /// Point-in-time snapshot of the metrics registry.
    pub fn snapshot(&self) -> RegistrySnapshot {
        match &self.inner {
            Some(inner) => inner.registry.snapshot(),
            None => RegistrySnapshot::default(),
        }
    }

    /// The current metrics in Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        crate::export::prometheus_text(&self.snapshot())
    }

    /// The completed spans as Chrome trace-event JSON (see
    /// [`crate::export::chrome_trace_json`]).
    pub fn chrome_trace_json(&self) -> String {
        crate::export::chrome_trace_json(&self.spans())
    }

    /// Writes the Chrome trace JSON to `path` (typically under
    /// `results/`), creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.chrome_trace_json())
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Telemetry")
                .field("enabled", &true)
                .field(
                    "spans",
                    &inner.spans.lock().unwrap_or_else(|e| e.into_inner()).len(),
                )
                .finish(),
            None => f
                .debug_struct("Telemetry")
                .field("enabled", &false)
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_default_and_inert() {
        let t = Telemetry::default();
        assert!(!t.is_enabled());
        t.counter("c").inc();
        assert!(t.span("s").is_noop());
        assert!(!t.should_sample(1));
        assert!(t.spans().is_empty());
        assert_eq!(t.snapshot(), RegistrySnapshot::default());
        assert_eq!(t.prometheus_text(), "");
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::new();
        let u = t.clone();
        u.counter("c").add(3);
        {
            let _s = u.span("shared");
        }
        assert_eq!(t.counter("c").get(), 3);
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn should_sample_fires_every_nth() {
        let t = Telemetry::new();
        let fired: Vec<bool> = (0..6).map(|_| t.should_sample(3)).collect();
        assert_eq!(fired, vec![true, false, false, true, false, false]);
    }

    #[test]
    fn take_spans_drains() {
        let t = Telemetry::new();
        {
            let _s = t.span("once");
        }
        assert_eq!(t.take_spans().len(), 1);
        assert!(t.spans().is_empty());
    }
}
