//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Handle resolution (`registry.counter("name")`) takes the registry
//! lock once; the returned handle records through atomics only, so the
//! hot path never contends on a lock ("lock-cheap recording"). Snapshots
//! ([`Registry::snapshot`]) are point-in-time copies sorted by name, the
//! input to both exporters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default latency histogram bounds in **seconds**: log-spaced from 1 µs
/// to 10 s, dense enough that nearest-rank percentile estimates stay
/// within one bucket step of the exact value.
pub const LATENCY_BUCKETS: [f64; 22] = [
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
    2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// A monotonically increasing counter. A disabled handle (from a
/// disabled [`crate::Telemetry`]) makes every operation a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge: a value that can go up and down (queue depth, resident
/// bytes).
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicI64>>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Finite upper bounds, ascending. Bucket `i` counts observations
    /// `v <= bounds[i]`; one extra overflow bucket catches the rest.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// `f64` bit patterns updated by CAS — exact sums without a lock.
    sum_bits: AtomicU64,
    max_bits: AtomicU64,
}

fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl HistogramCore {
    fn new(bounds: &[f64]) -> Self {
        let bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let mut buckets = Vec::with_capacity(bounds.len() + 1);
        buckets.resize_with(bounds.len() + 1, AtomicU64::default);
        HistogramCore {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |s| s + v);
        atomic_f64_update(&self.max_bits, |m| m.max(v));
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_owned(),
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        if let Some(h) = &self.0 {
            h.observe(v);
        }
    }

    /// Number of observations (0 for a disabled handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |h| f64::from_bits(h.sum_bits.load(Ordering::Relaxed)))
    }

    /// Exact arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() / n as f64)
    }

    /// Nearest-rank percentile estimate (`q` in `0.0..=100.0`): the upper
    /// bound of the bucket holding the rank (the true value is ≤ the
    /// estimate, within one bucket step). Observations beyond the last
    /// finite bound report the exact maximum seen. `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        let h = self.0.as_ref()?;
        h.snapshot("").percentile(q)
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Finite bucket upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; one overflow bucket at the
    /// end, so `buckets.len() == bounds.len() + 1`.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Exact sum of observations.
    pub sum: f64,
    /// Largest observation seen (`-inf` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Nearest-rank percentile estimate — see [`Histogram::percentile`].
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }
}

/// Point-in-time copy of a whole registry, sorted by metric name —
/// deterministic input for the exporters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// `(name, value)` counter pairs.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauge pairs.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots.
    pub histograms: Vec<HistogramSnapshot>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: HashMap<String, Arc<AtomicU64>>,
    gauges: HashMap<String, Arc<AtomicI64>>,
    histograms: HashMap<String, Arc<HistogramCore>>,
}

/// A named-metric registry. Usually reached through
/// [`crate::Telemetry`], which adds the zero-overhead disabled mode.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Resolves (registering on first use) a counter handle.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.lock();
        let cell = inner
            .counters
            .entry(name.to_owned())
            .or_default()
            .clone();
        Counter(Some(cell))
    }

    /// Resolves (registering on first use) a gauge handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.lock();
        let cell = inner.gauges.entry(name.to_owned()).or_default().clone();
        Gauge(Some(cell))
    }

    /// Resolves (registering on first use) a histogram with the given
    /// finite bucket bounds. A later resolution of the same name returns
    /// the existing histogram; its original bounds win.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` are not strictly ascending (first
    /// registration only).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut inner = self.lock();
        let core = inner
            .histograms
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(HistogramCore::new(bounds)))
            .clone();
        Histogram(Some(core))
    }

    /// Point-in-time snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.lock();
        let mut counters: Vec<(String, u64)> = inner
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, i64)> = inner
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        gauges.sort();
        let mut histograms: Vec<HistogramSnapshot> = inner
            .histograms
            .iter()
            .map(|(k, v)| v.snapshot(k))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let r = Registry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same underlying cell.
        assert_eq!(r.counter("c").get(), 5);
        let g = r.gauge("g");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn disabled_handles_are_noops() {
        let c = Counter::default();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = Histogram::default();
        h.observe(1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), None);
    }

    #[test]
    fn histogram_bucket_boundaries_are_le() {
        let r = Registry::new();
        let h = r.histogram("h", &[1.0, 2.0, 4.0]);
        // Exactly on a bound lands in that bucket (Prometheus `le`).
        for v in [0.5, 1.0, 1.5, 2.0, 4.0, 9.0] {
            h.observe(v);
        }
        let snap = &r.snapshot().histograms[0];
        assert_eq!(snap.buckets, vec![2, 2, 1, 1]);
        assert_eq!(snap.count, 6);
        assert!((snap.sum - 18.0).abs() < 1e-12);
        assert_eq!(snap.max, 9.0);
    }

    #[test]
    fn histogram_percentiles_are_monotone_bucket_bounds() {
        let r = Registry::new();
        let h = r.histogram("h", &[1.0, 2.0, 4.0]);
        for v in [0.5, 0.6, 0.7, 3.0] {
            h.observe(v);
        }
        assert_eq!(h.percentile(50.0), Some(1.0));
        assert_eq!(h.percentile(75.0), Some(1.0));
        assert_eq!(h.percentile(100.0), Some(4.0));
        assert!(h.percentile(99.0) >= h.percentile(50.0));
        // Overflow observations report the exact max.
        h.observe(100.0);
        assert_eq!(h.percentile(100.0), Some(100.0));
        assert_eq!(h.mean(), Some((0.5 + 0.6 + 0.7 + 3.0 + 100.0) / 5.0));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        Registry::new().histogram("bad", &[2.0, 1.0]);
    }

    #[test]
    fn latency_buckets_are_valid() {
        assert!(LATENCY_BUCKETS.windows(2).all(|w| w[0] < w[1]));
        let r = Registry::new();
        let h = r.histogram("lat", &LATENCY_BUCKETS);
        h.observe(3e-4);
        assert_eq!(h.percentile(50.0), Some(5e-4));
    }

    #[test]
    fn concurrent_recording_from_4_threads_is_exact() {
        let r = Registry::new();
        let c = r.counter("c");
        let h = r.histogram("h", &[0.5, 1.5]);
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(if (i + t) % 2 == 0 { 0.25 } else { 1.0 });
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        let snap = &r.snapshot().histograms[0];
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.buckets, vec![2000, 2000, 0]);
        assert!((snap.sum - (2000.0 * 0.25 + 2000.0 * 1.0)).abs() < 1e-9);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        r.gauge("mid").set(1);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].0, "alpha");
        assert_eq!(snap.counters[1].0, "zeta");
    }
}
