//! Hierarchical RAII span tracing.
//!
//! A [`Span`] measures one named region of code. Spans nest per thread:
//! the depth of each span is the number of spans already open on the
//! entering thread, and drops must be LIFO — an out-of-order drop is a
//! bug in the instrumentation and panics loudly rather than producing a
//! silently corrupt trace. Completed spans are appended to the owning
//! [`crate::Telemetry`]'s thread-safe collection; a disabled telemetry
//! hands out no-op spans that never touch a lock or allocate.

use crate::telemetry::Inner;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One completed span, in nanoseconds relative to the telemetry epoch
/// (the instant the [`crate::Telemetry`] was created).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Region name (`"prefill"`, `"cache-fetch"`, …).
    pub name: &'static str,
    /// Small sequential id of the recording thread (stable within a
    /// process, first-use ordered).
    pub thread: u64,
    /// Start offset from the telemetry epoch.
    pub start_ns: u64,
    /// Span duration.
    pub dur_ns: u64,
    /// Nesting depth on the recording thread (0 = top level).
    pub depth: u32,
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    /// Names of the spans currently open on this thread, outermost first.
    static OPEN_SPANS: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

struct ActiveSpan {
    inner: Arc<Inner>,
    name: &'static str,
    start_ns: u64,
    started: Instant,
    depth: u32,
}

/// An RAII guard for one traced region: the span runs from
/// [`Span::enter`] (or [`crate::Telemetry::span`]) until drop.
#[must_use = "a span measures until dropped; binding it to `_` drops immediately"]
#[derive(Default)]
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Span {
    /// Opens a span on `telemetry` — identical to `telemetry.span(name)`.
    pub fn enter(telemetry: &crate::Telemetry, name: &'static str) -> Span {
        telemetry.span(name)
    }

    pub(crate) fn noop() -> Span {
        Span { active: None }
    }

    pub(crate) fn open(inner: Arc<Inner>, name: &'static str) -> Span {
        let depth = OPEN_SPANS.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            (s.len() - 1) as u32
        });
        Span {
            active: Some(ActiveSpan {
                start_ns: inner.epoch.elapsed().as_nanos() as u64,
                inner,
                name,
                started: Instant::now(),
                depth,
            }),
        }
    }

    /// Whether this span is a disabled-telemetry no-op.
    pub fn is_noop(&self) -> bool {
        self.active.is_none()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_ns = active.started.elapsed().as_nanos() as u64;
        let popped = OPEN_SPANS.with(|s| s.borrow_mut().pop());
        if popped != Some(active.name) {
            // Don't turn an unwinding panic into an abort.
            if !std::thread::panicking() {
                panic!(
                    "span imbalance: dropped `{}` but innermost open span is {:?} — \
                     spans must close LIFO",
                    active.name, popped
                );
            }
            return;
        }
        let record = SpanRecord {
            name: active.name,
            thread: THREAD_ID.with(|t| *t),
            start_ns: active.start_ns,
            dur_ns,
            depth: active.depth,
        };
        active
            .inner
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record);
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.active {
            Some(a) => write!(f, "Span({:?} depth={})", a.name, a.depth),
            None => write!(f, "Span(noop)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn spans_nest_and_record_depth() {
        let t = Telemetry::new();
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
            }
            let _sibling = t.span("sibling");
        }
        let spans = t.spans();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("outer").depth, 0);
        assert_eq!(by_name("inner").depth, 1);
        assert_eq!(by_name("sibling").depth, 1);
        // Children close before parents, so "inner" is recorded first.
        assert_eq!(spans.last().unwrap().name, "outer");
        // Containment: child runs within the parent's window.
        let outer = by_name("outer");
        let inner = by_name("inner");
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    #[should_panic(expected = "span imbalance")]
    fn out_of_order_drop_panics() {
        let t = Telemetry::new();
        let a = t.span("a");
        let _b = t.span("b");
        drop(a); // `b` is still open — non-LIFO
    }

    #[test]
    fn disabled_spans_are_noops_and_track_no_nesting() {
        let t = Telemetry::disabled();
        let a = t.span("a");
        assert!(a.is_noop());
        let b = t.span("b");
        drop(a); // no imbalance panic: disabled spans are not tracked
        drop(b);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn concurrent_span_recording() {
        let t = Telemetry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        let _outer = t.span("outer");
                        let _inner = t.span("inner");
                    }
                });
            }
        });
        let spans = t.spans();
        assert_eq!(spans.len(), 400);
        let threads: std::collections::HashSet<u64> =
            spans.iter().map(|s| s.thread).collect();
        assert_eq!(threads.len(), 4);
    }
}
