//! Model weights: layout and deterministic initialisation.
//!
//! Weights are initialised from a seed (see `pc_tensor::init`) — the
//! reproduction never loads pretrained checkpoints, because the Prompt
//! Cache mechanism (state reuse ≡ recomputation) is weight-agnostic and is
//! verified exactly on seeded random weights.

use crate::{Family, ModelConfig};
use pc_tensor::init::Initializer;
use pc_tensor::Tensor;

/// Weights of one transformer layer. All projection matrices are stored
/// `[out, in]` row-major and applied as `y = x · Wᵀ`.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Query projection `[hidden, hidden]`.
    pub wq: Tensor,
    /// Key projection `[kv_dim, hidden]`.
    pub wk: Tensor,
    /// Value projection `[kv_dim, hidden]`.
    pub wv: Tensor,
    /// Output projection `[hidden, hidden]`.
    pub wo: Tensor,
    /// First norm weight `[hidden]`.
    pub norm1_w: Tensor,
    /// First norm bias `[hidden]` (unused by RMSNorm families).
    pub norm1_b: Tensor,
    /// Second norm weight `[hidden]` (absent in parallel-block families at
    /// runtime but always allocated for simplicity).
    pub norm2_w: Tensor,
    /// Second norm bias `[hidden]`.
    pub norm2_b: Tensor,
    /// MLP up projection `[intermediate, hidden]`.
    pub w_up: Tensor,
    /// MLP gate projection `[intermediate, hidden]` (Llama gated MLP only).
    pub w_gate: Tensor,
    /// MLP down projection `[hidden, intermediate]`.
    pub w_down: Tensor,
}

/// Full model weights.
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// Token embedding table `[vocab, hidden]`; also used (tied) as the
    /// output head: `logits = x · Eᵀ`.
    pub embedding: Tensor,
    /// Learned position embedding `[max_position, hidden]` — only allocated
    /// for [`Family::Gpt2`].
    pub pos_embedding: Option<Tensor>,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
    /// Final norm weight `[hidden]`.
    pub final_norm_w: Tensor,
    /// Final norm bias `[hidden]`.
    pub final_norm_b: Tensor,
}

impl ModelWeights {
    /// Initialises weights for `cfg` from `seed`, deterministically.
    pub fn init(cfg: &ModelConfig, seed: u64) -> Self {
        let mut init = Initializer::new(seed);
        let d = cfg.hidden_size;
        let kv = cfg.kv_dim();
        let ff = cfg.intermediate_size;
        let std = 0.08; // keeps activations sane through tiny-depth stacks

        let layers = (0..cfg.num_layers)
            .map(|_| LayerWeights {
                wq: init.normal(&[d, d], std),
                wk: init.normal(&[kv, d], std),
                wv: init.normal(&[kv, d], std),
                wo: init.normal(&[d, d], std),
                norm1_w: Tensor::full(&[d], 1.0),
                norm1_b: Tensor::zeros(&[d]),
                norm2_w: Tensor::full(&[d], 1.0),
                norm2_b: Tensor::zeros(&[d]),
                w_up: init.normal(&[ff, d], std),
                w_gate: init.normal(&[ff, d], std),
                w_down: init.normal(&[d, ff], std),
            })
            .collect();

        ModelWeights {
            embedding: init.normal(&[cfg.vocab_size, d], 0.04),
            pos_embedding: matches!(cfg.family, Family::Gpt2)
                .then(|| init.normal(&[cfg.max_position, d], 0.02)),
            layers,
            final_norm_w: Tensor::full(&[d], 1.0),
            final_norm_b: Tensor::zeros(&[d]),
        }
    }

    /// Total parameter count.
    pub fn num_parameters(&self) -> usize {
        let layer_params: usize = self
            .layers
            .iter()
            .map(|l| {
                l.wq.len()
                    + l.wk.len()
                    + l.wv.len()
                    + l.wo.len()
                    + l.norm1_w.len()
                    + l.norm1_b.len()
                    + l.norm2_w.len()
                    + l.norm2_b.len()
                    + l.w_up.len()
                    + l.w_gate.len()
                    + l.w_down.len()
            })
            .sum();
        self.embedding.len()
            + self.pos_embedding.as_ref().map_or(0, Tensor::len)
            + layer_params
            + self.final_norm_w.len()
            + self.final_norm_b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_deterministic() {
        let cfg = ModelConfig::llama_tiny(64);
        let a = ModelWeights::init(&cfg, 9);
        let b = ModelWeights::init(&cfg, 9);
        assert_eq!(a.embedding.data(), b.embedding.data());
        assert_eq!(a.layers[1].w_down.data(), b.layers[1].w_down.data());
    }

    #[test]
    fn seeds_change_weights() {
        let cfg = ModelConfig::llama_tiny(64);
        let a = ModelWeights::init(&cfg, 1);
        let b = ModelWeights::init(&cfg, 2);
        assert_ne!(a.embedding.data(), b.embedding.data());
    }

    #[test]
    fn gpt2_gets_position_table() {
        let cfg = ModelConfig::gpt2_tiny(64);
        let w = ModelWeights::init(&cfg, 0);
        let pe = w.pos_embedding.expect("gpt2 has learned positions");
        assert_eq!(pe.dims(), &[cfg.max_position, cfg.hidden_size]);
        let llama = ModelWeights::init(&ModelConfig::llama_tiny(64), 0);
        assert!(llama.pos_embedding.is_none());
    }

    #[test]
    fn mqa_shrinks_kv_projections() {
        let cfg = ModelConfig::falcon_tiny(64);
        let w = ModelWeights::init(&cfg, 0);
        assert_eq!(w.layers[0].wk.dims(), &[cfg.kv_dim(), cfg.hidden_size]);
        assert!(cfg.kv_dim() < cfg.hidden_size);
    }

    #[test]
    fn parameter_count_is_positive_and_scales() {
        let tiny = ModelWeights::init(&ModelConfig::llama_tiny(64), 0);
        let small = ModelWeights::init(&ModelConfig::llama_small(64), 0);
        assert!(small.num_parameters() > tiny.num_parameters());
    }
}
