//! Analytic FLOP accounting.
//!
//! The paper's §2.2 and §5.4 reason about prefill cost with the per-layer
//! formula `6nd² + 4n²d` (projection + attention FLOPs for an `n`-token
//! sequence at hidden size `d`) and decode cost `6d² + 4nd`. These helpers
//! implement that exact model; `pc-simulator` combines them with device
//! specs to regenerate the paper-scale latency figures, and the measured
//! benches sanity-check the quadratic/linear split against wall clock.

use crate::ModelConfig;

/// FLOPs for prefilling `n` tokens through one layer: `6nd² + 4n²d`.
pub fn layer_prefill_flops(n: usize, d: usize) -> u64 {
    let (n, d) = (n as u64, d as u64);
    6 * n * d * d + 4 * n * n * d
}

/// FLOPs for decoding one token against an `n`-token cache in one layer:
/// `6d² + 4nd`.
pub fn layer_decode_flops(n: usize, d: usize) -> u64 {
    let (n, d) = (n as u64, d as u64);
    6 * d * d + 4 * n * d
}

/// Whole-model prefill FLOPs for `n` tokens.
pub fn model_prefill_flops(cfg: &ModelConfig, n: usize) -> u64 {
    cfg.num_layers as u64 * layer_prefill_flops(n, cfg.hidden_size)
}

/// Whole-model decode FLOPs for one token against an `n`-token cache.
pub fn model_decode_flops(cfg: &ModelConfig, n: usize) -> u64 {
    cfg.num_layers as u64 * layer_decode_flops(n, cfg.hidden_size)
}

/// Prefill FLOPs when the first `cached` of `n` tokens come from Prompt
/// Cache: only the `n − cached` uncached tokens are computed, but their
/// attention still spans all `n` tokens. (The memcpy cost of the cached
/// states is a bandwidth term, modelled in `pc-simulator`.)
pub fn cached_prefill_flops(cfg: &ModelConfig, n: usize, cached: usize) -> u64 {
    let new = n.saturating_sub(cached);
    let d = cfg.hidden_size as u64;
    let (n64, new64) = (n as u64, new as u64);
    // Projections for new tokens only; attention of new tokens over the
    // full n-token context.
    cfg.num_layers as u64 * (6 * new64 * d * d + 4 * new64 * n64 * d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_grows_quadratically() {
        let d = 4096;
        let f1 = layer_prefill_flops(1000, d);
        let f2 = layer_prefill_flops(2000, d);
        let f4 = layer_prefill_flops(4000, d);
        // Ratios exceed linear growth and approach quadratic as the n²
        // term dominates.
        assert!(f2 > 2 * f1);
        assert!(f4 > 2 * f2);
    }

    #[test]
    fn decode_grows_linearly() {
        let d = 4096;
        let f1 = layer_decode_flops(1000, d);
        let f2 = layer_decode_flops(2000, d);
        // The 4nd term dominates; doubling n must not quite double cost
        // (the 6d² constant is shared).
        assert!(f2 < 2 * f1);
        assert!(f2 > f1);
    }

    #[test]
    fn fully_cached_prefill_is_free() {
        let cfg = ModelConfig::llama_tiny(64);
        assert_eq!(cached_prefill_flops(&cfg, 500, 500), 0);
    }

    #[test]
    fn uncached_prefill_matches_baseline() {
        let cfg = ModelConfig::llama_tiny(64);
        assert_eq!(
            cached_prefill_flops(&cfg, 500, 0),
            model_prefill_flops(&cfg, 500)
        );
    }

    #[test]
    fn caching_monotonically_reduces_flops() {
        let cfg = ModelConfig::llama_tiny(64);
        let mut prev = u64::MAX;
        for cached in [0, 100, 250, 400, 500] {
            let f = cached_prefill_flops(&cfg, 500, cached);
            assert!(f < prev);
            prev = f;
        }
    }

    #[test]
    fn paper_scale_example() {
        // Llama-7B-like: d = 4096, 32 layers, 3K tokens — §5.4 discusses
        // hundreds of ms on GPUs, i.e. tens of TFLOPs.
        let cfg = ModelConfig {
            hidden_size: 4096,
            num_layers: 32,
            ..ModelConfig::llama_tiny(32_000)
        };
        let f = model_prefill_flops(&cfg, 3000);
        assert!(f > 10_u64.pow(13) && f < 10_u64.pow(15), "{f}");
    }
}
