//! Multi-head attention over a KV cache with explicit position IDs.
//!
//! The kernel below is what both code paths in the paper share: baseline
//! prefill, cached inference, and decoding all funnel through
//! [`attention_chunk`]. Causality is defined by **cache order** (a query may
//! attend to every token cached before it plus the chunk prefix up to
//! itself), while positional information comes exclusively from the
//! **position IDs** riding on the cache — exactly the separation that lets
//! Prompt Cache serve discontinuous, out-of-order position layouts.

use crate::pos::{AlibiTable, RopeTable};
use crate::view::PrefixGroup;
use crate::ModelConfig;
use pc_tensor::ops::{axpy_seq, dot_rotated, dot_seq};
use pc_tensor::par::{parallel_output_chunks, run_tasks};

/// A physical KV segment as seen by the kernels: `(keys, values, shift)`.
/// `shift` is the deferred-RoPE placement shift for the segment's key rows
/// — `0` means the keys are already rotated for their placed positions
/// (the legacy path), non-zero means every key row must be rotated by
/// `R(shift)` on the fly during the score pass. Value rows are
/// position-free and are never touched by the shift.
pub type KvSegmentSlices<'a> = (&'a [f32], &'a [f32], isize);

/// Resolves a segment's rotation row once: `None` for shift 0 (use the
/// plain [`dot_seq`] path — bit-identical to the legacy kernel), else the
/// `(cos, sin, sign)` row feeding [`dot_rotated`]. With no RoPE table
/// (ALiBi / learned families) the key rows are position-free, so a shifted
/// placement needs no rotation — the position remap carried by the view's
/// flat position list is the whole relocation.
#[inline]
fn segment_rotation(rope: Option<&RopeTable>, shift: isize) -> Option<(&[f32], &[f32], f32)> {
    match (rope, shift) {
        (_, 0) | (None, _) => None,
        (Some(rope), shift) => Some(rope.shift_row(shift)),
    }
}

/// One score: `q · R(shift)k`, dispatching between the legacy sequential
/// dot and the fused rotate-on-read dot.
#[inline]
fn score_dot(q_head: &[f32], k_head: &[f32], rot: Option<(&[f32], &[f32], f32)>) -> f32 {
    match rot {
        None => dot_seq(q_head, k_head),
        Some((cos, sin, sign)) => dot_rotated(q_head, k_head, cos, sin, sign),
    }
}

/// Computes attention outputs for a chunk of `n` new tokens over a
/// contiguous KV cache.
///
/// * `q` — rotated/raw query rows, `[n × hidden]`.
/// * `q_positions` — position id of each chunk token (ALiBi bias lookup).
/// * `keys`/`values` — the layer's full cache including the chunk's own
///   rows, `[total × kv_dim]`.
/// * `key_positions` — position id of every cached token, length `total`.
/// * `base` — number of tokens that were already cached before this chunk;
///   chunk token `i` attends to cache rows `0..base + i + 1`.
/// * `out` — output rows, `[n × hidden]`, overwritten.
///
/// Grouped-query attention falls out of `cfg.kv_group_size()`: query head
/// `h` reads kv head `h / group_size`.
///
/// This is the single-segment special case of
/// [`attention_chunk_segments`]; both entry points execute the exact same
/// per-element float operations in the exact same order, so the results
/// are bit-identical regardless of how the cache is physically split.
#[allow(clippy::too_many_arguments)]
pub fn attention_chunk(
    cfg: &ModelConfig,
    q: &[f32],
    q_positions: &[usize],
    keys: &[f32],
    values: &[f32],
    key_positions: &[usize],
    base: usize,
    alibi: Option<&AlibiTable>,
    out: &mut [f32],
) {
    attention_chunk_segments(
        cfg,
        q,
        q_positions,
        &[(keys, values, 0)],
        key_positions,
        base,
        None,
        alibi,
        out,
    );
}

/// Computes attention outputs for a chunk of `n` new tokens over a KV
/// cache stored as an ordered list of physical segments.
///
/// Each `(keys, values)` segment holds a contiguous run of token rows,
/// `[rows × kv_dim]`; logically the cache is their concatenation, and
/// `key_positions` spans the full logical length. This is the kernel that
/// lets the serve path consume `Arc`-shared module blocks in place: no
/// materialisation into a flat buffer is ever needed (paper §3.4 —
/// attention states are reused by pointer, not by copy).
///
/// The per-row math walks segments with a single global key index `j`, so
/// the float operation sequence is identical to the contiguous kernel's —
/// segmentation is invisible in the output bits, which the equality tests
/// assert exactly.
#[allow(clippy::too_many_arguments)]
pub fn attention_chunk_segments(
    cfg: &ModelConfig,
    q: &[f32],
    q_positions: &[usize],
    segments: &[KvSegmentSlices<'_>],
    key_positions: &[usize],
    base: usize,
    rope: Option<&RopeTable>,
    alibi: Option<&AlibiTable>,
    out: &mut [f32],
) {
    let n = q_positions.len();
    let d = cfg.hidden_size;
    let kv_dim = cfg.kv_dim();
    let scale = 1.0 / (cfg.head_dim() as f32).sqrt();
    let total = key_positions.len();
    debug_assert_eq!(q.len(), n * d);
    debug_assert_eq!(out.len(), n * d);
    debug_assert_eq!(
        segments.iter().map(|(k, _, _)| k.len()).sum::<usize>(),
        total * kv_dim
    );
    debug_assert!(segments
        .iter()
        .all(|(k, v, _)| k.len() == v.len() && k.len() % kv_dim.max(1) == 0));
    debug_assert!(base + n <= total);
    if n == 0 {
        return;
    }

    // One query row is independent of every other, so rows parallelise
    // with bit-identical results (no cross-row reductions): serial and
    // parallel paths run the same `attention_rows` over disjoint output
    // chunks. Decode (n = 1) and tiny chunks stay on the calling thread
    // via the `min_work` threshold.
    let work = n * total * d;
    let threads = cfg.parallelism.threads_for(work).min(n.max(1)).max(1);
    parallel_output_chunks(out, d, threads, |first_row, out_chunk| {
        attention_rows(
            cfg,
            q,
            q_positions,
            segments,
            key_positions,
            base,
            rope,
            alibi,
            scale,
            first_row,
            out_chunk,
        );
    });
}

/// Batched decode attention: one query row **per sequence**, each over
/// its *own* segmented KV cache.
///
/// This is the attention kernel behind continuous batching: `nseqs`
/// in-flight requests each contribute one new token, and sequence `s`'s
/// query attends to exactly the rows of its own cache (which already
/// holds the new token's k/v) — never to another sequence's. Because each
/// output row is produced by the same [`attention_row`] call the solo
/// decode path uses, with the same `visible = cache length` horizon, the
/// batched results are bit-identical to serving each sequence alone;
/// shared module blocks referenced by several caches are read in place
/// through their segment slices, so batching adds no copies.
///
/// The per-sequence segment lists arrive in CSR form to keep the hot
/// loop allocation-free: `segs` is every sequence's `(keys, values)`
/// segments back to back, and sequence `s` owns
/// `segs[seg_bounds[s]..seg_bounds[s + 1]]`.
///
/// * `q` — query rows, `[nseqs × hidden]` (row `s` = sequence `s`).
/// * `q_positions` — position id of each sequence's new token.
/// * `seq_key_positions` — per sequence, the position ids of every cached
///   token (length = that cache's logical length).
/// * `scores` — caller-owned score scratch, grown to fit and reused
///   across layers/ticks (contents are meaningless on entry and exit).
/// * `out` — output rows, `[nseqs × hidden]`, overwritten.
#[allow(clippy::too_many_arguments)]
pub fn attention_decode_batch(
    cfg: &ModelConfig,
    q: &[f32],
    q_positions: &[usize],
    segs: &[KvSegmentSlices<'_>],
    seg_bounds: &[usize],
    seq_key_positions: &[&[usize]],
    rope: Option<&RopeTable>,
    alibi: Option<&AlibiTable>,
    scores: &mut Vec<f32>,
    out: &mut [f32],
) {
    let nseqs = q_positions.len();
    let d = cfg.hidden_size;
    debug_assert_eq!(q.len(), nseqs * d);
    debug_assert_eq!(out.len(), nseqs * d);
    debug_assert_eq!(seg_bounds.len(), nseqs + 1);
    debug_assert_eq!(seq_key_positions.len(), nseqs);
    if nseqs == 0 {
        return;
    }
    let scale = 1.0 / (cfg.head_dim() as f32).sqrt();

    // Sequences are mutually independent (each attends only to its own
    // cache), so the batch parallelises across sequences with bit-identical
    // results — the same property row-parallelism has in the chunk kernel.
    // Each worker gets one `max_visible`-sized slice of the shared score
    // scratch instead of growing a private Vec per tick.
    let work: usize = seq_key_positions.iter().map(|kp| kp.len() * d).sum();
    let threads = cfg.parallelism.threads_for(work).min(nseqs).max(1);
    let max_visible = seq_key_positions.iter().map(|kp| kp.len()).max().unwrap_or(0).max(1);
    let rows_per = nseqs.div_ceil(threads);
    let n_chunks = nseqs.div_ceil(rows_per);
    if scores.len() < n_chunks * max_visible {
        scores.resize(n_chunks * max_visible, 0.0);
    }
    if threads <= 1 {
        attention_seq_rows(
            cfg, q, q_positions, segs, seg_bounds, seq_key_positions, rope, alibi, scale, 0,
            out, scores,
        );
        return;
    }
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
        .chunks_mut(rows_per * d)
        .zip(scores.chunks_mut(max_visible))
        .enumerate()
        .map(|(chunk_idx, (out_chunk, score_chunk))| {
            let first_seq = chunk_idx * rows_per;
            Box::new(move || {
                attention_seq_rows(
                    cfg, q, q_positions, segs, seg_bounds, seq_key_positions, rope, alibi,
                    scale, first_seq, out_chunk, score_chunk,
                );
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_tasks(tasks, threads);
}

/// Per-sequence worker body shared by the serial and parallel paths of
/// [`attention_decode_batch`]: sequence rows `first_seq ..` backing
/// `out_chunk`, each through the same [`attention_row`] the solo decode
/// path uses.
#[allow(clippy::too_many_arguments)]
fn attention_seq_rows(
    cfg: &ModelConfig,
    q: &[f32],
    q_positions: &[usize],
    segs: &[KvSegmentSlices<'_>],
    seg_bounds: &[usize],
    seq_key_positions: &[&[usize]],
    rope: Option<&RopeTable>,
    alibi: Option<&AlibiTable>,
    scale: f32,
    first_seq: usize,
    out_chunk: &mut [f32],
    scores: &mut [f32],
) {
    let d = cfg.hidden_size;
    for (local, o_row) in out_chunk.chunks_exact_mut(d).enumerate() {
        let s = first_seq + local;
        let key_positions = seq_key_positions[s];
        let visible = key_positions.len();
        o_row.fill(0.0);
        attention_row(
            cfg,
            &q[s * d..(s + 1) * d],
            q_positions[s],
            &segs[seg_bounds[s]..seg_bounds[s + 1]],
            key_positions,
            visible,
            rope,
            alibi,
            scale,
            scores,
            o_row,
        );
    }
}

/// Prefix-aware batched decode attention: the two-phase kernel that
/// streams each **shared** K/V row once per group instead of once per
/// sequence.
///
/// `groups` partitions the batch rows into contiguous runs (see
/// [`crate::view::group_adjacent_prefixes`]); within a run, the first
/// `prefix_rows` cached rows of every member are pointer-identical. For
/// those rows the loop nest is interchanged — key/value row outer, group
/// member inner — so the shared rows make one trip through the cache
/// hierarchy while every member's query is applied to them. Private
/// tails then run per sequence, and groups that share nothing fall back
/// to exactly the per-sequence path of [`attention_decode_batch`].
///
/// **Why the outputs stay byte-identical.** Per (sequence, head) the
/// kernel keeps a private score row and output accumulator, and both
/// phases advance the same global key index `j` a flat walk would:
/// phase 1 covers `j < prefix_rows` in ascending order, phase 2 continues
/// `j = prefix_rows..visible`. Every score is produced by the same
/// [`dot_seq`]`* scale (+ bias)` operations, softmax sees the same values
/// in the same slots, and every accumulation is the same [`axpy_seq`] in
/// ascending `j` — the interchange only reorders *independent* writes
/// across sequences, never the float sequence within one accumulator.
#[allow(clippy::too_many_arguments)]
pub fn attention_decode_batch_grouped(
    cfg: &ModelConfig,
    q: &[f32],
    q_positions: &[usize],
    segs: &[KvSegmentSlices<'_>],
    seg_bounds: &[usize],
    seq_key_positions: &[&[usize]],
    groups: &[PrefixGroup],
    rope: Option<&RopeTable>,
    alibi: Option<&AlibiTable>,
    scores: &mut Vec<f32>,
    out: &mut [f32],
) {
    let nseqs = q_positions.len();
    let d = cfg.hidden_size;
    debug_assert_eq!(q.len(), nseqs * d);
    debug_assert_eq!(out.len(), nseqs * d);
    debug_assert_eq!(seg_bounds.len(), nseqs + 1);
    debug_assert_eq!(seq_key_positions.len(), nseqs);
    debug_assert_eq!(groups.iter().map(|g| g.len).sum::<usize>(), nseqs);
    if nseqs == 0 {
        return;
    }
    let scale = 1.0 / (cfg.head_dim() as f32).sqrt();

    // A shared group keeps one score row per member live at once; a
    // non-shared group reuses a single row across its members.
    let need = |g: &PrefixGroup| {
        let stride = group_stride(seq_key_positions, g).max(1);
        if g.is_shared() {
            g.len * stride
        } else {
            stride
        }
    };
    let total: usize = groups.iter().map(need).sum();
    if scores.len() < total {
        scores.resize(total, 0.0);
    }

    // Groups touch disjoint output/score ranges (runs are contiguous), so
    // they parallelise by plain slice splitting — same bit-identity
    // argument as per-sequence parallelism.
    let work: usize = seq_key_positions.iter().map(|kp| kp.len() * d).sum();
    let threads = cfg.parallelism.threads_for(work).min(groups.len()).max(1);
    if threads <= 1 {
        let mut out_rest: &mut [f32] = out;
        let mut off = 0usize;
        for g in groups {
            let (out_chunk, rest) = out_rest.split_at_mut(g.len * d);
            out_rest = rest;
            let len = need(g);
            attention_group(
                cfg, q, q_positions, segs, seg_bounds, seq_key_positions, g, rope, alibi,
                scale, &mut scores[off..off + len], out_chunk,
            );
            off += len;
        }
        return;
    }
    let mut out_rest: &mut [f32] = out;
    let mut scores_rest: &mut [f32] = scores;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(groups.len());
    for g in groups {
        let (out_chunk, rest) = out_rest.split_at_mut(g.len * d);
        out_rest = rest;
        let (score_chunk, rest) = scores_rest.split_at_mut(need(g));
        scores_rest = rest;
        tasks.push(Box::new(move || {
            attention_group(
                cfg, q, q_positions, segs, seg_bounds, seq_key_positions, g, rope, alibi,
                scale, score_chunk, out_chunk,
            );
        }) as Box<dyn FnOnce() + Send + '_>);
    }
    run_tasks(tasks, threads);
}

/// Longest cache (visible rows) among a group's members — the score-row
/// stride of the grouped kernel.
fn group_stride(seq_key_positions: &[&[usize]], g: &PrefixGroup) -> usize {
    seq_key_positions[g.start..g.start + g.len]
        .iter()
        .map(|kp| kp.len())
        .max()
        .unwrap_or(0)
}

/// The two-phase kernel body for one prefix group. `out_chunk` holds the
/// group's output rows (member `mi` = batch row `g.start + mi`);
/// `scores` holds `len × stride` score rows for a shared group.
#[allow(clippy::too_many_arguments)]
fn attention_group(
    cfg: &ModelConfig,
    q: &[f32],
    q_positions: &[usize],
    segs: &[KvSegmentSlices<'_>],
    seg_bounds: &[usize],
    seq_key_positions: &[&[usize]],
    g: &PrefixGroup,
    rope: Option<&RopeTable>,
    alibi: Option<&AlibiTable>,
    scale: f32,
    scores: &mut [f32],
    out_chunk: &mut [f32],
) {
    let d = cfg.hidden_size;
    if !g.is_shared() {
        // Nothing to hoist: run the members through the per-sequence path
        // (this is also what keeps a batch of singletons — including batch
        // size 1 — on exactly the legacy code).
        attention_seq_rows(
            cfg, q, q_positions, segs, seg_bounds, seq_key_positions, rope, alibi, scale,
            g.start, out_chunk, scores,
        );
        return;
    }

    let hd = cfg.head_dim();
    let kv_dim = cfg.kv_dim();
    let kv_group = cfg.kv_group_size();
    let stride = group_stride(seq_key_positions, g);
    let m0 = g.start;
    let shared = &segs[seg_bounds[m0]..seg_bounds[m0] + g.prefix_segments];
    for o_row in out_chunk.chunks_exact_mut(d) {
        o_row.fill(0.0);
    }
    for h in 0..cfg.num_heads {
        let kv_h = h / kv_group;

        // Score phase 1 — shared prefix, loop-interchanged: each key row
        // is read once and dotted against every member's query. A shifted
        // segment's rotation row is resolved once and applied inside the
        // fused dot, so the interchange still reads each key row once.
        let mut j = 0usize;
        for &(keys, _, shift) in shared {
            let rot = segment_rotation(rope, shift);
            for k_row in keys.chunks_exact(kv_dim) {
                let k_head = &k_row[kv_h * hd..(kv_h + 1) * hd];
                for mi in 0..g.len {
                    let s = m0 + mi;
                    let q_head = &q[s * d + h * hd..s * d + (h + 1) * hd];
                    let score = &mut scores[mi * stride + j];
                    *score = score_dot(q_head, k_head, rot) * scale;
                    if let Some(alibi) = alibi {
                        *score += alibi.bias(h, q_positions[s], seq_key_positions[s][j]);
                    }
                }
                j += 1;
            }
        }
        debug_assert_eq!(j, g.prefix_rows);

        // Score phase 2 — private remainder per member, then softmax over
        // the member's full score row (identical values in identical slots
        // to the per-sequence walk).
        for mi in 0..g.len {
            let s = m0 + mi;
            let key_positions = seq_key_positions[s];
            let visible = key_positions.len();
            let q_head = &q[s * d + h * hd..s * d + (h + 1) * hd];
            let row_scores = &mut scores[mi * stride..mi * stride + visible];
            let mut j = g.prefix_rows;
            for &(keys, _, shift) in &segs[seg_bounds[s] + g.prefix_segments..seg_bounds[s + 1]] {
                if j >= visible {
                    break;
                }
                let rot = segment_rotation(rope, shift);
                let rows = (keys.len() / kv_dim).min(visible - j);
                for r in 0..rows {
                    let k_head = &keys[r * kv_dim + kv_h * hd..r * kv_dim + (kv_h + 1) * hd];
                    let score = &mut row_scores[j];
                    *score = score_dot(q_head, k_head, rot) * scale;
                    if let Some(alibi) = alibi {
                        *score += alibi.bias(h, q_positions[s], key_positions[j]);
                    }
                    j += 1;
                }
            }
            debug_assert_eq!(j, visible);
            pc_tensor::ops::softmax_slice(row_scores);
        }

        // Value phase 1 — shared prefix, loop-interchanged: each value row
        // is read once and accumulated into every member's output. Value
        // rows are position-free, so the shift never enters this phase.
        let mut j = 0usize;
        for &(_, values, _) in shared {
            for v_row in values.chunks_exact(kv_dim) {
                let v_head = &v_row[kv_h * hd..(kv_h + 1) * hd];
                for (mi, o_row) in out_chunk.chunks_exact_mut(d).enumerate() {
                    axpy_seq(&mut o_row[h * hd..(h + 1) * hd], scores[mi * stride + j], v_head);
                }
                j += 1;
            }
        }

        // Value phase 2 — private remainder per member.
        for (mi, o_row) in out_chunk.chunks_exact_mut(d).enumerate() {
            let s = m0 + mi;
            let visible = seq_key_positions[s].len();
            let o_head = &mut o_row[h * hd..(h + 1) * hd];
            let mut j = g.prefix_rows;
            for &(_, values, _) in &segs[seg_bounds[s] + g.prefix_segments..seg_bounds[s + 1]] {
                if j >= visible {
                    break;
                }
                let rows = (values.len() / kv_dim).min(visible - j);
                for r in 0..rows {
                    let v_head = &values[r * kv_dim + kv_h * hd..r * kv_dim + (kv_h + 1) * hd];
                    axpy_seq(o_head, scores[mi * stride + j], v_head);
                    j += 1;
                }
            }
        }
    }
}

/// Attention for the contiguous query rows `first_row ..` backing
/// `out_chunk`. Both the serial and the parallel entry points run exactly
/// this code, which is what makes thread count invisible in the output
/// bits.
#[allow(clippy::too_many_arguments)]
fn attention_rows(
    cfg: &ModelConfig,
    q: &[f32],
    q_positions: &[usize],
    segments: &[KvSegmentSlices<'_>],
    key_positions: &[usize],
    base: usize,
    rope: Option<&RopeTable>,
    alibi: Option<&AlibiTable>,
    scale: f32,
    first_row: usize,
    out_chunk: &mut [f32],
) {
    let d = cfg.hidden_size;
    let total = key_positions.len();
    let mut scores = vec![0.0f32; total];
    for (local, o_row) in out_chunk.chunks_exact_mut(d).enumerate() {
        let i = first_row + local;
        o_row.fill(0.0);
        attention_row(
            cfg,
            &q[i * d..(i + 1) * d],
            q_positions[i],
            segments,
            key_positions,
            base + i + 1,
            rope,
            alibi,
            scale,
            &mut scores,
            o_row,
        );
    }
}

/// Attention for one query row over the first `visible` cached tokens.
///
/// The score and value passes both advance one global key index `j`
/// across the segment list, touching exactly the rows a flat cache would
/// in exactly the same order — segment boundaries only change which slice
/// a row is read from, never the arithmetic.
#[allow(clippy::too_many_arguments)]
fn attention_row(
    cfg: &ModelConfig,
    q_row: &[f32],
    q_pos: usize,
    segments: &[KvSegmentSlices<'_>],
    key_positions: &[usize],
    visible: usize,
    rope: Option<&RopeTable>,
    alibi: Option<&AlibiTable>,
    scale: f32,
    scores: &mut [f32],
    o_row: &mut [f32],
) {
    let hd = cfg.head_dim();
    let kv_dim = cfg.kv_dim();
    let group = cfg.kv_group_size();
    for h in 0..cfg.num_heads {
        let q_head = &q_row[h * hd..(h + 1) * hd];
        let kv_h = h / group;
        let scores = &mut scores[..visible];
        let mut j = 0usize;
        for &(keys, _, shift) in segments {
            if j >= visible {
                break;
            }
            let rot = segment_rotation(rope, shift);
            let rows = (keys.len() / kv_dim).min(visible - j);
            for r in 0..rows {
                let k_head = &keys[r * kv_dim + kv_h * hd..r * kv_dim + (kv_h + 1) * hd];
                let s = &mut scores[j];
                *s = score_dot(q_head, k_head, rot) * scale;
                if let Some(alibi) = alibi {
                    *s += alibi.bias(h, q_pos, key_positions[j]);
                }
                j += 1;
            }
        }
        pc_tensor::ops::softmax_slice(scores);
        let o_head = &mut o_row[h * hd..(h + 1) * hd];
        let mut j = 0usize;
        for &(_, values, _) in segments {
            if j >= visible {
                break;
            }
            let rows = (values.len() / kv_dim).min(visible - j);
            for r in 0..rows {
                let v_head = &values[r * kv_dim + kv_h * hd..r * kv_dim + (kv_h + 1) * hd];
                axpy_seq(o_head, scores[j], v_head);
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;

    /// 1 head, head_dim 2, so hand-computable.
    fn tiny_cfg() -> ModelConfig {
        ModelConfig {
            hidden_size: 2,
            num_heads: 1,
            num_kv_heads: 1,
            ..ModelConfig::llama_tiny(8)
        }
    }

    #[test]
    fn single_key_copies_value() {
        let cfg = tiny_cfg();
        // One query, one cached key: softmax over one score = 1 → out = v.
        let q = [1.0, 0.0];
        let keys = [0.3, 0.7];
        let values = [5.0, -2.0];
        let mut out = [0.0; 2];
        attention_chunk(&cfg, &q, &[0], &keys, &values, &[0], 0, None, &mut out);
        assert_eq!(out, [5.0, -2.0]);
    }

    #[test]
    fn causality_hides_future_chunk_tokens() {
        let cfg = tiny_cfg();
        // Two chunk tokens. Token 0 must ignore token 1's value.
        let q = [1.0, 0.0, 1.0, 0.0];
        let keys = [1.0, 0.0, 1.0, 0.0];
        let values = [1.0, 0.0, 100.0, 0.0];
        let mut out = [0.0; 4];
        attention_chunk(&cfg, &q, &[0, 1], &keys, &values, &[0, 1], 0, None, &mut out);
        // Token 0 sees only value 1.0.
        assert_eq!(out[0], 1.0);
        // Token 1 mixes both (equal scores → mean).
        assert!((out[2] - 50.5).abs() < 1e-3);
    }

    #[test]
    fn base_tokens_are_visible_to_all_chunk_tokens() {
        let cfg = tiny_cfg();
        // One pre-cached token (base=1) + one chunk token.
        let q = [1.0, 0.0];
        let keys = [1.0, 0.0, 1.0, 0.0]; // cached + chunk's own
        let values = [10.0, 0.0, 20.0, 0.0];
        let mut out = [0.0; 2];
        attention_chunk(&cfg, &q, &[1], &keys, &values, &[0, 1], 1, None, &mut out);
        assert!((out[0] - 15.0).abs() < 1e-3); // attends to both equally
    }

    #[test]
    fn sharper_key_match_dominates() {
        let cfg = tiny_cfg();
        let q = [4.0, 0.0];
        let keys = [4.0, 0.0, -4.0, 0.0, 4.0, 0.0];
        let values = [1.0, 0.0, -1.0, 0.0, 1.0, 0.0];
        let mut out = [0.0; 2];
        attention_chunk(&cfg, &q, &[2], &keys, &values, &[0, 1, 2], 2, None, &mut out);
        // Matching keys get nearly all mass → out ≈ 1.
        assert!(out[0] > 0.99, "{out:?}");
    }

    #[test]
    fn alibi_bias_prefers_near_keys() {
        let cfg = ModelConfig {
            hidden_size: 2,
            num_heads: 1,
            num_kv_heads: 1,
            ..ModelConfig::mpt_tiny(8)
        };
        let alibi = AlibiTable::new(1);
        // Query matches both keys equally; ALiBi should favour the nearer.
        let q = [1.0, 0.0];
        let keys = [1.0, 0.0, 1.0, 0.0, 0.0, 0.0];
        let values = [1.0, 0.0, 2.0, 0.0, 0.0, 0.0];
        let mut with_alibi = [0.0; 2];
        attention_chunk(
            &cfg,
            &q,
            &[50],
            &keys,
            &values,
            &[0, 49, 50],
            2,
            Some(&alibi),
            &mut with_alibi,
        );
        let mut without = [0.0; 2];
        attention_chunk(&cfg, &q, &[50], &keys, &values, &[0, 49, 50], 2, None, &mut without);
        // The nearer key (value 2.0, distance 1) gains mass relative to the
        // far key (value 1.0, distance 50), pulling the output upward.
        assert!(with_alibi[0] > without[0], "{with_alibi:?} vs {without:?}");
    }

    #[test]
    fn gqa_heads_share_kv() {
        // 2 query heads, 1 kv head: both heads must read the same kv rows.
        let cfg = ModelConfig {
            hidden_size: 4,
            num_heads: 2,
            num_kv_heads: 1,
            ..ModelConfig::falcon_tiny(8)
        };
        assert_eq!(cfg.kv_dim(), 2);
        let q = [1.0, 0.0, 1.0, 0.0]; // identical per-head queries
        let keys = [0.5, 0.5];
        let values = [3.0, 7.0];
        let mut out = [0.0; 4];
        attention_chunk(&cfg, &q, &[0], &keys, &values, &[0], 0, None, &mut out);
        assert_eq!(&out[0..2], &out[2..4]);
        assert_eq!(&out[0..2], &[3.0, 7.0]);
    }

    #[test]
    fn empty_chunk_is_noop() {
        let cfg = tiny_cfg();
        let mut out: [f32; 0] = [];
        attention_chunk(&cfg, &[], &[], &[], &[], &[], 0, None, &mut out);
    }

    #[test]
    fn segmented_kernel_matches_contiguous_exactly() {
        // Any segmentation of the KV rows — including degenerate 1-row and
        // empty segments — must reproduce the contiguous kernel bit for bit.
        let cfg = ModelConfig {
            hidden_size: 8,
            num_heads: 2,
            num_kv_heads: 1,
            ..ModelConfig::llama_tiny(8)
        };
        let kv_dim = cfg.kv_dim();
        let total = 7usize;
        let n = 3usize;
        let base = total - n;
        let keys: Vec<f32> = (0..total * kv_dim).map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.13).collect();
        let values: Vec<f32> = (0..total * kv_dim).map(|i| ((i * 53 % 23) as f32 - 11.0) * 0.07).collect();
        let q: Vec<f32> = (0..n * cfg.hidden_size).map(|i| ((i * 41 % 17) as f32 - 8.0) * 0.11).collect();
        let q_positions: Vec<usize> = (base..total).collect();
        let key_positions: Vec<usize> = (0..total).collect();

        let mut expect = vec![0.0f32; n * cfg.hidden_size];
        attention_chunk(&cfg, &q, &q_positions, &keys, &values, &key_positions, base, None, &mut expect);

        for splits in [vec![1, 3, 3], vec![2, 0, 5], vec![7], vec![1; 7], vec![4, 3]] {
            assert_eq!(splits.iter().sum::<usize>(), total);
            let mut segs: Vec<KvSegmentSlices<'_>> = Vec::new();
            let mut row = 0;
            for len in splits {
                segs.push((
                    &keys[row * kv_dim..(row + len) * kv_dim],
                    &values[row * kv_dim..(row + len) * kv_dim],
                    0,
                ));
                row += len;
            }
            let mut got = vec![0.0f32; n * cfg.hidden_size];
            attention_chunk_segments(
                &cfg, &q, &q_positions, &segs, &key_positions, base, None, None, &mut got,
            );
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn shifted_segment_matches_materialised_rotation_bitwise() {
        // A segment carrying shift Δ must produce the same bits as first
        // rotating every key head by R(Δ) into a flat buffer and running
        // the legacy shift-0 kernel over it.
        let cfg = ModelConfig {
            hidden_size: 8,
            num_heads: 2,
            num_kv_heads: 1,
            ..ModelConfig::llama_tiny(8)
        };
        let rope = crate::pos::RopeTable::new(cfg.head_dim(), 512, 10_000.0);
        let kv_dim = cfg.kv_dim();
        let total = 6usize;
        let n = 2usize;
        let base = total - n;
        let keys: Vec<f32> =
            (0..total * kv_dim).map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.13).collect();
        let values: Vec<f32> =
            (0..total * kv_dim).map(|i| ((i * 53 % 23) as f32 - 11.0) * 0.07).collect();
        let q: Vec<f32> =
            (0..n * cfg.hidden_size).map(|i| ((i * 41 % 17) as f32 - 8.0) * 0.11).collect();
        let q_positions: Vec<usize> = (base..total).collect();
        let key_positions: Vec<usize> = (0..total).collect();
        // First 4 rows are a "module" whose keys are canonical (shift Δ
        // pending); last 2 rows are the fresh tail at shift 0.
        let split = 4 * kv_dim;
        for shift in [5isize, 120, -3] {
            let mut rotated = keys.clone();
            for row in rotated[..split].chunks_exact_mut(kv_dim) {
                for head in row.chunks_exact_mut(cfg.head_dim()) {
                    rope.apply_shift(head, shift);
                }
            }
            let mut expect = vec![0.0f32; n * cfg.hidden_size];
            attention_chunk_segments(
                &cfg,
                &q,
                &q_positions,
                &[(&rotated, &values, 0)],
                &key_positions,
                base,
                None,
                None,
                &mut expect,
            );
            let segs: Vec<KvSegmentSlices<'_>> = vec![
                (&keys[..split], &values[..split], shift),
                (&keys[split..], &values[split..], 0),
            ];
            let mut got = vec![0.0f32; n * cfg.hidden_size];
            attention_chunk_segments(
                &cfg,
                &q,
                &q_positions,
                &segs,
                &key_positions,
                base,
                Some(&rope),
                None,
                &mut got,
            );
            let expect_bits: Vec<u32> = expect.iter().map(|f| f.to_bits()).collect();
            let got_bits: Vec<u32> = got.iter().map(|f| f.to_bits()).collect();
            assert_eq!(got_bits, expect_bits, "shift {shift}");
        }
    }

    #[test]
    fn parallel_attention_is_bit_identical() {
        // Same weights, same inputs: 1 thread vs 4 threads must agree on
        // every bit (rows are independent; no cross-thread reductions).
        let serial_cfg = ModelConfig::llama_tiny(64);
        let parallel_cfg = ModelConfig {
            // min_work: 0 forces the fan-out even at toy sizes.
            parallelism: pc_tensor::Parallelism {
                num_threads: 4,
                min_work: 0,
            },
            ..serial_cfg.clone()
        };
        let tokens: Vec<u32> = (0..48).map(|t| t % 64).collect();
        let positions: Vec<usize> = (0..48).collect();
        let serial = crate::Model::new(serial_cfg, 7);
        let parallel = crate::Model::new(parallel_cfg, 7);
        let mut a = crate::KvCache::new(serial.config());
        let mut b = crate::KvCache::new(parallel.config());
        let la = serial.forward(&tokens, &positions, &mut a).unwrap();
        let lb = parallel.forward(&tokens, &positions, &mut b).unwrap();
        assert_eq!(la.data(), lb.data());
        assert_eq!(a, b);
    }
}
