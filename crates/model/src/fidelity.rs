//! Output-fidelity metrics between two inference paths.
//!
//! Table 1's claim is "cached ≈ baseline". With real task scores
//! unavailable (seeded weights), the honest quantities are distances over
//! the next-token distribution: exact-argmax agreement, maximum logit
//! deviation, and KL divergence. These utilities compute them; the
//! `fidelity` integration tests use them to show the cross-module masking
//! approximation's divergence is small and scaffolding drives it to zero.

use pc_tensor::ops::{argmax_slice, log_softmax_slice};

/// Summary distance between two logit vectors over the same vocabulary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogitDistance {
    /// Whether both argmaxes coincide (greedy decoding would agree).
    pub argmax_agrees: bool,
    /// Maximum absolute elementwise difference.
    pub max_abs_diff: f32,
    /// KL divergence `KL(p ‖ q)` of the softmax distributions, in nats.
    pub kl_divergence: f32,
}

/// Computes the distance from `p_logits` (reference) to `q_logits`.
///
/// # Panics
///
/// Panics when the slices' lengths differ or are zero.
pub fn logit_distance(p_logits: &[f32], q_logits: &[f32]) -> LogitDistance {
    assert_eq!(p_logits.len(), q_logits.len(), "vocab sizes differ");
    assert!(!p_logits.is_empty(), "empty logits");
    let argmax_agrees = argmax_slice(p_logits) == argmax_slice(q_logits);
    let max_abs_diff = p_logits
        .iter()
        .zip(q_logits)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);

    let mut lp = p_logits.to_vec();
    let mut lq = q_logits.to_vec();
    log_softmax_slice(&mut lp);
    log_softmax_slice(&mut lq);
    let kl = lp
        .iter()
        .zip(&lq)
        .map(|(&a, &b)| a.exp() * (a - b))
        .sum::<f32>()
        .max(0.0);

    LogitDistance {
        argmax_agrees,
        max_abs_diff,
        kl_divergence: kl,
    }
}

/// Fraction of positions where two token sequences agree (up to the
/// shorter length; 1.0 for two empty sequences).
pub fn token_agreement(a: &[u32], b: &[u32]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return if a.len() == b.len() { 1.0 } else { 0.0 };
    }
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    same as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_logits_have_zero_distance() {
        let l = [0.5f32, -1.0, 2.0, 0.0];
        let d = logit_distance(&l, &l);
        assert!(d.argmax_agrees);
        assert_eq!(d.max_abs_diff, 0.0);
        assert!(d.kl_divergence.abs() < 1e-6);
    }

    #[test]
    fn divergent_logits_measured() {
        let p = [0.0f32, 3.0, 0.0];
        let q = [3.0f32, 0.0, 0.0];
        let d = logit_distance(&p, &q);
        assert!(!d.argmax_agrees);
        assert_eq!(d.max_abs_diff, 3.0);
        assert!(d.kl_divergence > 1.0);
    }

    #[test]
    fn kl_is_asymmetric_but_nonnegative() {
        let p = [2.0f32, 0.0, 0.0, 0.0];
        let q = [0.5f32, 0.5, 0.5, 0.0];
        let pq = logit_distance(&p, &q).kl_divergence;
        let qp = logit_distance(&q, &p).kl_divergence;
        assert!(pq >= 0.0 && qp >= 0.0);
        assert!((pq - qp).abs() > 1e-4);
    }

    #[test]
    fn shift_invariance_of_kl() {
        // Adding a constant to logits leaves the distribution unchanged.
        let p = [0.1f32, 1.2, -0.3];
        let q: Vec<f32> = p.iter().map(|x| x + 10.0).collect();
        let d = logit_distance(&p, &q);
        assert!(d.kl_divergence < 1e-5);
        assert!(d.argmax_agrees);
    }

    #[test]
    fn token_agreement_counts() {
        assert_eq!(token_agreement(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(token_agreement(&[1, 2, 3], &[1, 9, 3]), 2.0 / 3.0);
        assert_eq!(token_agreement(&[], &[]), 1.0);
        assert_eq!(token_agreement(&[], &[1]), 0.0);
        assert_eq!(token_agreement(&[1, 2], &[1, 2, 9, 9]), 1.0);
    }

    #[test]
    #[should_panic(expected = "vocab sizes differ")]
    fn mismatched_lengths_rejected() {
        logit_distance(&[1.0], &[1.0, 2.0]);
    }
}
