//! Token samplers.
//!
//! The paper's accuracy evaluation uses "deterministic sampling where the
//! token with the highest probability is chosen at every step so that the
//! results with and without Prompt Cache are comparable" — that is
//! [`GreedySampler`], the default throughout this reproduction.
//! [`TemperatureSampler`] exists for the qualitative use-case examples.

use crate::TokenId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maps a logit vector to the next token id.
pub trait Sampler {
    /// Picks a token from `logits` (length = vocab size).
    fn sample(&mut self, logits: &[f32]) -> TokenId;
}

/// Deterministic argmax sampling (ties break to the lower id).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySampler;

impl Sampler for GreedySampler {
    fn sample(&mut self, logits: &[f32]) -> TokenId {
        pc_tensor::ops::argmax_slice(logits).expect("non-empty logits") as TokenId
    }
}

/// Seeded temperature sampling over the softmax distribution.
#[derive(Debug)]
pub struct TemperatureSampler {
    temperature: f32,
    rng: StdRng,
}

impl TemperatureSampler {
    /// Creates a sampler with the given temperature (clamped to ≥ 1e-3;
    /// lower values behave like greedy) and RNG seed.
    pub fn new(temperature: f32, seed: u64) -> Self {
        TemperatureSampler {
            temperature: temperature.max(1e-3),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Sampler for TemperatureSampler {
    fn sample(&mut self, logits: &[f32]) -> TokenId {
        let mut probs: Vec<f32> = logits.iter().map(|&l| l / self.temperature).collect();
        pc_tensor::ops::softmax_slice(&mut probs);
        let draw: f32 = self.rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if draw < acc {
                return i as TokenId;
            }
        }
        (probs.len() - 1) as TokenId
    }
}

/// Top-k sampling: temperature softmax restricted to the `k` highest
/// logits.
#[derive(Debug)]
pub struct TopKSampler {
    k: usize,
    temperature: f32,
    rng: StdRng,
}

impl TopKSampler {
    /// Creates a sampler keeping the `k` best tokens (`k ≥ 1`).
    pub fn new(k: usize, temperature: f32, seed: u64) -> Self {
        TopKSampler {
            k: k.max(1),
            temperature: temperature.max(1e-3),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Sampler for TopKSampler {
    fn sample(&mut self, logits: &[f32]) -> TokenId {
        let top = pc_tensor::ops::top_k(logits, self.k);
        let mut probs: Vec<f32> = top.iter().map(|&(_, l)| l / self.temperature).collect();
        pc_tensor::ops::softmax_slice(&mut probs);
        let draw: f32 = self.rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        for (&(id, _), &p) in top.iter().zip(&probs) {
            acc += p;
            if draw < acc {
                return id as TokenId;
            }
        }
        top.last().map(|&(id, _)| id as TokenId).unwrap_or(0)
    }
}

/// Nucleus (top-p) sampling: the smallest probability mass ≥ `p` is kept.
#[derive(Debug)]
pub struct NucleusSampler {
    p: f32,
    temperature: f32,
    rng: StdRng,
}

impl NucleusSampler {
    /// Creates a sampler keeping the top-`p` nucleus (`p` clamped to
    /// `(0, 1]`).
    pub fn new(p: f32, temperature: f32, seed: u64) -> Self {
        NucleusSampler {
            p: p.clamp(1e-3, 1.0),
            temperature: temperature.max(1e-3),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Sampler for NucleusSampler {
    fn sample(&mut self, logits: &[f32]) -> TokenId {
        let mut probs: Vec<f32> = logits.iter().map(|&l| l / self.temperature).collect();
        pc_tensor::ops::softmax_slice(&mut probs);
        let mut ranked: Vec<(usize, f32)> = probs.into_iter().enumerate().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut nucleus = Vec::new();
        let mut mass = 0.0;
        for (id, p) in ranked {
            nucleus.push((id, p));
            mass += p;
            if mass >= self.p {
                break;
            }
        }
        let draw: f32 = self.rng.gen_range(0.0..mass.max(f32::MIN_POSITIVE));
        let mut acc = 0.0;
        for &(id, p) in &nucleus {
            acc += p;
            if draw < acc {
                return id as TokenId;
            }
        }
        nucleus.last().map(|&(id, _)| id as TokenId).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_picks_max() {
        let mut s = GreedySampler;
        assert_eq!(s.sample(&[0.1, 3.0, 1.0]), 1);
    }

    #[test]
    fn greedy_tie_breaks_low() {
        let mut s = GreedySampler;
        assert_eq!(s.sample(&[2.0, 2.0]), 0);
    }

    #[test]
    fn temperature_is_seeded_deterministic() {
        let logits = [0.0, 1.0, 2.0, 0.5];
        let a: Vec<_> = {
            let mut s = TemperatureSampler::new(1.0, 42);
            (0..10).map(|_| s.sample(&logits)).collect()
        };
        let b: Vec<_> = {
            let mut s = TemperatureSampler::new(1.0, 42);
            (0..10).map(|_| s.sample(&logits)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn low_temperature_approaches_greedy() {
        let logits = [0.0, 5.0, 1.0];
        let mut s = TemperatureSampler::new(1e-6, 7);
        for _ in 0..20 {
            assert_eq!(s.sample(&logits), 1);
        }
    }

    #[test]
    fn high_temperature_spreads_mass() {
        let logits = [0.0, 1.0];
        let mut s = TemperatureSampler::new(50.0, 3);
        let picks: Vec<_> = (0..200).map(|_| s.sample(&logits)).collect();
        assert!(picks.contains(&0));
        assert!(picks.contains(&1));
    }

    #[test]
    fn sampler_never_exceeds_vocab() {
        let logits = [f32::NEG_INFINITY, f32::NEG_INFINITY, 0.0];
        let mut s = TemperatureSampler::new(1.0, 5);
        for _ in 0..50 {
            assert!((s.sample(&logits) as usize) < 3);
        }
    }

    #[test]
    fn top_k_restricts_support() {
        // k = 2 over clearly separated logits: only the top two ids ever
        // appear.
        let logits = [0.0, 10.0, 9.0, -5.0];
        let mut s = TopKSampler::new(2, 1.0, 11);
        for _ in 0..100 {
            let t = s.sample(&logits);
            assert!(t == 1 || t == 2, "{t}");
        }
    }

    #[test]
    fn top_k_one_is_greedy() {
        let logits = [0.3, 2.0, 1.0];
        let mut s = TopKSampler::new(1, 1.0, 3);
        for _ in 0..20 {
            assert_eq!(s.sample(&logits), 1);
        }
    }

    #[test]
    fn top_k_is_seeded() {
        let logits = [1.0, 1.1, 0.9, 1.05];
        let run = |seed| -> Vec<TokenId> {
            let mut s = TopKSampler::new(3, 1.0, seed);
            (0..20).map(|_| s.sample(&logits)).collect()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn nucleus_tight_p_is_greedy() {
        // One token holds most of the mass; tiny p keeps only it.
        let logits = [0.0, 8.0, 0.5];
        let mut s = NucleusSampler::new(0.5, 1.0, 2);
        for _ in 0..50 {
            assert_eq!(s.sample(&logits), 1);
        }
    }

    #[test]
    fn nucleus_full_p_spreads() {
        let logits = [1.0, 1.0];
        let mut s = NucleusSampler::new(1.0, 10.0, 8);
        let picks: Vec<TokenId> = (0..200).map(|_| s.sample(&logits)).collect();
        assert!(picks.contains(&0) && picks.contains(&1));
    }

    #[test]
    fn nucleus_is_seeded_and_in_vocab() {
        let logits = [0.2, 0.9, 0.4, 0.1];
        let run = |seed| -> Vec<TokenId> {
            let mut s = NucleusSampler::new(0.9, 1.0, seed);
            (0..20).map(|_| s.sample(&logits)).collect()
        };
        assert_eq!(run(5), run(5));
        assert!(run(5).iter().all(|&t| (t as usize) < 4));
    }
}
