//! From-scratch transformer inference engine with explicit position IDs.
//!
//! This crate is the reproduction's stand-in for "HuggingFace transformers +
//! PyTorch" (paper §4): a CPU inference engine for decoder-only transformers
//! whose every attention call takes **explicit per-token position IDs**.
//! That is the single architectural requirement Prompt Cache adds on top of
//! an ordinary KV-cache engine (§4.2): prompt modules are encoded at the
//! absolute positions the schema assigns them, and uncached prompt text is
//! computed at gap positions, so position IDs arrive discontinuous and
//! out of lock-step with cache indices.
//!
//! Four model families cover the paper's architecture matrix:
//!
//! | Family | Positional encoding | Norm | MLP | Block |
//! |---|---|---|---|---|
//! | [`Family::Llama`]  | RoPE (rotation lookup table) | RMSNorm | SiLU-gated | sequential |
//! | [`Family::Falcon`] | RoPE + multi-query attention | LayerNorm | GELU | parallel attn+MLP |
//! | [`Family::Mpt`]    | ALiBi (bias from position IDs) | LayerNorm | GELU | sequential |
//! | [`Family::Gpt2`]   | learned position embeddings | LayerNorm | GELU | sequential |
//!
//! RoPE and ALiBi are implemented exactly as §4.2 prescribes for Prompt
//! Cache: position IDs index precomputed lookup tables (rotations for RoPE,
//! slope-scaled distances for ALiBi) rather than being assumed contiguous.
//!
//! # Example
//!
//! ```
//! use pc_model::{KvCache, Model, ModelConfig};
//!
//! let cfg = ModelConfig::llama_tiny(512);
//! let model = Model::new(cfg, 0);
//! let mut cache = KvCache::new(model.config());
//! // Prefill three tokens at positions 0..3, then greedily pick the next.
//! let logits = model.forward(&[11, 42, 7], &[0, 1, 2], &mut cache).unwrap();
//! let next = pc_tensor::ops::argmax_slice(logits.row(2).unwrap()).unwrap();
//! assert!(next < 512);
//! ```

#![warn(missing_docs)]

pub mod attention;
mod config;
mod error;
pub mod fidelity;
pub mod flops;
mod kv;
mod model;
mod pos;
mod sampler;
pub mod view;
mod weights;

pub use config::{Family, ModelConfig};
pub use pc_tensor::Parallelism;
pub use error::ModelError;
pub use kv::{KvCache, LayerKv};
pub use model::{BatchScratch, BatchStepStats, Model};
pub use view::{
    group_adjacent_prefixes, shared_prefix, KvSegment, KvSeq, KvView, PrefixGroup, SegmentId,
};
pub use pos::{is_shift_invariant, AlibiTable, PositionEncoding, RopeTable};
pub use sampler::{GreedySampler, NucleusSampler, Sampler, TemperatureSampler, TopKSampler};
pub use weights::{LayerWeights, ModelWeights};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Token id type (matches `pc_tokenizer::TokenId`).
pub type TokenId = u32;
