//! The transformer model: embedding, blocks, logits, decoding.

use crate::attention::{
    attention_chunk_segments, attention_decode_batch, attention_decode_batch_grouped,
};
use crate::pos::{AlibiTable, RopeTable};
use crate::sampler::Sampler;
use crate::view::{group_adjacent_prefixes, KvSeq, PrefixGroup};
use crate::{Family, KvCache, ModelConfig, ModelError, ModelWeights, Result, TokenId};
use pc_telemetry::Telemetry;
use pc_tensor::ops;
use pc_tensor::Tensor;
use std::time::{Duration, Instant};

/// Per-layer attention/MLP timing is sampled on every `N`-th forward pass
/// (per [`Telemetry::should_sample`]) so the hot loop stays free of clock
/// reads in the common case.
const LAYER_TIMING_SAMPLE_EVERY: u64 = 16;

/// Recyclable allocation for the per-layer CSR segment list. The `Vec`
/// is stored with `'static` slice lifetimes **only while empty** and
/// re-branded to the caller's borrow lifetime on loan, so one heap
/// allocation serves every layer of every tick instead of being rebuilt
/// per layer.
#[derive(Debug, Default)]
struct SegListPool(Vec<(&'static [f32], &'static [f32], isize)>);

impl SegListPool {
    fn take<'s>(&mut self) -> Vec<(&'s [f32], &'s [f32], isize)> {
        let empty = std::mem::take(&mut self.0);
        debug_assert!(empty.is_empty());
        // SAFETY: the vector is empty, so it holds no references — only
        // its allocation transfers. The element types differ solely in
        // slice lifetime, which never affects layout.
        unsafe {
            std::mem::transmute::<
                Vec<(&'static [f32], &'static [f32], isize)>,
                Vec<(&'s [f32], &'s [f32], isize)>,
            >(empty)
        }
    }

    fn put<'s>(&mut self, mut v: Vec<(&'s [f32], &'s [f32], isize)>) {
        v.clear();
        // SAFETY: cleared above — no references remain; see `take`.
        self.0 = unsafe {
            std::mem::transmute::<
                Vec<(&'s [f32], &'s [f32], isize)>,
                Vec<(&'static [f32], &'static [f32], isize)>,
            >(v)
        };
    }
}

/// [`SegListPool`]'s twin for the per-sequence key-position slices.
#[derive(Debug, Default)]
struct PosListPool(Vec<&'static [usize]>);

impl PosListPool {
    fn take<'s>(&mut self) -> Vec<&'s [usize]> {
        let empty = std::mem::take(&mut self.0);
        debug_assert!(empty.is_empty());
        // SAFETY: empty — no references held; lifetime-only re-brand.
        unsafe { std::mem::transmute::<Vec<&'static [usize]>, Vec<&'s [usize]>>(empty) }
    }

    fn put<'s>(&mut self, mut v: Vec<&'s [usize]>) {
        v.clear();
        // SAFETY: cleared above — no references remain; see `take`.
        self.0 = unsafe { std::mem::transmute::<Vec<&'s [usize]>, Vec<&'static [usize]>>(v) };
    }
}

/// KV row-traffic accounting for one batched decode step, summed across
/// layers. "Shared" rows were streamed once per prefix group by the
/// two-phase kernel (each read served every group member); "private"
/// rows were read for exactly one sequence. With prefix sharing off,
/// every read is private — the A/B the telemetry counters expose.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStepStats {
    /// Rows read once per group over shared prefixes.
    pub shared_rows_read: u64,
    /// Rows read for a single sequence (tails + unshared caches).
    pub private_rows_read: u64,
}

impl BatchStepStats {
    /// Total KV rows the step streamed.
    pub fn total_rows_read(&self) -> u64 {
        self.shared_rows_read + self.private_rows_read
    }

    /// Shared fraction of all row reads, in whole percent (0 if nothing
    /// was read).
    pub fn share_percent(&self) -> i64 {
        (self.shared_rows_read * 100)
            .checked_div(self.total_rows_read())
            .unwrap_or(0) as i64
    }
}

/// Reusable state for [`Model::decode_step_batch_with`]: activation
/// buffers, the attention score scratch, the CSR segment list and its
/// bounds, and the per-tick prefix grouping. Owned by the caller (the
/// batch scheduler keeps one for its lifetime), so a steady-state decode
/// tick allocates nothing on the hot path but the returned logits.
#[derive(Debug, Default)]
pub struct BatchScratch {
    x: Vec<f32>,
    normed: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    attn: Vec<f32>,
    proj: Vec<f32>,
    up: Vec<f32>,
    gate: Vec<f32>,
    down: Vec<f32>,
    logits: Vec<f32>,
    scores: Vec<f32>,
    seg_bounds: Vec<usize>,
    groups: Vec<PrefixGroup>,
    seg_pool: SegListPool,
    pos_pool: PosListPool,
    stats: BatchStepStats,
}

impl BatchScratch {
    /// Fresh, empty scratch; buffers grow to fit on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Row-traffic stats of the most recent step run with this scratch.
    pub fn stats(&self) -> BatchStepStats {
        self.stats
    }

    /// The prefix groups computed for the most recent step (empty when
    /// prefix sharing was off or the batch was empty).
    pub fn groups(&self) -> &[PrefixGroup] {
        &self.groups
    }
}

/// Grows `buf` to at least `len` and returns the `len`-prefix. Contents
/// beyond what the caller overwrites are stale by design — every user
/// below fully writes its window before reading.
fn sized(buf: &mut Vec<f32>, len: usize) -> &mut [f32] {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    &mut buf[..len]
}

/// A decoder-only transformer with seeded random weights.
///
/// Every forward call takes explicit position IDs, which is the engine-side
/// requirement of Prompt Cache (§4.2): positions may be discontinuous, may
/// start anywhere, and are independent of cache indices.
#[derive(Debug, Clone)]
pub struct Model {
    cfg: ModelConfig,
    weights: ModelWeights,
    rope: Option<RopeTable>,
    alibi: Option<AlibiTable>,
    telemetry: Telemetry,
}

impl Model {
    /// Builds a model with weights initialised from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`ModelConfig::validated`]; construct configs
    /// through the presets or validate custom ones first.
    pub fn new(cfg: ModelConfig, seed: u64) -> Self {
        let cfg = cfg.validated().expect("invalid model config");
        let weights = ModelWeights::init(&cfg, seed);
        let rope = matches!(cfg.family, Family::Llama | Family::Falcon)
            .then(|| RopeTable::new(cfg.head_dim(), cfg.max_position, cfg.rope_theta));
        let alibi =
            matches!(cfg.family, Family::Mpt).then(|| AlibiTable::new(cfg.num_heads));
        Model {
            cfg,
            weights,
            rope,
            alibi,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle; per-layer attention/MLP timings are
    /// recorded into `pc_model_attention_seconds` /
    /// `pc_model_mlp_seconds` histograms on sampled forward passes.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the telemetry handle in place (see [`Model::with_telemetry`]).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The model's weights (read-only; used by fidelity tests).
    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }

    /// The model's RoPE table, if the family uses rotary positions —
    /// `None` for ALiBi/learned families. The engine hands this to the
    /// deferred-RoPE read path (shifted [`crate::KvView`] segments and
    /// copy-mode placement rotation).
    pub fn rope(&self) -> Option<&RopeTable> {
        self.rope.as_ref()
    }

    /// Runs the transformer over `tokens` at `positions`, appending their
    /// `(k, v)` states to `cache`, and returns logits for **every** chunk
    /// token as a `[tokens × vocab]` tensor.
    ///
    /// # Errors
    ///
    /// Rejects mismatched slice lengths, out-of-vocab tokens, positions at
    /// or beyond `max_position`, and caches shaped for another model.
    ///
    /// Generic over [`KvSeq`]: pass a flat [`KvCache`] or a segmented
    /// [`crate::KvView`] — results are bit-identical either way.
    pub fn forward<K: KvSeq>(
        &self,
        tokens: &[TokenId],
        positions: &[usize],
        cache: &mut K,
    ) -> Result<Tensor> {
        let hidden = self.run_hidden(tokens, positions, cache)?;
        let n = tokens.len();
        let d = self.cfg.hidden_size;
        let v = self.cfg.vocab_size;
        let mut logits = vec![0.0f32; n * v];
        ops::matmul_transb_slices_par(
            &hidden,
            self.weights.embedding.data(),
            &mut logits,
            n,
            d,
            v,
            &self.cfg.parallelism,
        );
        Tensor::from_vec(logits, &[n, v]).map_err(|e| ModelError::InvalidConfig {
            detail: e.to_string(),
        })
    }

    /// Prefill variant that computes logits only for the **last** token —
    /// what a serving engine actually needs before decoding starts. This is
    /// the timed region of every TTFT measurement in the benches.
    ///
    /// # Errors
    ///
    /// Same contract as [`Model::forward`], plus [`ModelError::EmptyInput`]
    /// for an empty chunk.
    pub fn prefill<K: KvSeq>(
        &self,
        tokens: &[TokenId],
        positions: &[usize],
        cache: &mut K,
    ) -> Result<Vec<f32>> {
        if tokens.is_empty() {
            return Err(ModelError::EmptyInput);
        }
        let hidden = self.run_hidden(tokens, positions, cache)?;
        let n = tokens.len();
        let d = self.cfg.hidden_size;
        let v = self.cfg.vocab_size;
        let mut logits = vec![0.0f32; v];
        ops::matmul_transb_slices_par(
            &hidden[(n - 1) * d..n * d],
            self.weights.embedding.data(),
            &mut logits,
            1,
            d,
            v,
            &self.cfg.parallelism,
        );
        Ok(logits)
    }

    /// Runs the transformer for its attention states only (no logits) —
    /// the prompt-module *encoding* operation of §3.3.
    ///
    /// # Errors
    ///
    /// Same contract as [`Model::forward`].
    pub fn encode<K: KvSeq>(
        &self,
        tokens: &[TokenId],
        positions: &[usize],
        cache: &mut K,
    ) -> Result<()> {
        self.run_hidden(tokens, positions, cache).map(|_| ())
    }

    /// Encodes a token span into a fresh, standalone [`KvCache`] — the
    /// paper's prompt-module encoding: attention is confined to the span
    /// (the "attention masking effect" of §3.3 falls out of the fresh
    /// cache), and positions carry the schema-assigned ids.
    ///
    /// # Errors
    ///
    /// Same contract as [`Model::forward`].
    pub fn encode_segment(&self, tokens: &[TokenId], positions: &[usize]) -> Result<KvCache> {
        let mut cache = KvCache::new(&self.cfg);
        self.encode(tokens, positions, &mut cache)?;
        Ok(cache)
    }

    /// Greedy/temperature decoding loop: samples from `last_logits`, feeds
    /// tokens back at sequentially increasing positions, and stops at
    /// `max_new_tokens` or when `eos` is produced.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors (e.g. positions exhausting
    /// `max_position`).
    pub fn generate<K: KvSeq>(
        &self,
        cache: &mut K,
        last_logits: &[f32],
        max_new_tokens: usize,
        eos: Option<TokenId>,
        sampler: &mut dyn Sampler,
    ) -> Result<Vec<TokenId>> {
        let mut produced = Vec::new();
        let mut logits = last_logits.to_vec();
        let first_pos = cache.positions().iter().max().map_or(0, |p| p + 1);
        for next_pos in first_pos..first_pos + max_new_tokens {
            let token = sampler.sample(&logits);
            produced.push(token);
            if Some(token) == eos {
                break;
            }
            logits = self.prefill(&[token], &[next_pos], cache)?;
        }
        Ok(produced)
    }

    /// One batched decode step: advances `n` independent sequences by one
    /// token each in a single forward pass.
    ///
    /// Sequence `i` contributes `tokens[i]` at `positions[i]`, its k/v
    /// states append to `caches[i]`, and entry `i` of the returned vector
    /// holds its next-token logits (length = vocab). Activations for the
    /// whole batch stack into `[n × hidden]` blocks so every weight
    /// matrix is traversed **once per step** instead of once per sequence
    /// ([`pc_tensor::ops::matmul_transb_batched_par`]); attention runs
    /// per sequence over its own segmented cache
    /// ([`attention_decode_batch`]), so shared module blocks stay
    /// zero-copy across batch members.
    ///
    /// **Bit-identity.** Every per-sequence output is computed by the
    /// identical scalar code the solo [`Model::prefill`] decode step runs
    /// (same dot kernel, same per-row norms/rope, same attention horizon),
    /// so a batched step is byte-identical to `n` solo steps — the
    /// invariant the engine's batching tests assert exactly.
    ///
    /// # Errors
    ///
    /// Same per-sequence contract as [`Model::forward`]; also rejects
    /// mismatched `tokens`/`positions`/`caches` lengths. An empty batch
    /// returns an empty vector.
    pub fn decode_step_batch<K: KvSeq>(
        &self,
        tokens: &[TokenId],
        positions: &[usize],
        caches: &mut [&mut K],
    ) -> Result<Vec<Vec<f32>>> {
        self.decode_step_batch_with(tokens, positions, caches, &mut BatchScratch::new(), true)
    }

    /// [`Model::decode_step_batch`] with caller-owned scratch and an
    /// explicit prefix-sharing switch — the entry point the batch
    /// scheduler drives every tick.
    ///
    /// With `prefix_sharing` on, adjacent batch rows whose caches share a
    /// leading run of pointer-identical segments (see
    /// [`group_adjacent_prefixes`]) are grouped once per tick — the
    /// shared segments are frozen for the tick's duration, decode rows
    /// only ever land in private tails — and attention runs through the
    /// two-phase [`attention_decode_batch_grouped`] kernel, which streams
    /// each shared K/V row **once per group** instead of once per
    /// sequence. With it off, every sequence walks its own cache
    /// ([`attention_decode_batch`]). Both paths execute identical float
    /// operations per output element, so they are bit-identical to each
    /// other and to solo decoding; the switch exists as the A/B oracle
    /// and for row-traffic comparison ([`BatchScratch::stats`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Model::decode_step_batch`].
    pub fn decode_step_batch_with<K: KvSeq>(
        &self,
        tokens: &[TokenId],
        positions: &[usize],
        caches: &mut [&mut K],
        scratch: &mut BatchScratch,
        prefix_sharing: bool,
    ) -> Result<Vec<Vec<f32>>> {
        let n = tokens.len();
        scratch.stats = BatchStepStats::default();
        scratch.groups.clear();
        if n == 0 {
            return Ok(Vec::new());
        }
        if positions.len() != n {
            return Err(ModelError::LengthMismatch {
                tokens: n,
                positions: positions.len(),
            });
        }
        if caches.len() != n {
            return Err(ModelError::CacheShapeMismatch {
                detail: format!("{} caches for a batch of {} sequences", caches.len(), n),
            });
        }
        for i in 0..n {
            self.validate(&tokens[i..i + 1], &positions[i..i + 1], &*caches[i])?;
        }
        let cfg = &self.cfg;
        let d = cfg.hidden_size;
        let kv_dim = cfg.kv_dim();
        let hd = cfg.head_dim();
        let ff = cfg.intermediate_size;
        let par = &cfg.parallelism;

        // Token embeddings (+ learned positions for GPT-2-style models),
        // one row per sequence.
        let x = sized(&mut scratch.x, n * d);
        for (i, &t) in tokens.iter().enumerate() {
            let row = &self.weights.embedding.data()[t as usize * d..(t as usize + 1) * d];
            x[i * d..(i + 1) * d].copy_from_slice(row);
        }
        if let Some(pe) = &self.weights.pos_embedding {
            for (i, &p) in positions.iter().enumerate() {
                let row = &pe.data()[p * d..(p + 1) * d];
                ops::add_assign_slice(&mut x[i * d..(i + 1) * d], row);
            }
        }
        for (i, cache) in caches.iter_mut().enumerate() {
            cache.push_position(positions[i]);
        }

        // Prefix grouping happens once per tick, not per layer: shared
        // segments are immutable while the tick runs (every row pushed
        // above and below lands in a private tail), so the grouping —
        // pure pointer identity — holds for all layers.
        if prefix_sharing {
            group_adjacent_prefixes(n, |s, i| caches[s].shared_segment_id(i), &mut scratch.groups);
        }
        let layers = self.weights.layers.len() as u64;
        let mut shared_rows = 0u64;
        let mut private_rows = 0u64;
        if prefix_sharing {
            for g in &scratch.groups {
                let members = caches[g.start..g.start + g.len].iter();
                if g.is_shared() {
                    shared_rows += g.prefix_rows as u64;
                    for c in members {
                        private_rows += (c.len() - g.prefix_rows) as u64;
                    }
                } else {
                    private_rows += members.map(|c| c.len() as u64).sum::<u64>();
                }
            }
        } else {
            private_rows = caches.iter().map(|c| c.len() as u64).sum();
        }
        scratch.stats = BatchStepStats {
            shared_rows_read: shared_rows * layers,
            private_rows_read: private_rows * layers,
        };

        let normed = sized(&mut scratch.normed, n * d);
        let q = sized(&mut scratch.q, n * d);
        let k = sized(&mut scratch.k, n * kv_dim);
        let v = sized(&mut scratch.v, n * kv_dim);
        let attn = sized(&mut scratch.attn, n * d);
        let proj = sized(&mut scratch.proj, n * d);
        let up = sized(&mut scratch.up, n * ff);
        let gate = sized(&mut scratch.gate, n * ff);
        let down = sized(&mut scratch.down, n * d);

        for (layer_idx, lw) in self.weights.layers.iter().enumerate() {
            // --- attention path ---
            normed.copy_from_slice(x);
            self.apply_norm(normed, &lw.norm1_w, &lw.norm1_b);

            ops::matmul_transb_batched_par(normed, lw.wq.data(), q, n, d, d, par);
            ops::matmul_transb_batched_par(normed, lw.wk.data(), k, n, d, kv_dim, par);
            ops::matmul_transb_batched_par(normed, lw.wv.data(), v, n, d, kv_dim, par);

            if let Some(rope) = &self.rope {
                for i in 0..n {
                    let pos = positions[i];
                    for h in 0..cfg.num_heads {
                        rope.apply(&mut q[i * d + h * hd..i * d + (h + 1) * hd], pos);
                    }
                    for h in 0..cfg.num_kv_heads {
                        rope.apply(&mut k[i * kv_dim + h * hd..i * kv_dim + (h + 1) * hd], pos);
                    }
                }
            }

            for (i, cache) in caches.iter_mut().enumerate() {
                cache.push_token_layer(
                    layer_idx,
                    &k[i * kv_dim..(i + 1) * kv_dim],
                    &v[i * kv_dim..(i + 1) * kv_dim],
                );
            }

            // Each sequence's cache is read as physical segments in place
            // (module blocks shared between batch members are never
            // copied), gathered into one pooled CSR list: sequence `s`
            // owns `segs[seg_bounds[s]..seg_bounds[s + 1]]`. The pools
            // recycle the allocations across layers and ticks.
            let mut segs = scratch.seg_pool.take();
            let mut key_pos = scratch.pos_pool.take();
            scratch.seg_bounds.clear();
            for cache in caches.iter() {
                scratch.seg_bounds.push(segs.len());
                cache.layer_segments_into(layer_idx, &mut segs);
                key_pos.push(cache.positions());
            }
            scratch.seg_bounds.push(segs.len());
            if prefix_sharing {
                attention_decode_batch_grouped(
                    cfg,
                    q,
                    positions,
                    &segs,
                    &scratch.seg_bounds,
                    &key_pos,
                    &scratch.groups,
                    self.rope.as_ref(),
                    self.alibi.as_ref(),
                    &mut scratch.scores,
                    attn,
                );
            } else {
                attention_decode_batch(
                    cfg,
                    q,
                    positions,
                    &segs,
                    &scratch.seg_bounds,
                    &key_pos,
                    self.rope.as_ref(),
                    self.alibi.as_ref(),
                    &mut scratch.scores,
                    attn,
                );
            }
            scratch.seg_pool.put(segs);
            scratch.pos_pool.put(key_pos);
            ops::matmul_transb_batched_par(attn, lw.wo.data(), proj, n, d, d, par);

            if matches!(cfg.family, Family::Falcon) {
                self.mlp_batched(lw, normed, up, gate, down, n);
                ops::add_assign_slice(x, proj);
                ops::add_assign_slice(x, down);
            } else {
                ops::add_assign_slice(x, proj);
                normed.copy_from_slice(x);
                self.apply_norm(normed, &lw.norm2_w, &lw.norm2_b);
                self.mlp_batched(lw, normed, up, gate, down, n);
                ops::add_assign_slice(x, down);
            }
        }

        self.apply_norm(x, &self.weights.final_norm_w, &self.weights.final_norm_b);

        // Logits for every sequence in one traversal of the (large)
        // embedding matrix.
        let vocab = cfg.vocab_size;
        let logits = sized(&mut scratch.logits, n * vocab);
        ops::matmul_transb_batched_par(x, self.weights.embedding.data(), logits, n, d, vocab, par);
        Ok(logits.chunks_exact(vocab).map(<[f32]>::to_vec).collect())
    }

    /// The shared transformer body. Returns final-norm hidden states,
    /// `[tokens × hidden]` flattened.
    fn run_hidden<K: KvSeq>(
        &self,
        tokens: &[TokenId],
        positions: &[usize],
        cache: &mut K,
    ) -> Result<Vec<f32>> {
        self.validate(tokens, positions, cache)?;
        let cfg = &self.cfg;
        let n = tokens.len();
        let d = cfg.hidden_size;
        let kv_dim = cfg.kv_dim();
        let hd = cfg.head_dim();
        let ff = cfg.intermediate_size;
        let par = &cfg.parallelism;
        let base = cache.len();

        // Token embeddings (+ learned positions for GPT-2-style models).
        let mut x = vec![0.0f32; n * d];
        for (i, &t) in tokens.iter().enumerate() {
            let row = &self.weights.embedding.data()[t as usize * d..(t as usize + 1) * d];
            x[i * d..(i + 1) * d].copy_from_slice(row);
        }
        if let Some(pe) = &self.weights.pos_embedding {
            for (i, &p) in positions.iter().enumerate() {
                let row = &pe.data()[p * d..(p + 1) * d];
                ops::add_assign_slice(&mut x[i * d..(i + 1) * d], row);
            }
        }

        for &p in positions {
            cache.push_position(p);
        }

        // Reusable scratch buffers.
        let mut normed = vec![0.0f32; n * d];
        let mut q = vec![0.0f32; n * d];
        let mut k = vec![0.0f32; n * kv_dim];
        let mut v = vec![0.0f32; n * kv_dim];
        let mut attn = vec![0.0f32; n * d];
        let mut proj = vec![0.0f32; n * d];
        let mut up = vec![0.0f32; n * ff];
        let mut gate = vec![0.0f32; n * ff];
        let mut down = vec![0.0f32; n * d];

        // Timing is sampled: most passes skip every clock read below.
        let timed = self.telemetry.should_sample(LAYER_TIMING_SAMPLE_EVERY);
        let mut attn_time = Duration::ZERO;
        let mut mlp_time = Duration::ZERO;

        for (layer_idx, lw) in self.weights.layers.iter().enumerate() {
            // --- attention path ---
            let attn_start = timed.then(Instant::now);
            normed.copy_from_slice(&x);
            self.apply_norm(&mut normed, &lw.norm1_w, &lw.norm1_b);

            ops::matmul_transb_slices_par(&normed, lw.wq.data(), &mut q, n, d, d, par);
            ops::matmul_transb_slices_par(&normed, lw.wk.data(), &mut k, n, d, kv_dim, par);
            ops::matmul_transb_slices_par(&normed, lw.wv.data(), &mut v, n, d, kv_dim, par);

            if let Some(rope) = &self.rope {
                for i in 0..n {
                    let pos = positions[i];
                    for h in 0..cfg.num_heads {
                        rope.apply(&mut q[i * d + h * hd..i * d + (h + 1) * hd], pos);
                    }
                    for h in 0..cfg.num_kv_heads {
                        rope.apply(&mut k[i * kv_dim + h * hd..i * kv_dim + (h + 1) * hd], pos);
                    }
                }
            }

            for i in 0..n {
                cache.push_token_layer(
                    layer_idx,
                    &k[i * kv_dim..(i + 1) * kv_dim],
                    &v[i * kv_dim..(i + 1) * kv_dim],
                );
            }

            // The kernel reads the cache as physical segments in place —
            // shared module blocks in a `KvView` are never copied here.
            let kv_segments = cache.layer_segments(layer_idx);
            attention_chunk_segments(
                cfg,
                &q,
                positions,
                &kv_segments,
                cache.positions(),
                base,
                self.rope.as_ref(),
                self.alibi.as_ref(),
                &mut attn,
            );
            ops::matmul_transb_slices_par(&attn, lw.wo.data(), &mut proj, n, d, d, par);
            if let Some(t) = attn_start {
                attn_time += t.elapsed();
            }

            if matches!(cfg.family, Family::Falcon) {
                // Parallel block: MLP reads the same normed input; both
                // paths add to the residual stream together.
                let mlp_start = timed.then(Instant::now);
                self.mlp(lw, &normed, &mut up, &mut gate, &mut down, n);
                if let Some(t) = mlp_start {
                    mlp_time += t.elapsed();
                }
                ops::add_assign_slice(&mut x, &proj);
                ops::add_assign_slice(&mut x, &down);
            } else {
                ops::add_assign_slice(&mut x, &proj);
                let mlp_start = timed.then(Instant::now);
                normed.copy_from_slice(&x);
                self.apply_norm(&mut normed, &lw.norm2_w, &lw.norm2_b);
                self.mlp(lw, &normed, &mut up, &mut gate, &mut down, n);
                if let Some(t) = mlp_start {
                    mlp_time += t.elapsed();
                }
                ops::add_assign_slice(&mut x, &down);
            }
        }

        if timed {
            self.telemetry
                .latency_histogram("pc_model_attention_seconds")
                .observe(attn_time.as_secs_f64());
            self.telemetry
                .latency_histogram("pc_model_mlp_seconds")
                .observe(mlp_time.as_secs_f64());
        }

        self.apply_norm(&mut x, &self.weights.final_norm_w, &self.weights.final_norm_b);
        Ok(x)
    }

    fn apply_norm(&self, x: &mut [f32], w: &Tensor, b: &Tensor) {
        let d = self.cfg.hidden_size;
        for row in x.chunks_exact_mut(d) {
            if matches!(self.cfg.family, Family::Llama) {
                ops::rms_norm_slice(row, w.data(), self.cfg.norm_eps);
            } else {
                ops::layer_norm_slice(row, w.data(), b.data(), self.cfg.norm_eps);
            }
        }
    }

    fn mlp(
        &self,
        lw: &crate::LayerWeights,
        input: &[f32],
        up: &mut [f32],
        gate: &mut [f32],
        down: &mut [f32],
        n: usize,
    ) {
        let d = self.cfg.hidden_size;
        let ff = self.cfg.intermediate_size;
        let par = &self.cfg.parallelism;
        ops::matmul_transb_slices_par(input, lw.w_up.data(), up, n, d, ff, par);
        if matches!(self.cfg.family, Family::Llama) {
            ops::matmul_transb_slices_par(input, lw.w_gate.data(), gate, n, d, ff, par);
            ops::silu_slice(gate);
            for (u, &g) in up.iter_mut().zip(gate.iter()) {
                *u *= g;
            }
        } else {
            ops::gelu_slice(up);
        }
        ops::matmul_transb_slices_par(up, lw.w_down.data(), down, n, ff, d, par);
    }

    /// [`Model::mlp`] with the batched (weight-row-outer) kernels — used
    /// by [`Model::decode_step_batch`], where the `n` rows are one token
    /// from each of `n` sequences. Bit-identical to `mlp` per row.
    fn mlp_batched(
        &self,
        lw: &crate::LayerWeights,
        input: &[f32],
        up: &mut [f32],
        gate: &mut [f32],
        down: &mut [f32],
        n: usize,
    ) {
        let d = self.cfg.hidden_size;
        let ff = self.cfg.intermediate_size;
        let par = &self.cfg.parallelism;
        ops::matmul_transb_batched_par(input, lw.w_up.data(), up, n, d, ff, par);
        if matches!(self.cfg.family, Family::Llama) {
            ops::matmul_transb_batched_par(input, lw.w_gate.data(), gate, n, d, ff, par);
            ops::silu_slice(gate);
            for (u, &g) in up.iter_mut().zip(gate.iter()) {
                *u *= g;
            }
        } else {
            ops::gelu_slice(up);
        }
        ops::matmul_transb_batched_par(up, lw.w_down.data(), down, n, ff, d, par);
    }

    fn validate<K: KvSeq>(&self, tokens: &[TokenId], positions: &[usize], cache: &K) -> Result<()> {
        if tokens.len() != positions.len() {
            return Err(ModelError::LengthMismatch {
                tokens: tokens.len(),
                positions: positions.len(),
            });
        }
        for &t in tokens {
            if t as usize >= self.cfg.vocab_size {
                return Err(ModelError::TokenOutOfVocab {
                    token: t,
                    vocab_size: self.cfg.vocab_size,
                });
            }
        }
        for &p in positions {
            if p >= self.cfg.max_position {
                return Err(ModelError::PositionOutOfRange {
                    position: p,
                    max_position: self.cfg.max_position,
                });
            }
        }
        if cache.num_layers() != self.cfg.num_layers || cache.kv_dim() != self.cfg.kv_dim() {
            return Err(ModelError::CacheShapeMismatch {
                detail: format!(
                    "cache {} layers × kv_dim {}, model {} layers × kv_dim {}",
                    cache.num_layers(),
                    cache.kv_dim(),
                    self.cfg.num_layers,
                    self.cfg.kv_dim()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GreedySampler;

    fn all_families() -> Vec<ModelConfig> {
        vec![
            ModelConfig::llama_tiny(64),
            ModelConfig::falcon_tiny(64),
            ModelConfig::mpt_tiny(64),
            ModelConfig::gpt2_tiny(64),
        ]
    }

    #[test]
    fn forward_shapes() {
        for cfg in all_families() {
            let model = Model::new(cfg, 1);
            let mut cache = KvCache::new(model.config());
            let logits = model.forward(&[1, 2, 3], &[0, 1, 2], &mut cache).unwrap();
            assert_eq!(logits.dims(), &[3, 64]);
            assert_eq!(cache.len(), 3);
            assert!(logits.all_finite());
        }
    }

    #[test]
    fn chunked_prefill_matches_single_chunk() {
        // The KV-cache identity: prefilling [a,b,c,d] in one chunk equals
        // prefilling [a,b] then [c,d] with the cache carried over.
        for cfg in all_families() {
            let model = Model::new(cfg.clone(), 7);
            let tokens = [5u32, 9, 13, 21];
            let positions = [0usize, 1, 2, 3];

            let mut full_cache = KvCache::new(&cfg);
            let full = model.forward(&tokens, &positions, &mut full_cache).unwrap();

            let mut inc_cache = KvCache::new(&cfg);
            model
                .forward(&tokens[..2], &positions[..2], &mut inc_cache)
                .unwrap();
            let part = model
                .forward(&tokens[2..], &positions[2..], &mut inc_cache)
                .unwrap();

            let full_last = full.row(3).unwrap();
            let part_last = part.row(1).unwrap();
            for (a, b) in full_last.iter().zip(part_last) {
                assert!((a - b).abs() < 1e-3, "family {:?}", cfg.family);
            }
            assert_eq!(full_cache.len(), inc_cache.len());
        }
    }

    #[test]
    fn token_by_token_matches_prefill() {
        for cfg in all_families() {
            let model = Model::new(cfg.clone(), 3);
            let tokens = [2u32, 4, 8];
            let mut a = KvCache::new(&cfg);
            let full = model.forward(&tokens, &[0, 1, 2], &mut a).unwrap();
            let mut b = KvCache::new(&cfg);
            let mut last = Vec::new();
            for (i, &t) in tokens.iter().enumerate() {
                last = model.prefill(&[t], &[i], &mut b).unwrap();
            }
            for (x, y) in full.row(2).unwrap().iter().zip(&last) {
                assert!((x - y).abs() < 1e-3, "family {:?}", cfg.family);
            }
        }
    }

    #[test]
    fn prefill_last_logits_match_forward() {
        let cfg = ModelConfig::llama_tiny(64);
        let model = Model::new(cfg.clone(), 11);
        let mut a = KvCache::new(&cfg);
        let full = model.forward(&[1, 2, 3], &[0, 1, 2], &mut a).unwrap();
        let mut b = KvCache::new(&cfg);
        let last = model.prefill(&[1, 2, 3], &[0, 1, 2], &mut b).unwrap();
        assert_eq!(full.row(2).unwrap(), &last[..]);
    }

    #[test]
    fn rope_shift_invariance_of_next_token() {
        // Same token sequence encoded at positions 0..4 and 100..104 must
        // yield (nearly) identical next-token logits for relative schemes.
        for cfg in [ModelConfig::llama_tiny(64), ModelConfig::mpt_tiny(64)] {
            let model = Model::new(cfg.clone(), 5);
            let tokens = [3u32, 1, 4, 1];
            let mut a = KvCache::new(&cfg);
            let la = model.prefill(&tokens, &[0, 1, 2, 3], &mut a).unwrap();
            let mut b = KvCache::new(&cfg);
            let lb = model
                .prefill(&tokens, &[100, 101, 102, 103], &mut b)
                .unwrap();
            let max_diff = la
                .iter()
                .zip(&lb)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(max_diff < 1e-2, "family {:?}: {max_diff}", cfg.family);
        }
    }

    #[test]
    fn learned_positions_are_not_shift_invariant() {
        let cfg = ModelConfig::gpt2_tiny(64);
        let model = Model::new(cfg.clone(), 5);
        let tokens = [3u32, 1, 4, 1];
        let mut a = KvCache::new(&cfg);
        let la = model.prefill(&tokens, &[0, 1, 2, 3], &mut a).unwrap();
        let mut b = KvCache::new(&cfg);
        let lb = model
            .prefill(&tokens, &[100, 101, 102, 103], &mut b)
            .unwrap();
        let max_diff = la
            .iter()
            .zip(&lb)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff > 1e-3);
    }

    #[test]
    fn discontinuous_positions_accepted() {
        let cfg = ModelConfig::llama_tiny(64);
        let model = Model::new(cfg.clone(), 2);
        let mut cache = KvCache::new(&cfg);
        // Gap between 2 and 57 — the Prompt Cache layout.
        let logits = model
            .forward(&[1, 2, 3, 4], &[0, 1, 2, 57], &mut cache)
            .unwrap();
        assert!(logits.all_finite());
        assert_eq!(cache.positions(), &[0, 1, 2, 57]);
    }

    #[test]
    fn validation_errors() {
        let cfg = ModelConfig::llama_tiny(16);
        let model = Model::new(cfg.clone(), 0);
        let mut cache = KvCache::new(&cfg);
        assert!(matches!(
            model.forward(&[1, 2], &[0], &mut cache),
            Err(ModelError::LengthMismatch { .. })
        ));
        assert!(matches!(
            model.forward(&[99], &[0], &mut cache),
            Err(ModelError::TokenOutOfVocab { .. })
        ));
        assert!(matches!(
            model.forward(&[1], &[99_999], &mut cache),
            Err(ModelError::PositionOutOfRange { .. })
        ));
        let mut wrong = KvCache::with_shape(1, 4);
        assert!(matches!(
            model.forward(&[1], &[0], &mut wrong),
            Err(ModelError::CacheShapeMismatch { .. })
        ));
        assert!(matches!(
            model.prefill(&[], &[], &mut cache),
            Err(ModelError::EmptyInput)
        ));
    }

    #[test]
    fn generate_is_deterministic_and_bounded() {
        let cfg = ModelConfig::llama_tiny(64);
        let model = Model::new(cfg.clone(), 13);
        let run = || {
            let mut cache = KvCache::new(&cfg);
            let logits = model.prefill(&[7, 8, 9], &[0, 1, 2], &mut cache).unwrap();
            model
                .generate(&mut cache, &logits, 8, None, &mut GreedySampler)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|&t| (t as usize) < 64));
    }

    #[test]
    fn generate_stops_at_eos() {
        let cfg = ModelConfig::llama_tiny(64);
        let model = Model::new(cfg.clone(), 13);
        let mut cache = KvCache::new(&cfg);
        let logits = model.prefill(&[7, 8, 9], &[0, 1, 2], &mut cache).unwrap();
        // Use the first generated token itself as "eos": generation must
        // stop immediately after producing it.
        let first = model
            .generate(&mut cache.clone(), &logits, 1, None, &mut GreedySampler)
            .unwrap()[0];
        let out = model
            .generate(&mut cache, &logits, 8, Some(first), &mut GreedySampler)
            .unwrap();
        assert_eq!(out, vec![first]);
    }

    #[test]
    fn encode_segment_is_standalone() {
        let cfg = ModelConfig::llama_tiny(64);
        let model = Model::new(cfg.clone(), 1);
        let seg = model.encode_segment(&[1, 2, 3], &[10, 11, 12]).unwrap();
        assert_eq!(seg.len(), 3);
        assert_eq!(seg.positions(), &[10, 11, 12]);
        assert_eq!(seg.num_layers(), cfg.num_layers);
    }

    #[test]
    fn layer_timing_recorded_when_telemetry_enabled() {
        let telemetry = Telemetry::new();
        let cfg = ModelConfig::llama_tiny(64);
        let model = Model::new(cfg.clone(), 1).with_telemetry(telemetry.clone());
        let mut cache = KvCache::new(&cfg);
        // First forward pass is always sampled (`should_sample` fires on 0).
        model.forward(&[1, 2, 3], &[0, 1, 2], &mut cache).unwrap();
        let snap = telemetry.snapshot();
        let names: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
        assert!(names.contains(&"pc_model_attention_seconds"), "{names:?}");
        assert!(names.contains(&"pc_model_mlp_seconds"), "{names:?}");
        for h in &snap.histograms {
            assert_eq!(h.count, 1);
        }
    }

    #[test]
    fn batched_decode_step_matches_solo_prefill_bitwise() {
        // N sequences with different prompts (hence different cache
        // lengths) advanced by one batched step must produce exactly the
        // logits and cache states N solo single-token prefills produce.
        for cfg in all_families() {
            let model = Model::new(cfg.clone(), 17);
            let prompts: [&[u32]; 4] = [&[5, 9], &[13, 21, 2], &[7], &[3, 1, 4, 1]];

            // Solo reference: prefill each prompt, then one more token.
            let mut solo_caches = Vec::new();
            let mut next_tokens = Vec::new();
            for prompt in prompts {
                let positions: Vec<usize> = (0..prompt.len()).collect();
                let mut cache = KvCache::new(&cfg);
                let logits = model.prefill(prompt, &positions, &mut cache).unwrap();
                next_tokens.push(GreedySampler.sample(&logits));
                solo_caches.push(cache);
            }
            let mut batch_caches = solo_caches.clone();
            let positions: Vec<usize> = prompts.iter().map(|p| p.len()).collect();

            let mut solo_logits = Vec::new();
            for (i, cache) in solo_caches.iter_mut().enumerate() {
                solo_logits
                    .push(model.prefill(&[next_tokens[i]], &[positions[i]], cache).unwrap());
            }

            let mut refs: Vec<&mut KvCache> = batch_caches.iter_mut().collect();
            let batch_logits = model
                .decode_step_batch(&next_tokens, &positions, &mut refs)
                .unwrap();

            assert_eq!(batch_logits, solo_logits, "family {:?}", cfg.family);
            assert_eq!(batch_caches, solo_caches, "family {:?}", cfg.family);
        }
    }

    #[test]
    fn batched_decode_step_size_one_matches_solo() {
        let cfg = ModelConfig::llama_tiny(64);
        let model = Model::new(cfg.clone(), 23);
        let mut solo = KvCache::new(&cfg);
        model.prefill(&[7, 8], &[0, 1], &mut solo).unwrap();
        let mut batched = solo.clone();
        let expect = model.prefill(&[9], &[2], &mut solo).unwrap();
        let mut refs: Vec<&mut KvCache> = vec![&mut batched];
        let got = model.decode_step_batch(&[9], &[2], &mut refs).unwrap();
        assert_eq!(got, vec![expect]);
        assert_eq!(batched, solo);
    }

    #[test]
    fn batched_decode_step_validates_shapes() {
        let cfg = ModelConfig::llama_tiny(16);
        let model = Model::new(cfg.clone(), 0);
        let mut a = KvCache::new(&cfg);
        let mut b = KvCache::new(&cfg);
        let empty: Vec<Vec<f32>> = model
            .decode_step_batch::<KvCache>(&[], &[], &mut [])
            .unwrap();
        assert!(empty.is_empty());
        assert!(matches!(
            model.decode_step_batch(&[1, 2], &[0], &mut [&mut a, &mut b]),
            Err(ModelError::LengthMismatch { .. })
        ));
        assert!(matches!(
            model.decode_step_batch(&[1, 2], &[0, 0], &mut [&mut a]),
            Err(ModelError::CacheShapeMismatch { .. })
        ));
        assert!(matches!(
            model.decode_step_batch(&[99], &[0], &mut [&mut a]),
            Err(ModelError::TokenOutOfVocab { .. })
        ));
    }

    #[test]
    fn segment_encoding_matches_prefix_prefill() {
        // Encoding a segment at positions 0..n in a fresh cache is exactly
        // a prefill of the same tokens: byte-identical attention states.
        for cfg in all_families() {
            let model = Model::new(cfg.clone(), 21);
            let tokens = [4u32, 7, 2, 9];
            let positions = [0usize, 1, 2, 3];
            let seg = model.encode_segment(&tokens, &positions).unwrap();
            let mut cache = KvCache::new(&cfg);
            model.encode(&tokens, &positions, &mut cache).unwrap();
            assert_eq!(seg, cache, "family {:?}", cfg.family);
        }
    }
}
