//! Positional encodings with explicit position-ID lookup (paper §4.2).
//!
//! The paper's key implementation requirement is support for
//! **discontinuous position IDs**: a prompt module cached at positions
//! 110..160 must produce exactly the states a full prefill would have
//! produced there. For RoPE the paper builds "a lookup table for each
//! rotation matrix, enabling retrieval based on position IDs"; for ALiBi,
//! "a lookup table to adjust the bias matrix according to the provided
//! position IDs". [`RopeTable`] and [`AlibiTable`] are those tables.

use crate::config::PositionScheme;

/// Re-export so `pc-cache`/`prompt-cache` can dispatch on the scheme.
pub use crate::config::PositionScheme as PositionEncoding;

/// Precomputed rotary-embedding table: `cos`/`sin` of every
/// (position, frequency) pair up to `max_position`.
#[derive(Debug, Clone)]
pub struct RopeTable {
    half_dim: usize,
    max_position: usize,
    cos: Vec<f32>, // [max_position][half_dim]
    sin: Vec<f32>,
}

impl RopeTable {
    /// Builds the table for heads of dimension `head_dim` (must be even)
    /// with base frequency `theta`.
    pub fn new(head_dim: usize, max_position: usize, theta: f32) -> Self {
        assert!(head_dim.is_multiple_of(2), "RoPE requires an even head dimension");
        let half_dim = head_dim / 2;
        let mut cos = Vec::with_capacity(max_position * half_dim);
        let mut sin = Vec::with_capacity(max_position * half_dim);
        for pos in 0..max_position {
            for i in 0..half_dim {
                let freq = theta.powf(-2.0 * i as f32 / head_dim as f32);
                let angle = pos as f32 * freq;
                cos.push(angle.cos());
                sin.push(angle.sin());
            }
        }
        RopeTable {
            half_dim,
            max_position,
            cos,
            sin,
        }
    }

    /// Largest representable position (exclusive).
    pub fn max_position(&self) -> usize {
        self.max_position
    }

    /// Head dimension the table was built for (`2 × half_dim`).
    pub fn head_dim(&self) -> usize {
        self.half_dim * 2
    }

    /// Rotates one head vector (`2 × half_dim` values, pair layout
    /// `[x0, x1, …, x_{h-1}, y0, …, y_{h-1}]` — the "rotate-half" layout
    /// Llama uses) in place, at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= max_position` — the engine validates positions
    /// before reaching this hot path.
    pub fn apply(&self, head: &mut [f32], pos: usize) {
        debug_assert_eq!(head.len(), self.half_dim * 2);
        assert!(pos < self.max_position, "position {pos} out of table range");
        let base = pos * self.half_dim;
        let (xs, ys) = head.split_at_mut(self.half_dim);
        for i in 0..self.half_dim {
            let (c, s) = (self.cos[base + i], self.sin[base + i]);
            let (x, y) = (xs[i], ys[i]);
            xs[i] = x * c - y * s;
            ys[i] = x * s + y * c;
        }
    }

    /// Rotates one head vector by a relative `shift`, composing with
    /// whatever rotation the vector already carries: rotation matrices at
    /// a fixed frequency commute and add angles, so
    /// `R(p + Δ) = R(Δ) · R(p)` and a key encoded at canonical position
    /// `p` becomes the key at placed position `p + Δ` with one extra
    /// rotation. Negative shifts rotate backwards (same magnitude row,
    /// sine negated — `R(-Δ) = R(Δ)ᵀ`).
    ///
    /// # Panics
    ///
    /// Panics if `|shift| >= max_position`.
    pub fn apply_shift(&self, head: &mut [f32], shift: isize) {
        debug_assert_eq!(head.len(), self.half_dim * 2);
        let (cos, sin, sign) = self.shift_row(shift);
        let (xs, ys) = head.split_at_mut(self.half_dim);
        for i in 0..self.half_dim {
            let (c, s) = (cos[i], sign * sin[i]);
            let (x, y) = (xs[i], ys[i]);
            xs[i] = x * c - y * s;
            ys[i] = x * s + y * c;
        }
    }

    /// The table row for a relative `shift`: the `|Δ|` cos/sin rows plus
    /// the sine sign (`-1.0` for backward shifts). Attention kernels feed
    /// these straight into `pc_tensor::ops::dot_rotated` so every key row
    /// of a shifted segment reuses one row lookup.
    ///
    /// # Panics
    ///
    /// Panics if `|shift| >= max_position`.
    pub fn shift_row(&self, shift: isize) -> (&[f32], &[f32], f32) {
        let magnitude = shift.unsigned_abs();
        assert!(magnitude < self.max_position, "shift {shift} out of table range");
        let base = magnitude * self.half_dim;
        let row = base..base + self.half_dim;
        let sign = if shift < 0 { -1.0 } else { 1.0 };
        (&self.cos[row.clone()], &self.sin[row], sign)
    }
}

/// Precomputed ALiBi slopes, one per attention head, with bias lookup by
/// (query position, key position).
#[derive(Debug, Clone)]
pub struct AlibiTable {
    slopes: Vec<f32>,
}

impl AlibiTable {
    /// Computes the standard ALiBi slope set `2^(-8i/n)` for `num_heads`
    /// heads (the geometric sequence from the ALiBi paper, exact when
    /// `num_heads` is a power of two and interpolated otherwise).
    pub fn new(num_heads: usize) -> Self {
        let slopes = Self::slopes_for(num_heads);
        AlibiTable { slopes }
    }

    fn slopes_for(n: usize) -> Vec<f32> {
        // For powers of two: start = 2^(-8/n), ratio = start.
        fn pow2_slopes(n: usize) -> Vec<f32> {
            let start = 2f32.powf(-8.0 / n as f32);
            (0..n).map(|i| start.powi(i as i32 + 1)).collect()
        }
        if n.is_power_of_two() {
            pow2_slopes(n)
        } else {
            // ALiBi's published fallback: take the next power of two's
            // sequence and interleave.
            let closest = n.next_power_of_two() / 2;
            let mut s = pow2_slopes(closest);
            let extra = pow2_slopes(closest * 2);
            s.extend(extra.into_iter().step_by(2).take(n - closest));
            s
        }
    }

    /// Slope of head `h`.
    pub fn slope(&self, head: usize) -> f32 {
        self.slopes[head]
    }

    /// Number of heads covered.
    pub fn num_heads(&self) -> usize {
        self.slopes.len()
    }

    /// Additive attention bias for head `head` between a query at position
    /// `q_pos` and a key at position `k_pos`.
    ///
    /// ALiBi penalises distance linearly: `-slope × (q_pos − k_pos)`.
    /// Discontinuous position IDs work out of the box because only the
    /// difference enters. Keys "ahead" of the query (possible when a prompt
    /// supplies out-of-order module positions) get symmetric distance.
    pub fn bias(&self, head: usize, q_pos: usize, k_pos: usize) -> f32 {
        let dist = q_pos.abs_diff(k_pos) as f32;
        -self.slopes[head] * dist
    }
}

/// Returns whether a scheme encodes positions relatively (shift-invariant)
/// — true for RoPE and ALiBi, false for learned embeddings. Prompt Cache's
/// "unions share a start position" trick relies on relative encoding.
pub fn is_shift_invariant(scheme: PositionScheme) -> bool {
    !matches!(scheme, PositionScheme::Learned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_tensor::ops::dot;

    #[test]
    fn rope_position_zero_is_identity() {
        let table = RopeTable::new(8, 16, 10_000.0);
        let mut head = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let orig = head;
        table.apply(&mut head, 0);
        assert_eq!(head, orig);
    }

    #[test]
    fn rope_preserves_norm() {
        let table = RopeTable::new(8, 64, 10_000.0);
        let mut head = [0.3, -1.0, 0.7, 2.0, -0.5, 0.1, 1.5, -2.0];
        let norm_before: f32 = head.iter().map(|x| x * x).sum();
        table.apply(&mut head, 37);
        let norm_after: f32 = head.iter().map(|x| x * x).sum();
        assert!((norm_before - norm_after).abs() < 1e-4);
    }

    #[test]
    fn rope_dot_product_depends_only_on_relative_position() {
        // The defining RoPE property: <R(p)q, R(p+Δ)k> is independent of p.
        let table = RopeTable::new(8, 256, 10_000.0);
        let q = [0.3, -1.0, 0.7, 2.0, -0.5, 0.1, 1.5, -2.0];
        let k = [1.0, 0.5, -0.7, 0.2, 0.9, -1.1, 0.4, 0.8];
        let delta = 13;
        let mut dots = Vec::new();
        for p in [0usize, 17, 100, 200] {
            let mut qr = q;
            let mut kr = k;
            table.apply(&mut qr, p + delta);
            table.apply(&mut kr, p);
            dots.push(dot(&qr, &kr));
        }
        for w in dots.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-3, "{dots:?}");
        }
    }

    #[test]
    fn rope_different_relative_distances_differ() {
        let table = RopeTable::new(8, 256, 10_000.0);
        let q = [0.3, -1.0, 0.7, 2.0, -0.5, 0.1, 1.5, -2.0];
        let k = [1.0, 0.5, -0.7, 0.2, 0.9, -1.1, 0.4, 0.8];
        let mut q1 = q;
        let mut k1 = k;
        table.apply(&mut q1, 10);
        table.apply(&mut k1, 5);
        let mut q2 = q;
        let mut k2 = k;
        table.apply(&mut q2, 10);
        table.apply(&mut k2, 2);
        assert!((dot(&q1, &k1) - dot(&q2, &k2)).abs() > 1e-4);
    }

    #[test]
    fn rope_shift_composes_with_apply() {
        // apply(p + Δ) ≡ apply_shift(Δ) ∘ apply(p) — the identity the
        // deferred-RoPE read path rests on.
        let table = RopeTable::new(8, 512, 10_000.0);
        let base = [0.3, -1.0, 0.7, 2.0, -0.5, 0.1, 1.5, -2.0];
        for (p, delta) in [(0usize, 7usize), (13, 100), (200, 0), (50, 300)] {
            let mut direct = base;
            table.apply(&mut direct, p + delta);
            let mut composed = base;
            table.apply(&mut composed, p);
            table.apply_shift(&mut composed, delta as isize);
            for (a, b) in direct.iter().zip(&composed) {
                assert!((a - b).abs() < 1e-4, "p {p} Δ {delta}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn rope_negative_shift_undoes_positive() {
        let table = RopeTable::new(8, 256, 10_000.0);
        let base = [1.0, 0.5, -0.7, 0.2, 0.9, -1.1, 0.4, 0.8];
        let mut v = base;
        table.apply_shift(&mut v, 37);
        table.apply_shift(&mut v, -37);
        for (a, b) in v.iter().zip(&base) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn rope_shift_zero_is_identity() {
        let table = RopeTable::new(8, 16, 10_000.0);
        let mut head = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let orig = head;
        table.apply_shift(&mut head, 0);
        assert_eq!(head, orig);
    }

    #[test]
    fn shift_row_feeds_dot_rotated_bit_identically() {
        // The fused score primitive on un-shifted keys must equal the
        // materialise-then-dot path bit for bit.
        let table = RopeTable::new(8, 128, 10_000.0);
        let q = [0.3, -1.0, 0.7, 2.0, -0.5, 0.1, 1.5, -2.0];
        let k = [1.0, 0.5, -0.7, 0.2, 0.9, -1.1, 0.4, 0.8];
        for shift in [3isize, 90, -17] {
            let (cos, sin, sign) = table.shift_row(shift);
            let fused = pc_tensor::ops::dot_rotated(&q, &k, cos, sin, sign);
            let mut rotated = k;
            table.apply_shift(&mut rotated, shift);
            let materialised = pc_tensor::ops::dot_seq(&q, &rotated);
            assert_eq!(fused.to_bits(), materialised.to_bits(), "shift {shift}");
        }
    }

    #[test]
    #[should_panic(expected = "out of table range")]
    fn rope_rejects_out_of_range_position() {
        let table = RopeTable::new(4, 8, 10_000.0);
        let mut head = [0.0; 4];
        table.apply(&mut head, 8);
    }

    #[test]
    fn alibi_power_of_two_slopes() {
        let t = AlibiTable::new(8);
        // 2^(-8/8) = 0.5, ratio 0.5.
        assert!((t.slope(0) - 0.5).abs() < 1e-6);
        assert!((t.slope(1) - 0.25).abs() < 1e-6);
        assert!((t.slope(7) - 0.00390625).abs() < 1e-7);
    }

    #[test]
    fn alibi_non_power_of_two_head_count() {
        let t = AlibiTable::new(6);
        assert_eq!(t.num_heads(), 6);
        assert!(t.slopes.iter().all(|&s| s > 0.0 && s < 1.0));
    }

    #[test]
    fn alibi_bias_is_relative() {
        let t = AlibiTable::new(4);
        assert_eq!(t.bias(0, 10, 5), t.bias(0, 110, 105));
        assert_eq!(t.bias(0, 7, 7), 0.0);
        // Farther keys get more negative bias.
        assert!(t.bias(0, 10, 0) < t.bias(0, 10, 9));
    }

    #[test]
    fn shift_invariance_classification() {
        assert!(is_shift_invariant(PositionScheme::Rope));
        assert!(is_shift_invariant(PositionScheme::Alibi));
        assert!(!is_shift_invariant(PositionScheme::Learned));
    }
}
