//! Segmented, zero-copy views over shared KV caches.
//!
//! A [`KvView`] is the serving-path replacement for a per-request flat
//! [`KvCache`]: an ordered list of `Arc`-shared **immutable segments**
//! (module blocks handed out by the store, paper §3.4) followed by one
//! private mutable **tail** that owns everything computed for this request
//! — filled parameters, uncached prompt text, and decoded tokens. The
//! attention kernel consumes the segments in place via
//! [`KvSeq::layer_segments`], so assembling a session cache from cached
//! modules is pure pointer arithmetic: no KV bytes are copied and N
//! concurrent sessions of one schema share a single physical copy of each
//! module.
//!
//! [`KvSeq`] abstracts the cache shape the transformer needs ([`Model`]
//! methods are generic over it), with two implementations: [`KvCache`]
//! (one contiguous segment) and [`KvView`]. Both drive the exact same
//! segmented kernel, which is why segmentation is invisible in the output
//! bits.
//!
//! [`Model`]: crate::Model

use crate::pos::RopeTable;
use crate::{KvCache, ModelError, Result};
use std::collections::HashSet;
use std::sync::Arc;

/// The cache interface the transformer forward pass needs: append-only
/// growth (positions + per-layer k/v rows) and read access to the cached
/// rows as an ordered list of contiguous physical segments.
///
/// Causality and position handling are unchanged from the flat cache:
/// cache *order* defines visibility, the position ids carry the layout.
pub trait KvSeq {
    /// Number of cached tokens (logical length).
    fn len(&self) -> usize;

    /// Whether no tokens are cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of layers.
    fn num_layers(&self) -> usize;

    /// Width of one token's key (or value) row.
    fn kv_dim(&self) -> usize;

    /// Position ids of all cached tokens, in cache order.
    fn positions(&self) -> &[usize];

    /// Records the position id of the token whose rows were just pushed.
    fn push_position(&mut self, pos: usize);

    /// Appends one token's k/v rows for layer `layer` (into the mutable
    /// tail for views).
    fn push_token_layer(&mut self, layer: usize, k_row: &[f32], v_row: &[f32]);

    /// The layer's cached rows as ordered `(keys, values, position_shift)`
    /// segments whose concatenation is the logical `[len × kv_dim]`
    /// buffer. A non-zero shift marks a deferred-RoPE segment: its key
    /// rows are stored rotated at canonical (normalised) positions and the
    /// attention kernel must compose the extra `R(shift)` rotation on
    /// read. Value rows are position-free and never shift.
    fn layer_segments(&self, layer: usize) -> Vec<(&[f32], &[f32], isize)>;

    /// Appends the layer's `(keys, values, position_shift)` segments to
    /// `out` instead of allocating a fresh list — the hot-loop variant of
    /// [`KvSeq::layer_segments`] used by the batched decode path, which
    /// reuses one flat segment buffer across layers and ticks.
    fn layer_segments_into<'s>(&'s self, layer: usize, out: &mut Vec<(&'s [f32], &'s [f32], isize)>) {
        out.extend(self.layer_segments(layer));
    }

    /// Pointer identity of shared (frozen) segment `i`, or `None` past the
    /// last shared segment. Flat caches own all their rows, so they report
    /// no shared segments. The batched scheduler uses this to detect
    /// physical cross-sequence sharing without touching KV bytes.
    fn shared_segment_id(&self, i: usize) -> Option<SegmentId> {
        let _ = i;
        None
    }
}

impl KvSeq for KvCache {
    fn len(&self) -> usize {
        KvCache::len(self)
    }

    fn num_layers(&self) -> usize {
        KvCache::num_layers(self)
    }

    fn kv_dim(&self) -> usize {
        KvCache::kv_dim(self)
    }

    fn positions(&self) -> &[usize] {
        KvCache::positions(self)
    }

    fn push_position(&mut self, pos: usize) {
        KvCache::push_position(self, pos);
    }

    fn push_token_layer(&mut self, layer: usize, k_row: &[f32], v_row: &[f32]) {
        KvCache::push_token_layer(self, layer, k_row, v_row);
    }

    fn layer_segments(&self, layer: usize) -> Vec<(&[f32], &[f32], isize)> {
        vec![(self.keys(layer), self.values(layer), 0)]
    }

    fn layer_segments_into<'s>(&'s self, layer: usize, out: &mut Vec<(&'s [f32], &'s [f32], isize)>) {
        out.push((self.keys(layer), self.values(layer), 0));
    }
}

/// Pointer identity of one shared, immutable KV segment: the backing
/// cache's allocation address plus the aliased row window. Two segments
/// with equal `SegmentId`s read exactly the same physical rows, so
/// equality here is the "free via `Arc::ptr_eq`" sharing test the
/// prefix-aware batched kernel groups on — content is never inspected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentId {
    ptr: usize,
    start: usize,
    end: usize,
    /// Deferred-RoPE placement shift. Two windows over the same physical
    /// rows placed at different offsets read *different* effective keys,
    /// so the shift is part of the identity the batched kernel groups on.
    shift: isize,
}

impl SegmentId {
    /// Number of token rows the identified segment contributes.
    pub fn rows(&self) -> usize {
        self.end - self.start
    }
}

impl KvSegment {
    /// The segment's pointer identity (see [`SegmentId`]).
    pub fn id(&self) -> SegmentId {
        SegmentId {
            ptr: Arc::as_ptr(&self.cache) as usize,
            start: self.start,
            end: self.end,
            shift: self.shift,
        }
    }
}

/// One shared, immutable run of token rows: the range `start..end` of an
/// `Arc`-shared [`KvCache`] (typically a module block), placed at a
/// position shift relative to the rows' stored (canonical) positions.
/// Cloning a segment clones the `Arc`, never the states.
#[derive(Debug, Clone)]
pub struct KvSegment {
    cache: Arc<KvCache>,
    start: usize,
    end: usize,
    shift: isize,
}

impl KvSegment {
    /// The shared backing cache.
    pub fn cache(&self) -> &Arc<KvCache> {
        &self.cache
    }

    /// First backing row of this segment.
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last backing row of this segment.
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of token rows this segment contributes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the segment contributes no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Placement shift: placed position = stored position + shift. Zero
    /// for segments baked at their placed positions; non-zero for
    /// deferred-RoPE segments whose keys the kernel rotates on read.
    pub fn shift(&self) -> isize {
        self.shift
    }
}

/// A session KV cache assembled without copying: shared immutable
/// segments up front, one private mutable tail behind them.
///
/// Ownership rules: segments are frozen the moment they are pushed (they
/// alias store-owned module blocks), and every row appended afterwards —
/// filled parameters at gap positions, uncached prompt text, decoded
/// tokens — lands in the tail, which this view exclusively owns. Segments
/// can only be pushed while the tail is empty, so the shared prefix /
/// private tail split is an invariant, not a convention.
#[derive(Debug, Clone)]
pub struct KvView {
    segments: Vec<KvSegment>,
    seg_rows: usize,
    tail: KvCache,
    /// Flat positions across segments + tail, kept locally so position
    /// lookup (ALiBi, decode start) needs no segment walk.
    positions: Vec<usize>,
}

impl KvView {
    /// An empty view with explicit layer count and kv width.
    pub fn with_shape(num_layers: usize, kv_dim: usize) -> Self {
        KvView {
            segments: Vec::new(),
            seg_rows: 0,
            tail: KvCache::with_shape(num_layers, kv_dim),
            positions: Vec::new(),
        }
    }

    /// Wraps an owned cache as a view with no shared segments — the whole
    /// cache becomes the private tail.
    pub fn from_cache(cache: KvCache) -> Self {
        KvView {
            segments: Vec::new(),
            seg_rows: 0,
            positions: cache.positions().to_vec(),
            tail: cache,
        }
    }

    /// Shares the row range `start..end` of `cache` as the next segment —
    /// O(1) in KV bytes. Empty ranges are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CacheShapeMismatch`] for incompatible shapes,
    /// an invalid range, or when the tail already holds rows (shared
    /// segments must precede all private rows).
    pub fn push_segment(&mut self, cache: Arc<KvCache>, start: usize, end: usize) -> Result<()> {
        self.push_segment_shifted(cache, start, end, 0)
    }

    /// Shares the row range `start..end` of `cache` as the next segment,
    /// placed `shift` positions away from where its rows were encoded —
    /// the deferred-RoPE read path. The view's flat position list carries
    /// the *placed* positions (stored + shift), so ALiBi bias, decode
    /// start, and causality all see the placement layout; the stored key
    /// bytes stay canonical and the attention kernel composes the
    /// `R(shift)` rotation on read. O(1) in KV bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CacheShapeMismatch`] for incompatible shapes,
    /// an invalid range, a shift that would place any row at a negative
    /// position, or when the tail already holds rows.
    pub fn push_segment_shifted(
        &mut self,
        cache: Arc<KvCache>,
        start: usize,
        end: usize,
        shift: isize,
    ) -> Result<()> {
        if cache.num_layers() != self.tail.num_layers() || cache.kv_dim() != self.tail.kv_dim() {
            return Err(ModelError::CacheShapeMismatch {
                detail: format!(
                    "segment {} layers × kv_dim {} vs view {} layers × kv_dim {}",
                    cache.num_layers(),
                    cache.kv_dim(),
                    self.tail.num_layers(),
                    self.tail.kv_dim()
                ),
            });
        }
        if start > end || end > cache.len() {
            return Err(ModelError::CacheShapeMismatch {
                detail: format!(
                    "segment range {start}..{end} invalid for length {}",
                    cache.len()
                ),
            });
        }
        if !self.tail.is_empty() {
            return Err(ModelError::CacheShapeMismatch {
                detail: format!(
                    "cannot share a segment behind {} private tail rows",
                    self.tail.len()
                ),
            });
        }
        if start == end {
            return Ok(());
        }
        if shift < 0 {
            if let Some(&p) = cache.positions()[start..end].iter().find(|&&p| (p as isize) + shift < 0) {
                return Err(ModelError::CacheShapeMismatch {
                    detail: format!("shift {shift} places stored position {p} below zero"),
                });
            }
        }
        self.positions
            .extend(cache.positions()[start..end].iter().map(|&p| (p as isize + shift) as usize));
        self.seg_rows += end - start;
        self.segments.push(KvSegment { cache, start, end, shift });
        Ok(())
    }

    /// Shares an entire cache as the next segment (see
    /// [`KvView::push_segment`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`KvView::push_segment`].
    pub fn push_cache(&mut self, cache: Arc<KvCache>) -> Result<()> {
        let end = cache.len();
        self.push_segment(cache, 0, end)
    }

    /// Copies the row range `start..end` of `other` into the private tail
    /// — the pre-zero-copy behaviour, kept for A/B comparison and for
    /// callers that need an owned flat cache.
    ///
    /// # Errors
    ///
    /// Same contract as [`KvCache::append_range`].
    pub fn append_range_copy(&mut self, other: &KvCache, start: usize, end: usize) -> Result<()> {
        self.tail.append_range(other, start, end)?;
        self.positions.extend_from_slice(&other.positions()[start..end]);
        Ok(())
    }

    /// Copies the row range `start..end` of `other` into the private tail
    /// at a placement `shift`, baking the deferred rotation into the
    /// copied key rows (`rope` is `None` for position-free families, whose
    /// rows copy unchanged). This is the copy-mode (`zero_copy` off)
    /// counterpart of [`KvView::push_segment_shifted`]: the materialised
    /// rotation uses the same `R(shift)` composition the fused read-path
    /// kernel applies, so both modes produce identical attention scores.
    ///
    /// # Errors
    ///
    /// Same contract as [`KvView::push_segment_shifted`], minus the
    /// tail-empty requirement (copies always extend the tail).
    pub fn append_range_copy_shifted(
        &mut self,
        other: &KvCache,
        start: usize,
        end: usize,
        shift: isize,
        rope: Option<&RopeTable>,
    ) -> Result<()> {
        if shift == 0 {
            return self.append_range_copy(other, start, end);
        }
        if other.num_layers() != self.tail.num_layers() || other.kv_dim() != self.tail.kv_dim() {
            return Err(ModelError::CacheShapeMismatch {
                detail: format!(
                    "copy source {} layers × kv_dim {} vs view {} layers × kv_dim {}",
                    other.num_layers(),
                    other.kv_dim(),
                    self.tail.num_layers(),
                    self.tail.kv_dim()
                ),
            });
        }
        if start > end || end > other.len() {
            return Err(ModelError::CacheShapeMismatch {
                detail: format!("copy range {start}..{end} invalid for length {}", other.len()),
            });
        }
        if let Some(&p) = other.positions()[start..end].iter().find(|&&p| (p as isize) + shift < 0)
        {
            return Err(ModelError::CacheShapeMismatch {
                detail: format!("shift {shift} places stored position {p} below zero"),
            });
        }
        let d = other.kv_dim();
        let mut k_row = vec![0.0f32; d];
        for row in start..end {
            for layer in 0..other.num_layers() {
                k_row.copy_from_slice(&other.keys(layer)[row * d..(row + 1) * d]);
                if let Some(rope) = rope {
                    for head in k_row.chunks_exact_mut(rope.head_dim()) {
                        rope.apply_shift(head, shift);
                    }
                }
                let v_row = &other.values(layer)[row * d..(row + 1) * d];
                self.tail.push_token_layer(layer, &k_row, v_row);
            }
            let placed = (other.positions()[row] as isize + shift) as usize;
            self.tail.push_position(placed);
            self.positions.push(placed);
        }
        Ok(())
    }

    /// The shared segments, in cache order.
    pub fn segments(&self) -> &[KvSegment] {
        &self.segments
    }

    /// The private tail (read-only).
    pub fn tail(&self) -> &KvCache {
        &self.tail
    }

    /// Number of rows aliased from shared segments.
    pub fn shared_rows(&self) -> usize {
        self.seg_rows
    }

    /// Bytes aliased from shared segments (not owned by this view).
    pub fn shared_bytes(&self) -> usize {
        self.tail.bytes_for_rows(self.seg_rows)
    }

    /// Bytes the full logical cache would occupy if it were flat.
    pub fn logical_bytes(&self) -> usize {
        self.tail.bytes_for_rows(self.len())
    }

    /// Removes trailing tokens, keeping the first `len`. Tail rows are
    /// dropped first; if the cut reaches into the shared prefix, segment
    /// ranges shrink (the backing caches are untouched — only this view's
    /// aliasing narrows).
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len() {
            return;
        }
        if len >= self.seg_rows {
            self.tail.truncate(len - self.seg_rows);
        } else {
            self.tail.truncate(0);
            let mut keep = len;
            self.segments.retain_mut(|seg| {
                let take = seg.len().min(keep);
                seg.end = seg.start + take;
                keep -= take;
                take > 0
            });
            self.seg_rows = len;
        }
        self.positions.truncate(len);
    }

    /// Copies segments + tail into one owned contiguous [`KvCache`] — the
    /// escape hatch for persistence, codecs, and any consumer that needs
    /// flat buffers. The hot serve path never calls this. Shifted
    /// (deferred-RoPE) segments copy their *raw* backing rows with placed
    /// positions; use [`KvView::materialize_with`] to also bake the
    /// placement rotation into the key bytes.
    pub fn materialize(&self) -> KvCache {
        self.materialize_with(None)
    }

    /// [`KvView::materialize`] with the placement rotation applied:
    /// shifted segments' key rows are rotated by `R(shift)` via `rope`
    /// during the copy, so the result equals what encoding the same
    /// content directly at the placed positions would have produced.
    /// With `rope` `None` (ALiBi/learned families, or raw dumps) key
    /// bytes copy unchanged.
    pub fn materialize_with(&self, rope: Option<&RopeTable>) -> KvCache {
        let mut flat = KvCache::with_shape(self.tail.num_layers(), self.tail.kv_dim());
        let d = self.tail.kv_dim();
        let mut k_row = vec![0.0f32; d];
        for seg in &self.segments {
            if seg.shift == 0 {
                flat.append_range(&seg.cache, seg.start, seg.end)
                    .expect("segment shape was validated at push");
                continue;
            }
            for row in seg.start..seg.end {
                for layer in 0..flat.num_layers() {
                    k_row.copy_from_slice(&seg.cache.keys(layer)[row * d..(row + 1) * d]);
                    if let Some(rope) = rope {
                        for head in k_row.chunks_exact_mut(rope.head_dim()) {
                            rope.apply_shift(head, seg.shift);
                        }
                    }
                    let v_row = &seg.cache.values(layer)[row * d..(row + 1) * d];
                    flat.push_token_layer(layer, &k_row, v_row);
                }
                flat.push_position((seg.cache.positions()[row] as isize + seg.shift) as usize);
            }
        }
        flat.append(&self.tail).expect("tail shares the view's shape");
        flat
    }
}

impl KvSeq for KvView {
    fn len(&self) -> usize {
        self.positions.len()
    }

    fn num_layers(&self) -> usize {
        self.tail.num_layers()
    }

    fn kv_dim(&self) -> usize {
        self.tail.kv_dim()
    }

    fn positions(&self) -> &[usize] {
        &self.positions
    }

    fn push_position(&mut self, pos: usize) {
        self.tail.push_position(pos);
        self.positions.push(pos);
    }

    fn push_token_layer(&mut self, layer: usize, k_row: &[f32], v_row: &[f32]) {
        self.tail.push_token_layer(layer, k_row, v_row);
    }

    fn layer_segments(&self, layer: usize) -> Vec<(&[f32], &[f32], isize)> {
        let mut segs = Vec::with_capacity(self.segments.len() + 1);
        self.layer_segments_into(layer, &mut segs);
        segs
    }

    fn layer_segments_into<'s>(&'s self, layer: usize, out: &mut Vec<(&'s [f32], &'s [f32], isize)>) {
        let d = self.tail.kv_dim();
        out.reserve(self.segments.len() + 1);
        for seg in &self.segments {
            out.push((
                &seg.cache.keys(layer)[seg.start * d..seg.end * d],
                &seg.cache.values(layer)[seg.start * d..seg.end * d],
                seg.shift,
            ));
        }
        out.push((self.tail.keys(layer), self.tail.values(layer), 0));
    }

    fn shared_segment_id(&self, i: usize) -> Option<SegmentId> {
        self.segments.get(i).map(KvSegment::id)
    }
}

/// The longest leading run of segments shared — same backing `Arc`
/// allocation, same row window — by **every** view in the set. Returns
/// `(segments, rows)`. Sharing is pointer identity ([`Arc::ptr_eq`] plus
/// equal windows), never content comparison, so two content-equal caches
/// encoded separately do not count as shared. A single view trivially
/// shares its whole segment list with itself; an empty set shares
/// nothing.
pub fn shared_prefix(views: &[&KvView]) -> (usize, usize) {
    let Some(first) = views.first() else {
        return (0, 0);
    };
    let mut segs = 0usize;
    let mut rows = 0usize;
    'prefix: for (i, seg) in first.segments.iter().enumerate() {
        for other in &views[1..] {
            match other.segments.get(i) {
                Some(o)
                    if Arc::ptr_eq(&o.cache, &seg.cache)
                        && o.start == seg.start
                        && o.end == seg.end => {}
                _ => break 'prefix,
            }
        }
        segs += 1;
        rows += seg.len();
    }
    (segs, rows)
}

/// One contiguous run of batch rows whose caches share a leading run of
/// pointer-identical segments — the unit the prefix-aware batched
/// attention kernel streams shared K/V rows once for. Runs are contiguous
/// by construction (the scheduler keeps same-prefix sequences adjacent),
/// which lets the kernel split its output and score buffers per group
/// with no row scatter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixGroup {
    /// First batch row of the run.
    pub start: usize,
    /// Number of sequences in the run.
    pub len: usize,
    /// Leading segments every member shares (pointer-equal).
    pub prefix_segments: usize,
    /// Token rows those segments contribute.
    pub prefix_rows: usize,
}

impl PrefixGroup {
    /// Whether the group actually shares KV rows worth hoisting: at least
    /// two members over a non-empty common prefix.
    pub fn is_shared(&self) -> bool {
        self.len >= 2 && self.prefix_rows > 0
    }
}

/// Partitions batch rows `0..n` into maximal **adjacent** runs that share
/// a leading segment, then shrinks each run's prefix to the longest
/// pointer-equal segment run common to all members. `seg_id(row, i)`
/// reports row `row`'s `i`-th shared segment (see
/// [`KvSeq::shared_segment_id`]). Rows with no shared segments — flat
/// caches, views with only private tails — become singleton groups with
/// an empty prefix. Deterministic: depends only on batch order and
/// segment identity, never on timing.
pub fn group_adjacent_prefixes(
    n: usize,
    seg_id: impl Fn(usize, usize) -> Option<SegmentId>,
    out: &mut Vec<PrefixGroup>,
) {
    out.clear();
    let mut start = 0usize;
    while start < n {
        let lead = seg_id(start, 0);
        let mut len = 1usize;
        if lead.is_some() {
            while start + len < n && seg_id(start + len, 0) == lead {
                len += 1;
            }
        }
        let (mut prefix_segments, mut prefix_rows) = (0usize, 0usize);
        if len >= 2 {
            // Extend past the grouping segment to the full common run.
            'deepen: while let Some(id) = seg_id(start, prefix_segments) {
                for member in start + 1..start + len {
                    if seg_id(member, prefix_segments) != Some(id) {
                        break 'deepen;
                    }
                }
                prefix_segments += 1;
                prefix_rows += id.rows();
            }
        }
        out.push(PrefixGroup {
            start,
            len,
            prefix_segments,
            prefix_rows,
        });
        start += len;
    }
}

/// Physical KV bytes behind a set of views: each distinct backing cache
/// is counted once at its full allocated size (however many views alias
/// it, and however small their windows), plus every view's private tail.
/// This is the number that stays flat as same-schema sessions multiply.
pub fn physical_bytes<'a, I>(views: I) -> usize
where
    I: IntoIterator<Item = &'a KvView>,
{
    let mut seen: HashSet<*const KvCache> = HashSet::new();
    let mut bytes = 0usize;
    for view in views {
        for seg in &view.segments {
            if seen.insert(Arc::as_ptr(seg.cache())) {
                bytes += seg.cache().size_bytes();
            }
        }
        bytes += view.tail.size_bytes();
    }
    bytes
}

/// Logical KV bytes across a set of views: what the same sessions would
/// occupy with flat per-session caches. The gap to [`physical_bytes`] is
/// exactly the sharing win.
pub fn logical_bytes<'a, I>(views: I) -> usize
where
    I: IntoIterator<Item = &'a KvView>,
{
    views.into_iter().map(KvView::logical_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_with(tokens: &[(usize, f32)]) -> KvCache {
        let mut c = KvCache::with_shape(2, 3);
        for &(pos, val) in tokens {
            for layer in 0..2 {
                let row = [val + layer as f32 * 100.0; 3];
                c.push_token_layer(layer, &row, &row.map(|x| -x));
            }
            c.push_position(pos);
        }
        c
    }

    #[test]
    fn push_segment_aliases_without_copy() {
        let block = Arc::new(cache_with(&[(0, 1.0), (1, 2.0), (2, 3.0)]));
        let mut view = KvView::with_shape(2, 3);
        view.push_segment(Arc::clone(&block), 1, 3).unwrap();
        assert_eq!(view.len(), 2);
        assert_eq!(view.positions(), &[1, 2]);
        assert_eq!(view.shared_rows(), 2);
        assert!(Arc::ptr_eq(view.segments()[0].cache(), &block));
        let segs = view.layer_segments(0);
        // Two segments: the shared window plus the (empty) tail.
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].0, &block.keys(0)[3..9]);
        assert!(segs[1].0.is_empty());
    }

    #[test]
    fn segment_after_tail_rows_rejected() {
        let block = Arc::new(cache_with(&[(0, 1.0)]));
        let mut view = KvView::with_shape(2, 3);
        view.push_token_layer(0, &[9.0; 3], &[9.0; 3]);
        view.push_token_layer(1, &[9.0; 3], &[9.0; 3]);
        view.push_position(7);
        assert!(view.push_cache(block).is_err());
    }

    #[test]
    fn shape_and_range_validation() {
        let mut view = KvView::with_shape(2, 3);
        let wrong_layers = Arc::new(cache_with(&[(0, 1.0)]).slice(0, 1).unwrap());
        assert!(view.push_segment(Arc::new(KvCache::with_shape(3, 3)), 0, 0).is_err());
        assert!(view.push_segment(Arc::new(KvCache::with_shape(2, 4)), 0, 0).is_err());
        assert!(view.push_segment(Arc::clone(&wrong_layers), 0, 2).is_err());
        assert!(view.push_segment(wrong_layers, 1, 0).is_err());
    }

    #[test]
    fn materialize_equals_copy_assembly() {
        let a = Arc::new(cache_with(&[(0, 1.0), (1, 2.0)]));
        let b = Arc::new(cache_with(&[(5, 9.0), (6, 10.0), (7, 11.0)]));

        let mut view = KvView::with_shape(2, 3);
        view.push_cache(Arc::clone(&a)).unwrap();
        view.push_segment(Arc::clone(&b), 1, 3).unwrap();
        view.push_token_layer(0, &[4.0; 3], &[-4.0; 3]);
        view.push_token_layer(1, &[104.0; 3], &[-104.0; 3]);
        view.push_position(9);

        let mut flat = KvCache::with_shape(2, 3);
        flat.append(&a).unwrap();
        flat.append_range(&b, 1, 3).unwrap();
        flat.push_token_layer(0, &[4.0; 3], &[-4.0; 3]);
        flat.push_token_layer(1, &[104.0; 3], &[-104.0; 3]);
        flat.push_position(9);

        assert_eq!(view.materialize(), flat);
        assert_eq!(view.positions(), flat.positions());
        assert_eq!(view.len(), 5);
        assert_eq!(view.shared_rows(), 4);
    }

    #[test]
    fn copy_path_fills_tail() {
        let b = Arc::new(cache_with(&[(5, 9.0), (6, 10.0)]));
        let mut view = KvView::with_shape(2, 3);
        view.append_range_copy(&b, 0, 2).unwrap();
        assert_eq!(view.shared_rows(), 0);
        assert_eq!(view.tail().len(), 2);
        assert_eq!(view.positions(), &[5, 6]);
        assert_eq!(view.materialize().keys(0), b.keys(0));
    }

    #[test]
    fn truncate_shrinks_tail_then_segments() {
        let a = Arc::new(cache_with(&[(0, 1.0), (1, 2.0)]));
        let b = Arc::new(cache_with(&[(5, 9.0), (6, 10.0)]));
        let mut view = KvView::with_shape(2, 3);
        view.push_cache(Arc::clone(&a)).unwrap();
        view.push_cache(Arc::clone(&b)).unwrap();
        view.push_token_layer(0, &[4.0; 3], &[4.0; 3]);
        view.push_token_layer(1, &[4.0; 3], &[4.0; 3]);
        view.push_position(9);

        view.truncate(5); // drops the tail row only
        assert_eq!(view.len(), 5);
        assert_eq!(view.tail().len(), 1);
        view.truncate(3); // cuts into segment b
        assert_eq!(view.len(), 3);
        assert_eq!(view.tail().len(), 0);
        assert_eq!(view.shared_rows(), 3);
        assert_eq!(view.segments().len(), 2);
        assert_eq!(view.positions(), &[0, 1, 5]);
        view.truncate(0);
        assert!(view.is_empty());
        assert!(view.segments().is_empty());
        // Backing caches are untouched throughout.
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn physical_bytes_dedups_shared_blocks() {
        let block = Arc::new(cache_with(&[(0, 1.0), (1, 2.0), (2, 3.0)]));
        let views: Vec<KvView> = (0..4)
            .map(|i| {
                let mut v = KvView::with_shape(2, 3);
                v.push_cache(Arc::clone(&block)).unwrap();
                v.push_token_layer(0, &[i as f32; 3], &[0.0; 3]);
                v.push_token_layer(1, &[i as f32; 3], &[0.0; 3]);
                v.push_position(10 + i);
                v
            })
            .collect();
        let one_tail = views[0].tail().size_bytes();
        assert_eq!(
            physical_bytes(&views),
            block.size_bytes() + 4 * one_tail
        );
        assert_eq!(logical_bytes(&views), 4 * (block.size_bytes() + one_tail));
        // Physical stays flat as sessions grow; logical scales linearly.
        assert_eq!(
            physical_bytes(views.iter().take(2)),
            block.size_bytes() + 2 * one_tail
        );
    }

    #[test]
    fn from_cache_owns_everything() {
        let view = KvView::from_cache(cache_with(&[(0, 1.0), (1, 2.0)]));
        assert_eq!(view.len(), 2);
        assert_eq!(view.shared_rows(), 0);
        assert_eq!(view.positions(), &[0, 1]);
    }

    #[test]
    fn shared_prefix_is_pointer_identity_not_content() {
        let a = Arc::new(cache_with(&[(0, 1.0), (1, 2.0), (2, 3.0)]));
        let a_twin = Arc::new(cache_with(&[(0, 1.0), (1, 2.0), (2, 3.0)])); // equal bytes, distinct alloc
        let b = Arc::new(cache_with(&[(5, 9.0), (6, 10.0)]));

        let mut v1 = KvView::with_shape(2, 3);
        v1.push_cache(Arc::clone(&a)).unwrap();
        v1.push_cache(Arc::clone(&b)).unwrap();
        let mut v2 = KvView::with_shape(2, 3);
        v2.push_cache(Arc::clone(&a)).unwrap();
        v2.push_cache(Arc::clone(&b)).unwrap();
        let mut v3 = KvView::with_shape(2, 3);
        v3.push_cache(Arc::clone(&a)).unwrap();
        let mut v_twin = KvView::with_shape(2, 3);
        v_twin.push_cache(Arc::clone(&a_twin)).unwrap();

        // Full two-segment prefix shared; tails never count.
        v1.push_token_layer(0, &[4.0; 3], &[4.0; 3]);
        v1.push_token_layer(1, &[4.0; 3], &[4.0; 3]);
        v1.push_position(9);
        assert_eq!(shared_prefix(&[&v1, &v2]), (2, 5));
        // v3 stops after one segment; the run shrinks to it.
        assert_eq!(shared_prefix(&[&v1, &v2, &v3]), (1, 3));
        // Content-equal but pointer-distinct caches do not share.
        assert_eq!(shared_prefix(&[&v3, &v_twin]), (0, 0));
        // A singleton shares its whole segment list with itself.
        assert_eq!(shared_prefix(&[&v1]), (2, 5));
        assert_eq!(shared_prefix(&[]), (0, 0));
    }

    #[test]
    fn shared_prefix_requires_matching_windows() {
        let a = Arc::new(cache_with(&[(0, 1.0), (1, 2.0), (2, 3.0)]));
        let mut whole = KvView::with_shape(2, 3);
        whole.push_cache(Arc::clone(&a)).unwrap();
        let mut window = KvView::with_shape(2, 3);
        window.push_segment(Arc::clone(&a), 1, 3).unwrap();
        // Same Arc, different row windows — not the same physical rows.
        assert_eq!(shared_prefix(&[&whole, &window]), (0, 0));
        let mut same_window = KvView::with_shape(2, 3);
        same_window.push_segment(Arc::clone(&a), 1, 3).unwrap();
        assert_eq!(shared_prefix(&[&window, &same_window]), (1, 2));
    }

    #[test]
    fn grouping_splits_adjacent_runs_and_deepens_prefixes() {
        let a = Arc::new(cache_with(&[(0, 1.0), (1, 2.0)]));
        let b = Arc::new(cache_with(&[(5, 9.0), (6, 10.0), (7, 11.0)]));
        let make = |blocks: &[&Arc<KvCache>]| {
            let mut v = KvView::with_shape(2, 3);
            for block in blocks {
                v.push_cache(Arc::clone(block)).unwrap();
            }
            v
        };
        // Batch order: [a+b, a+b, a, b, none, b] — adjacency decides runs.
        let views = [
            make(&[&a, &b]),
            make(&[&a, &b]),
            make(&[&a]),
            make(&[&b]),
            make(&[]),
            make(&[&b]),
        ];
        let mut groups = Vec::new();
        group_adjacent_prefixes(
            views.len(),
            |s, i| views[s].shared_segment_id(i),
            &mut groups,
        );
        assert_eq!(
            groups,
            vec![
                // Rows 0-2 all lead with `a`; only two also share `b`, so
                // the common run is the one-segment prefix.
                PrefixGroup { start: 0, len: 3, prefix_segments: 1, prefix_rows: 2 },
                PrefixGroup { start: 3, len: 1, prefix_segments: 0, prefix_rows: 0 },
                PrefixGroup { start: 4, len: 1, prefix_segments: 0, prefix_rows: 0 },
                // Row 4 (no segments) breaks adjacency between the `b` rows.
                PrefixGroup { start: 5, len: 1, prefix_segments: 0, prefix_rows: 0 },
            ]
        );
        assert!(groups[0].is_shared());
        assert!(!groups[1].is_shared());

        // The deep pair alone shares both segments.
        let mut pair = Vec::new();
        group_adjacent_prefixes(2, |s, i| views[s].shared_segment_id(i), &mut pair);
        assert_eq!(
            pair,
            vec![PrefixGroup { start: 0, len: 2, prefix_segments: 2, prefix_rows: 5 }]
        );
        assert_eq!(shared_prefix(&[&views[0], &views[1]]), (2, 5));

        // Flat caches report no shared segments → singletons.
        let mut flat = Vec::new();
        group_adjacent_prefixes(3, |_, _| None, &mut flat);
        assert_eq!(flat.len(), 3);
        assert!(flat.iter().all(|g| g.len == 1 && g.prefix_rows == 0));
    }
}
