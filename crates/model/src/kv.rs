//! KV attention-state cache with per-token position IDs.
//!
//! A [`KvCache`] is both the classic autoregressive KV cache *and* the unit
//! of Prompt Cache storage: encoding a prompt module (paper §3.3) produces
//! a `KvCache` holding the module's `(k, v)` states at its schema-assigned
//! positions, and cached inference (§3.4) builds the session cache by
//! concatenating module caches with [`KvCache::append`] and splicing
//! parameter arguments over their `<unk>` placeholders with
//! [`KvCache::splice`].
//!
//! Position IDs are stored once per cache (they are identical across
//! layers), so ALiBi bias lookup and debugging stay cheap.

use crate::{ModelConfig, ModelError, Result};

/// Per-layer key/value buffers, flattened `[token][kv_dim]` row-major.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LayerKv {
    /// Keys, one row of `kv_dim` floats per cached token.
    pub k: Vec<f32>,
    /// Values, same layout as `k`.
    pub v: Vec<f32>,
}

/// Cached attention states for a token span across all layers, plus the
/// position id of every cached token.
#[derive(Debug, Clone, PartialEq)]
pub struct KvCache {
    layers: Vec<LayerKv>,
    positions: Vec<usize>,
    kv_dim: usize,
}

impl KvCache {
    /// An empty cache shaped for `cfg`.
    pub fn new(cfg: &ModelConfig) -> Self {
        KvCache {
            layers: vec![LayerKv::default(); cfg.num_layers],
            positions: Vec::new(),
            kv_dim: cfg.kv_dim(),
        }
    }

    /// An empty cache with explicit layer count and kv width.
    pub fn with_shape(num_layers: usize, kv_dim: usize) -> Self {
        KvCache {
            layers: vec![LayerKv::default(); num_layers],
            positions: Vec::new(),
            kv_dim,
        }
    }

    /// Number of cached tokens.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Width of one token's key (or value) row.
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    /// Position ids of the cached tokens, in cache order.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// The layer buffers (read-only).
    pub fn layer(&self, i: usize) -> &LayerKv {
        &self.layers[i]
    }

    /// Appends one token's k/v rows for layer `layer`. The caller must call
    /// [`KvCache::push_position`] exactly once per token after writing all
    /// layers; `debug_assert`s keep the two in lock-step in tests.
    pub fn push_token_layer(&mut self, layer: usize, k_row: &[f32], v_row: &[f32]) {
        debug_assert_eq!(k_row.len(), self.kv_dim);
        debug_assert_eq!(v_row.len(), self.kv_dim);
        self.layers[layer].k.extend_from_slice(k_row);
        self.layers[layer].v.extend_from_slice(v_row);
    }

    /// Records the position id of the token whose rows were just pushed.
    pub fn push_position(&mut self, pos: usize) {
        self.positions.push(pos);
    }

    /// Key rows of layer `layer` as a flat `[len × kv_dim]` slice.
    pub fn keys(&self, layer: usize) -> &[f32] {
        &self.layers[layer].k
    }

    /// Value rows of layer `layer` as a flat `[len × kv_dim]` slice.
    pub fn values(&self, layer: usize) -> &[f32] {
        &self.layers[layer].v
    }

    /// Appends another cache's tokens after this cache's tokens — the
    /// module-concatenation step of cached inference (§3.4). Order follows
    /// the argument order; the paper notes concatenation order does not
    /// change semantics (transformer permutation invariance) as long as
    /// position ids ride along, which they do.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CacheShapeMismatch`] when layer counts or kv
    /// widths differ.
    pub fn append(&mut self, other: &KvCache) -> Result<()> {
        self.check_compatible(other)?;
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            dst.k.extend_from_slice(&src.k);
            dst.v.extend_from_slice(&src.v);
        }
        self.positions.extend_from_slice(&other.positions);
        Ok(())
    }

    /// Replaces the token range `start..start + replacement.len()` with
    /// `replacement`'s states — the parameter-substitution step (§3.3):
    /// argument states overwrite the `<unk>` placeholder states.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CacheShapeMismatch`] when shapes differ or the
    /// range exceeds this cache's length.
    pub fn splice(&mut self, start: usize, replacement: &KvCache) -> Result<()> {
        self.check_compatible(replacement)?;
        let n = replacement.len();
        if start + n > self.len() {
            return Err(ModelError::CacheShapeMismatch {
                detail: format!(
                    "splice range {start}..{} exceeds cache length {}",
                    start + n,
                    self.len()
                ),
            });
        }
        let d = self.kv_dim;
        for (dst, src) in self.layers.iter_mut().zip(&replacement.layers) {
            dst.k[start * d..(start + n) * d].copy_from_slice(&src.k);
            dst.v[start * d..(start + n) * d].copy_from_slice(&src.v);
        }
        self.positions[start..start + n].copy_from_slice(&replacement.positions);
        Ok(())
    }

    /// Appends the token range `start..end` of another cache — the
    /// single-copy building block the engine uses to concatenate module
    /// spans while skipping filled parameter-placeholder rows.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CacheShapeMismatch`] for incompatible shapes
    /// or an invalid range.
    pub fn append_range(&mut self, other: &KvCache, start: usize, end: usize) -> Result<()> {
        self.check_compatible(other)?;
        if start > end || end > other.len() {
            return Err(ModelError::CacheShapeMismatch {
                detail: format!(
                    "append range {start}..{end} invalid for length {}",
                    other.len()
                ),
            });
        }
        let d = self.kv_dim;
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            dst.k.extend_from_slice(&src.k[start * d..end * d]);
            dst.v.extend_from_slice(&src.v[start * d..end * d]);
        }
        self.positions.extend_from_slice(&other.positions[start..end]);
        Ok(())
    }

    /// Removes the trailing tokens, keeping the first `len` — used to roll
    /// back speculative decoding in tests and to trim parameter buffers.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len() {
            return;
        }
        let d = self.kv_dim;
        for layer in &mut self.layers {
            layer.k.truncate(len * d);
            layer.v.truncate(len * d);
        }
        self.positions.truncate(len);
    }

    /// A copy of the token range `start..end` as a standalone cache.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CacheShapeMismatch`] for an invalid range.
    pub fn slice(&self, start: usize, end: usize) -> Result<KvCache> {
        if start > end || end > self.len() {
            return Err(ModelError::CacheShapeMismatch {
                detail: format!("slice {start}..{end} invalid for length {}", self.len()),
            });
        }
        let d = self.kv_dim;
        let layers = self
            .layers
            .iter()
            .map(|l| LayerKv {
                k: l.k[start * d..end * d].to_vec(),
                v: l.v[start * d..end * d].to_vec(),
            })
            .collect();
        Ok(KvCache {
            layers,
            positions: self.positions[start..end].to_vec(),
            kv_dim: d,
        })
    }

    /// Size of the cached states in bytes at f32 width (the in-memory
    /// format) — Table 2 reports the f16 equivalent, computed in
    /// `pc-cache`.
    pub fn size_bytes(&self) -> usize {
        self.bytes_for_rows(self.len())
    }

    /// Bytes occupied by `n` token rows of this cache's shape: k + v across
    /// every layer at f32 width. The single source of truth for KV byte
    /// accounting — `size_bytes()` and the engine's reuse/copy counters all
    /// delegate here so they cannot drift from the layout.
    pub fn bytes_for_rows(&self, n: usize) -> usize {
        2 * self.num_layers() * n * self.kv_dim * std::mem::size_of::<f32>()
    }

    fn check_compatible(&self, other: &KvCache) -> Result<()> {
        if self.layers.len() != other.layers.len() || self.kv_dim != other.kv_dim {
            return Err(ModelError::CacheShapeMismatch {
                detail: format!(
                    "{} layers × kv_dim {} vs {} layers × kv_dim {}",
                    self.layers.len(),
                    self.kv_dim,
                    other.layers.len(),
                    other.kv_dim
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_with(tokens: &[(usize, f32)]) -> KvCache {
        // 2 layers, kv_dim 3; fill each token's rows with its marker value.
        let mut c = KvCache::with_shape(2, 3);
        for &(pos, val) in tokens {
            for layer in 0..2 {
                let row = [val + layer as f32 * 100.0; 3];
                c.push_token_layer(layer, &row, &row.map(|x| -x));
            }
            c.push_position(pos);
        }
        c
    }

    #[test]
    fn push_and_read_back() {
        let c = cache_with(&[(0, 1.0), (1, 2.0)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.positions(), &[0, 1]);
        assert_eq!(c.keys(0), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        assert_eq!(c.values(1), &[-101.0, -101.0, -101.0, -102.0, -102.0, -102.0]);
    }

    #[test]
    fn append_concatenates_in_order() {
        let mut a = cache_with(&[(0, 1.0)]);
        let b = cache_with(&[(5, 9.0), (6, 10.0)]);
        a.append(&b).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.positions(), &[0, 5, 6]);
        assert_eq!(&a.keys(0)[3..6], &[9.0, 9.0, 9.0]);
    }

    #[test]
    fn append_rejects_shape_mismatch() {
        let mut a = cache_with(&[(0, 1.0)]);
        let b = KvCache::with_shape(3, 3);
        assert!(a.append(&b).is_err());
        let c = KvCache::with_shape(2, 4);
        assert!(a.append(&c).is_err());
    }

    #[test]
    fn splice_replaces_range() {
        let mut a = cache_with(&[(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]);
        let r = cache_with(&[(10, 8.0), (11, 9.0)]);
        a.splice(1, &r).unwrap();
        assert_eq!(a.positions(), &[0, 10, 11, 3]);
        assert_eq!(&a.keys(0)[3..9], &[8.0, 8.0, 8.0, 9.0, 9.0, 9.0]);
        // Untouched rows stay.
        assert_eq!(&a.keys(0)[0..3], &[1.0, 1.0, 1.0]);
        assert_eq!(&a.keys(0)[9..12], &[4.0, 4.0, 4.0]);
    }

    #[test]
    fn splice_out_of_range_rejected() {
        let mut a = cache_with(&[(0, 1.0), (1, 2.0)]);
        let r = cache_with(&[(10, 8.0), (11, 9.0)]);
        assert!(a.splice(1, &r).is_err());
    }

    #[test]
    fn truncate_drops_tail() {
        let mut a = cache_with(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        a.truncate(1);
        assert_eq!(a.len(), 1);
        assert_eq!(a.keys(0).len(), 3);
        a.truncate(5); // no-op beyond length
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn slice_extracts_range() {
        let a = cache_with(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        let s = a.slice(1, 3).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.positions(), &[1, 2]);
        assert_eq!(&s.keys(1)[0..3], &[102.0, 102.0, 102.0]);
        assert!(a.slice(2, 1).is_err());
        assert!(a.slice(0, 4).is_err());
    }

    #[test]
    fn append_range_copies_subrange() {
        let mut a = cache_with(&[(0, 1.0)]);
        let b = cache_with(&[(5, 9.0), (6, 10.0), (7, 11.0)]);
        a.append_range(&b, 1, 3).unwrap();
        assert_eq!(a.positions(), &[0, 6, 7]);
        assert_eq!(&a.keys(0)[3..6], &[10.0, 10.0, 10.0]);
        assert!(a.append_range(&b, 2, 1).is_err());
        assert!(a.append_range(&b, 0, 4).is_err());
    }

    #[test]
    fn slice_then_append_round_trips() {
        let a = cache_with(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        let mut rebuilt = a.slice(0, 1).unwrap();
        rebuilt.append(&a.slice(1, 3).unwrap()).unwrap();
        assert_eq!(rebuilt, a);
    }

    #[test]
    fn size_bytes_counts_both_k_and_v() {
        let a = cache_with(&[(0, 1.0), (1, 2.0)]);
        // 2 layers × 2 tokens × kv_dim 3 × (k+v) × 4 bytes
        assert_eq!(a.size_bytes(), 2 * 2 * 2 * 3 * 4);
    }
}
