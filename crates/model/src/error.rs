use std::fmt;

/// Errors produced by the model engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A token id is outside the configured vocabulary.
    TokenOutOfVocab {
        /// The offending token id.
        token: u32,
        /// Configured vocabulary size.
        vocab_size: usize,
    },
    /// A position id exceeds the configured maximum position.
    PositionOutOfRange {
        /// The offending position id.
        position: usize,
        /// Configured maximum position (exclusive).
        max_position: usize,
    },
    /// `tokens` and `positions` slices have different lengths.
    LengthMismatch {
        /// Number of tokens supplied.
        tokens: usize,
        /// Number of position ids supplied.
        positions: usize,
    },
    /// A KV cache built for a different model shape was supplied.
    CacheShapeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// The configuration is internally inconsistent.
    InvalidConfig {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// An empty token sequence was supplied where at least one is needed.
    EmptyInput,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::TokenOutOfVocab { token, vocab_size } => {
                write!(f, "token id {token} out of vocabulary (size {vocab_size})")
            }
            ModelError::PositionOutOfRange {
                position,
                max_position,
            } => write!(
                f,
                "position id {position} exceeds max position {max_position}"
            ),
            ModelError::LengthMismatch { tokens, positions } => write!(
                f,
                "{tokens} tokens supplied with {positions} position ids"
            ),
            ModelError::CacheShapeMismatch { detail } => {
                write!(f, "kv cache shape mismatch: {detail}")
            }
            ModelError::InvalidConfig { detail } => write!(f, "invalid model config: {detail}"),
            ModelError::EmptyInput => write!(f, "empty token sequence"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::TokenOutOfVocab {
            token: 999,
            vocab_size: 100,
        };
        assert!(e.to_string().contains("999"));
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ModelError>();
    }
}
