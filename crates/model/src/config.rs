//! Model configuration and family presets.

use crate::{ModelError, Result};
use pc_tensor::Parallelism;

/// The transformer families supported by the engine.
///
/// Each family fixes the positional-encoding scheme, normalisation layer,
/// MLP shape, and block topology; see the [crate docs](crate) for the
/// matrix. These mirror the architectures the paper evaluates (§4.2):
/// Llama2, Falcon, MPT, plus the learned-embedding family (BERT/GPT-2) the
/// paper notes needs no adaptation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Llama2-style: RoPE, RMSNorm, SiLU-gated MLP, sequential block.
    Llama,
    /// Falcon-style: RoPE, multi-query attention, LayerNorm, parallel block.
    Falcon,
    /// MPT-style: ALiBi positional biases, LayerNorm, sequential block.
    Mpt,
    /// GPT-2-style: learned position embeddings, LayerNorm, sequential block.
    Gpt2,
}

impl Family {
    /// All supported families.
    pub const ALL: [Family; 4] = [Family::Llama, Family::Falcon, Family::Mpt, Family::Gpt2];

    /// Short display name used by benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            Family::Llama => "llama",
            Family::Falcon => "falcon",
            Family::Mpt => "mpt",
            Family::Gpt2 => "gpt2",
        }
    }
}

/// Hyperparameters of a model instance.
///
/// Use the `*_tiny` / `*_small` presets for tests and examples, or
/// [`ModelConfig::validated`] for custom shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Architecture family.
    pub family: Family,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Hidden (embedding) dimension `d`.
    pub hidden_size: usize,
    /// Number of transformer layers.
    pub num_layers: usize,
    /// Number of query heads.
    pub num_heads: usize,
    /// Number of key/value heads (equal to `num_heads` for MHA, 1 for MQA,
    /// in between for GQA). Must divide `num_heads`.
    pub num_kv_heads: usize,
    /// MLP intermediate dimension.
    pub intermediate_size: usize,
    /// Maximum position id (exclusive). Sizes the RoPE/ALiBi lookup tables
    /// and the learned position-embedding table.
    pub max_position: usize,
    /// RoPE base frequency.
    pub rope_theta: f32,
    /// Epsilon for RMSNorm/LayerNorm.
    pub norm_eps: f32,
    /// Thread count and serial/parallel threshold for the matmul and
    /// attention kernels. Presets default to [`Parallelism::serial`];
    /// callers opt in with [`Parallelism::from_env`] (honours
    /// `PC_THREADS`) or an explicit thread count. Results are
    /// bit-identical at any thread count — each output row is produced by
    /// exactly one thread running the serial kernel's floating-point
    /// order, and no reductions cross threads.
    pub parallelism: Parallelism,
}

impl ModelConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] when head counts don't divide
    /// evenly or any dimension is zero.
    pub fn validated(self) -> Result<Self> {
        let err = |detail: String| Err(ModelError::InvalidConfig { detail });
        if self.parallelism.num_threads == 0 {
            return err("parallelism.num_threads must be >= 1 (use 1 for single-threaded)".into());
        }
        if self.vocab_size == 0
            || self.hidden_size == 0
            || self.num_layers == 0
            || self.num_heads == 0
            || self.num_kv_heads == 0
            || self.intermediate_size == 0
            || self.max_position == 0
        {
            return err("all dimensions must be nonzero".into());
        }
        if !self.hidden_size.is_multiple_of(self.num_heads) {
            return err(format!(
                "hidden_size {} not divisible by num_heads {}",
                self.hidden_size, self.num_heads
            ));
        }
        if !self.num_heads.is_multiple_of(self.num_kv_heads) {
            return err(format!(
                "num_heads {} not divisible by num_kv_heads {}",
                self.num_heads, self.num_kv_heads
            ));
        }
        if !self.head_dim().is_multiple_of(2) && matches!(self.family, Family::Llama | Family::Falcon) {
            return err(format!("RoPE requires even head_dim, got {}", self.head_dim()));
        }
        Ok(self)
    }

    /// Dimension of one attention head.
    pub fn head_dim(&self) -> usize {
        self.hidden_size / self.num_heads
    }

    /// Total key (or value) width per token: `num_kv_heads × head_dim`.
    pub fn kv_dim(&self) -> usize {
        self.num_kv_heads * self.head_dim()
    }

    /// How many query heads share one kv head.
    pub fn kv_group_size(&self) -> usize {
        self.num_heads / self.num_kv_heads
    }

    /// Bytes needed to cache one token's (k, v) states across all layers at
    /// the given element width — the paper's Table 2 quantity.
    pub fn kv_bytes_per_token(&self, bytes_per_element: usize) -> usize {
        2 * self.num_layers * self.kv_dim() * bytes_per_element
    }

    /// The positional-encoding scheme implied by the family.
    pub fn position_scheme(&self) -> PositionScheme {
        match self.family {
            Family::Llama | Family::Falcon => PositionScheme::Rope,
            Family::Mpt => PositionScheme::Alibi,
            Family::Gpt2 => PositionScheme::Learned,
        }
    }

    fn base(family: Family, vocab_size: usize) -> Self {
        ModelConfig {
            family,
            vocab_size,
            hidden_size: 64,
            num_layers: 2,
            num_heads: 4,
            num_kv_heads: 4,
            intermediate_size: 128,
            max_position: 4096,
            rope_theta: 10_000.0,
            norm_eps: 1e-5,
            parallelism: Parallelism::serial(),
        }
    }

    /// Tiny Llama-style config (64-dim, 2 layers) for tests.
    pub fn llama_tiny(vocab_size: usize) -> Self {
        Self::base(Family::Llama, vocab_size)
    }

    /// Tiny Falcon-style config with multi-query attention.
    pub fn falcon_tiny(vocab_size: usize) -> Self {
        ModelConfig {
            num_kv_heads: 1,
            ..Self::base(Family::Falcon, vocab_size)
        }
    }

    /// Tiny MPT-style config (ALiBi).
    pub fn mpt_tiny(vocab_size: usize) -> Self {
        Self::base(Family::Mpt, vocab_size)
    }

    /// Tiny GPT-2-style config (learned position embeddings).
    pub fn gpt2_tiny(vocab_size: usize) -> Self {
        ModelConfig {
            max_position: 2048,
            ..Self::base(Family::Gpt2, vocab_size)
        }
    }

    /// Small Llama-style config (128-dim, 4 layers) for examples and the
    /// measured latency benches.
    pub fn llama_small(vocab_size: usize) -> Self {
        ModelConfig {
            hidden_size: 128,
            num_layers: 4,
            num_heads: 8,
            num_kv_heads: 8,
            intermediate_size: 256,
            max_position: 8192,
            ..Self::base(Family::Llama, vocab_size)
        }
    }

    /// Medium Llama-style config (256-dim, 6 layers) so latency sweeps show
    /// the quadratic/linear separation clearly.
    pub fn llama_medium(vocab_size: usize) -> Self {
        ModelConfig {
            hidden_size: 256,
            num_layers: 6,
            num_heads: 8,
            num_kv_heads: 8,
            intermediate_size: 512,
            max_position: 16_384,
            ..Self::base(Family::Llama, vocab_size)
        }
    }
}

/// Positional-encoding scheme (derived from [`Family`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PositionScheme {
    /// Rotary position embeddings applied to q/k.
    Rope,
    /// Linear attention biases from position distances.
    Alibi,
    /// Learned position-embedding table added at the input.
    Learned,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            ModelConfig::llama_tiny(100),
            ModelConfig::falcon_tiny(100),
            ModelConfig::mpt_tiny(100),
            ModelConfig::gpt2_tiny(100),
            ModelConfig::llama_small(100),
            ModelConfig::llama_medium(100),
        ] {
            assert!(cfg.validated().is_ok());
        }
    }

    #[test]
    fn invalid_head_split_rejected() {
        let cfg = ModelConfig {
            num_heads: 3,
            ..ModelConfig::llama_tiny(10)
        };
        assert!(cfg.validated().is_err());
    }

    #[test]
    fn invalid_kv_grouping_rejected() {
        let cfg = ModelConfig {
            num_kv_heads: 3,
            ..ModelConfig::llama_tiny(10)
        };
        assert!(cfg.validated().is_err());
    }

    #[test]
    fn zero_dimension_rejected() {
        let cfg = ModelConfig {
            num_layers: 0,
            ..ModelConfig::llama_tiny(10)
        };
        assert!(cfg.validated().is_err());
    }

    #[test]
    fn derived_dims() {
        let cfg = ModelConfig::llama_tiny(10);
        assert_eq!(cfg.head_dim(), 16);
        assert_eq!(cfg.kv_dim(), 64);
        assert_eq!(cfg.kv_group_size(), 1);
        let mqa = ModelConfig::falcon_tiny(10);
        assert_eq!(mqa.kv_dim(), 16);
        assert_eq!(mqa.kv_group_size(), 4);
    }

    #[test]
    fn kv_bytes_per_token_formula() {
        // 2 (k and v) × layers × kv_dim × element size.
        let cfg = ModelConfig::llama_tiny(10);
        assert_eq!(cfg.kv_bytes_per_token(2), 2 * 2 * 64 * 2);
    }

    #[test]
    fn schemes_follow_family() {
        assert_eq!(
            ModelConfig::llama_tiny(1).position_scheme(),
            PositionScheme::Rope
        );
        assert_eq!(
            ModelConfig::mpt_tiny(1).position_scheme(),
            PositionScheme::Alibi
        );
        assert_eq!(
            ModelConfig::gpt2_tiny(1).position_scheme(),
            PositionScheme::Learned
        );
    }
}
