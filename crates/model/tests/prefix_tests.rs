//! Prefix-aware batched attention identity guarantees: the two-phase
//! grouped kernel (shared K/V rows streamed once per group) must produce
//! **byte-identical** logits and cache states to the per-sequence kernel
//! and to solo decoding, for every group shape — all-shared, disjoint,
//! staggered tails, deep multi-segment prefixes, singletons — across the
//! RoPE / GQA / ALiBi / learned-position families.

use pc_model::{
    BatchScratch, GreedySampler, KvCache, KvSeq, KvView, Model, ModelConfig, Sampler, TokenId,
};
use std::sync::Arc;

fn families() -> Vec<ModelConfig> {
    vec![
        ModelConfig::llama_tiny(64),
        // Multi-query attention (4 query heads, 1 kv head).
        ModelConfig::falcon_tiny(64),
        // Grouped-query attention (4 query heads, 2 kv heads).
        ModelConfig {
            num_kv_heads: 2,
            ..ModelConfig::llama_tiny(64)
        },
        // ALiBi position biases read per-key positions in the kernel.
        ModelConfig::mpt_tiny(64),
        ModelConfig::gpt2_tiny(64),
    ]
}

/// Encodes `tokens` at positions `start..start + len` into a fresh cache
/// and freezes it as a shareable block.
fn encode_block(model: &Model, tokens: &[TokenId], start: usize) -> Arc<KvCache> {
    let mut cache = KvCache::new(model.config());
    let positions: Vec<usize> = (start..start + tokens.len()).collect();
    model.prefill(tokens, &positions, &mut cache).unwrap();
    Arc::new(cache)
}

/// A view over `blocks` (pointer-shared) plus `private` tokens prefilled
/// into its tail at the positions following the blocks.
fn view_with(model: &Model, blocks: &[&Arc<KvCache>], private: &[TokenId]) -> KvView {
    let mut view = KvView::with_shape(model.config().num_layers, model.config().kv_dim());
    for block in blocks {
        view.push_cache(Arc::clone(block)).unwrap();
    }
    if !private.is_empty() {
        let start = view.positions().iter().max().map_or(0, |p| p + 1);
        let positions: Vec<usize> = (start..start + private.len()).collect();
        model.prefill(private, &positions, &mut view).unwrap();
    }
    view
}

fn next_pos(view: &KvView) -> usize {
    view.positions().iter().max().map_or(0, |p| p + 1)
}

/// Drives `ticks` consecutive decode steps over `views` three ways —
/// solo prefill per sequence, batched with prefix sharing, batched
/// without — and asserts logits and cache bytes agree exactly at every
/// tick. Membership shrinks by one sequence per tick to exercise scratch
/// reuse across changing batch compositions.
fn assert_three_way_identity(model: &Model, views: Vec<KvView>, ticks: usize) {
    let mut solo = views.clone();
    let mut shared = views.clone();
    let mut unshared = views;
    let mut scratch_on = BatchScratch::new();
    let mut scratch_off = BatchScratch::new();
    for tick in 0..ticks {
        // Shrink membership from the tail so later ticks run a smaller,
        // differently-shaped batch through the same scratch.
        let n = solo.len() - (tick.min(solo.len() - 1));
        let tokens: Vec<TokenId> = (0..n).map(|i| ((tick * 7 + i * 3) % 64) as TokenId).collect();
        let positions: Vec<usize> = solo[..n].iter().map(next_pos).collect();

        let mut solo_logits = Vec::new();
        for (i, view) in solo[..n].iter_mut().enumerate() {
            solo_logits
                .push(model.prefill(&tokens[i..=i], &positions[i..=i], view).unwrap());
        }

        let mut refs: Vec<&mut KvView> = shared[..n].iter_mut().collect();
        let on_logits = model
            .decode_step_batch_with(&tokens, &positions, &mut refs, &mut scratch_on, true)
            .unwrap();

        let mut refs: Vec<&mut KvView> = unshared[..n].iter_mut().collect();
        let off_logits = model
            .decode_step_batch_with(&tokens, &positions, &mut refs, &mut scratch_off, false)
            .unwrap();

        assert_eq!(on_logits, solo_logits, "tick {tick} prefix-shared vs solo");
        assert_eq!(off_logits, solo_logits, "tick {tick} per-sequence vs solo");
        for i in 0..n {
            assert_eq!(shared[i].materialize(), solo[i].materialize(), "tick {tick} seq {i}");
            assert_eq!(unshared[i].materialize(), solo[i].materialize(), "tick {tick} seq {i}");
            assert_eq!(shared[i].positions(), solo[i].positions());
        }
    }
}

#[test]
fn all_shared_groups_match_solo_bitwise() {
    for cfg in families() {
        let model = Model::new(cfg, 17);
        let module = encode_block(&model, &[5, 9, 13, 2, 7, 21, 3], 0);
        // Group sizes 1, 2, 4, 7 over one shared module, staggered
        // private-tail lengths so members have different horizons.
        for size in [1usize, 2, 4, 7] {
            let views: Vec<KvView> = (0..size)
                .map(|i| {
                    let private: Vec<TokenId> = (0..=i).map(|j| ((3 + i + j) % 64) as u32).collect();
                    view_with(&model, &[&module], &private)
                })
                .collect();
            assert_three_way_identity(&model, views, 3);
        }
    }
}

#[test]
fn disjoint_and_mixed_groups_match_solo_bitwise() {
    for cfg in families() {
        let model = Model::new(cfg, 29);
        let a = encode_block(&model, &[5, 9, 13, 2], 0);
        let b = encode_block(&model, &[3, 1, 4, 1, 5], 4);
        // Two disjoint prefix groups, a flat no-segment sequence between
        // them breaking adjacency, and one member with a deeper stack.
        let views = vec![
            view_with(&model, &[&a], &[7]),
            view_with(&model, &[&a], &[11, 2]),
            view_with(&model, &[], &[19, 23, 6]),
            view_with(&model, &[&b], &[8]),
            view_with(&model, &[&b], &[12, 31]),
            view_with(&model, &[&a, &b], &[40]),
        ];
        assert_three_way_identity(&model, views, 2);
    }
}

#[test]
fn deep_multi_segment_prefixes_match_solo_bitwise() {
    for cfg in families() {
        let model = Model::new(cfg, 41);
        let a = encode_block(&model, &[5, 9], 0);
        let b = encode_block(&model, &[13, 2, 7], 2);
        // Members share [a, b]; one stops at [a], shrinking the common
        // run — the group must fall back to the one-segment prefix.
        let views = vec![
            view_with(&model, &[&a, &b], &[1]),
            view_with(&model, &[&a, &b], &[2, 3]),
            view_with(&model, &[&a], &[4]),
        ];
        assert_three_way_identity(&model, views, 3);
    }
}

#[test]
fn staggered_joins_preserve_identity() {
    // A sequence joining mid-flight means later ticks run a *larger*
    // batch whose older members have longer tails — the staggered-join
    // shape the scheduler produces.
    let cfg = ModelConfig::llama_tiny(64);
    let model = Model::new(cfg, 53);
    let module = encode_block(&model, &[5, 9, 13, 2, 7], 0);
    let mut solo: Vec<KvView> = Vec::new();
    let mut batched: Vec<KvView> = Vec::new();
    let mut scratch = BatchScratch::new();
    for tick in 0..4usize {
        // One new member joins every tick.
        let joiner = view_with(&model, &[&module], &[(30 + tick) as u32]);
        solo.push(joiner.clone());
        batched.push(joiner);
        let n = solo.len();
        let tokens: Vec<TokenId> = (0..n).map(|i| ((tick * 5 + i) % 64) as u32).collect();
        let positions: Vec<usize> = solo.iter().map(next_pos).collect();
        let mut solo_logits = Vec::new();
        for (i, view) in solo.iter_mut().enumerate() {
            solo_logits
                .push(model.prefill(&tokens[i..=i], &positions[i..=i], view).unwrap());
        }
        let mut refs: Vec<&mut KvView> = batched.iter_mut().collect();
        let got = model
            .decode_step_batch_with(&tokens, &positions, &mut refs, &mut scratch, true)
            .unwrap();
        assert_eq!(got, solo_logits, "tick {tick}");
        // Every member of the batch shares the module: one group.
        assert_eq!(scratch.groups().len(), 1);
        assert_eq!(scratch.groups()[0].len, n);
    }
    for (s, b) in solo.iter().zip(&batched) {
        assert_eq!(s.materialize(), b.materialize());
    }
}

#[test]
fn row_traffic_stats_count_shared_rows_once_per_group() {
    let cfg = ModelConfig::llama_tiny(64);
    let layers = cfg.num_layers as u64;
    let model = Model::new(cfg, 61);
    let module = encode_block(&model, &[5, 9, 13, 2, 7, 21], 0); // 6 shared rows
    let views: Vec<KvView> = (0..4)
        .map(|i| view_with(&model, &[&module], &[(10 + i) as u32]))
        .collect();
    let mut scratch = BatchScratch::new();

    let run = |views: &mut Vec<KvView>, scratch: &mut BatchScratch, sharing: bool| {
        let tokens = [1u32, 2, 3, 4];
        let positions: Vec<usize> = views.iter().map(next_pos).collect();
        let mut refs: Vec<&mut KvView> = views.iter_mut().collect();
        model
            .decode_step_batch_with(&tokens, &positions, &mut refs, scratch, sharing)
            .unwrap();
        scratch.stats()
    };

    let mut on_views = views.clone();
    let on = run(&mut on_views, &mut scratch, true);
    // 6 shared rows once per group; each member reads its own 2 private
    // rows (1 prefilled + the token pushed this tick); × layers.
    assert_eq!(on.shared_rows_read, 6 * layers);
    assert_eq!(on.private_rows_read, 4 * 2 * layers);
    assert_eq!(on.share_percent(), (6 * 100 / 14) as i64);

    let mut off_views = views.clone();
    let off = run(&mut off_views, &mut scratch, false);
    // Sharing off: every member streams all 8 of its rows privately —
    // O(batch × context) row traffic vs O(unique) above.
    assert_eq!(off.shared_rows_read, 0);
    assert_eq!(off.private_rows_read, 4 * 8 * layers);
    assert!(off.total_rows_read() > on.total_rows_read());
}

#[test]
fn greedy_decode_sequences_agree_over_many_ticks() {
    // End-to-end: greedy-decode 8 tokens per sequence through the shared
    // kernel and compare the *sampled token streams* against solo
    // generation — the user-visible form of byte-identity.
    let cfg = ModelConfig::mpt_tiny(64);
    let model = Model::new(cfg, 71);
    let module = encode_block(&model, &[5, 9, 13, 2], 0);
    let seeds: [&[TokenId]; 3] = [&[7], &[11, 3], &[2, 4, 8]];

    let mut solo_streams = Vec::new();
    for seed in seeds {
        let mut view = view_with(&model, &[&module], seed);
        let mut tokens_out = Vec::new();
        let mut logits = {
            let pos = next_pos(&view);
            model.prefill(&[1], &[pos], &mut view).unwrap()
        };
        for _ in 0..8 {
            let t = GreedySampler.sample(&logits);
            tokens_out.push(t);
            let pos = next_pos(&view);
            logits = model.prefill(&[t], &[pos], &mut view).unwrap();
        }
        solo_streams.push(tokens_out);
    }

    let mut views: Vec<KvView> = seeds.iter().map(|s| view_with(&model, &[&module], s)).collect();
    let mut scratch = BatchScratch::new();
    let first_positions: Vec<usize> = views.iter().map(next_pos).collect();
    let mut refs: Vec<&mut KvView> = views.iter_mut().collect();
    let mut logits = model
        .decode_step_batch_with(&[1, 1, 1], &first_positions, &mut refs, &mut scratch, true)
        .unwrap();
    let mut batch_streams = vec![Vec::new(); seeds.len()];
    for _ in 0..8 {
        let tokens: Vec<TokenId> = logits.iter().map(|l| GreedySampler.sample(l)).collect();
        for (stream, &t) in batch_streams.iter_mut().zip(&tokens) {
            stream.push(t);
        }
        let positions: Vec<usize> = views.iter().map(next_pos).collect();
        let mut refs: Vec<&mut KvView> = views.iter_mut().collect();
        logits = model
            .decode_step_batch_with(&tokens, &positions, &mut refs, &mut scratch, true)
            .unwrap();
    }
    assert_eq!(batch_streams, solo_streams);
}
