//! Property-based tests for the engine's cache-reuse invariants.
//!
//! These pin down the correctness claims Prompt Cache builds on: chunked
//! prefill ≡ monolithic prefill, relative positional encodings are
//! shift-invariant, and KV caches compose (slice ∘ append = identity).

use pc_model::{Family, KvCache, Model, ModelConfig, RopeTable};
use proptest::prelude::*;

fn family_cfg(which: u8) -> ModelConfig {
    match which % 4 {
        0 => ModelConfig::llama_tiny(32),
        1 => ModelConfig::falcon_tiny(32),
        2 => ModelConfig::mpt_tiny(32),
        _ => ModelConfig::gpt2_tiny(32),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Splitting a prefill at any point yields the same final logits.
    #[test]
    fn chunk_split_invariance(
        which in 0u8..4,
        tokens in proptest::collection::vec(0u32..32, 2..10),
        split_frac in 0.0f64..1.0,
    ) {
        let cfg = family_cfg(which);
        let model = Model::new(cfg.clone(), 99);
        let positions: Vec<usize> = (0..tokens.len()).collect();
        let split = ((tokens.len() as f64 * split_frac) as usize).clamp(1, tokens.len() - 1);

        let mut full_cache = KvCache::new(&cfg);
        let full = model.prefill(&tokens, &positions, &mut full_cache).unwrap();

        let mut inc_cache = KvCache::new(&cfg);
        model.encode(&tokens[..split], &positions[..split], &mut inc_cache).unwrap();
        let part = model.prefill(&tokens[split..], &positions[split..], &mut inc_cache).unwrap();

        for (a, b) in full.iter().zip(&part) {
            prop_assert!((a - b).abs() < 2e-3, "split {split}: {a} vs {b}");
        }
    }

    /// RoPE and ALiBi families: shifting all positions by a constant leaves
    /// next-token logits unchanged.
    #[test]
    fn relative_schemes_shift_invariant(
        which in prop_oneof![Just(0u8), Just(1), Just(2)],
        tokens in proptest::collection::vec(0u32..32, 1..8),
        shift in 0usize..1000,
    ) {
        let cfg = family_cfg(which);
        prop_assume!(cfg.family != Family::Gpt2);
        let model = Model::new(cfg.clone(), 5);
        let base: Vec<usize> = (0..tokens.len()).collect();
        let shifted: Vec<usize> = base.iter().map(|p| p + shift).collect();

        let mut a = KvCache::new(&cfg);
        let la = model.prefill(&tokens, &base, &mut a).unwrap();
        let mut b = KvCache::new(&cfg);
        let lb = model.prefill(&tokens, &shifted, &mut b).unwrap();
        for (x, y) in la.iter().zip(&lb) {
            prop_assert!((x - y).abs() < 2e-2, "shift {shift}: {x} vs {y}");
        }
    }

    /// slice(0, k) + slice(k, n) re-appended reproduces the original cache.
    #[test]
    fn cache_slice_append_round_trip(
        which in 0u8..4,
        tokens in proptest::collection::vec(0u32..32, 2..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let cfg = family_cfg(which);
        let model = Model::new(cfg.clone(), 17);
        let positions: Vec<usize> = (0..tokens.len()).collect();
        let mut cache = KvCache::new(&cfg);
        model.encode(&tokens, &positions, &mut cache).unwrap();

        let cut = ((tokens.len() as f64 * cut_frac) as usize).min(tokens.len());
        let mut rebuilt = cache.slice(0, cut).unwrap();
        rebuilt.append(&cache.slice(cut, cache.len()).unwrap()).unwrap();
        prop_assert_eq!(rebuilt, cache);
    }

    /// Splicing a segment over itself is the identity.
    #[test]
    fn cache_self_splice_is_identity(
        tokens in proptest::collection::vec(0u32..32, 3..10),
        start_frac in 0.0f64..1.0,
    ) {
        let cfg = ModelConfig::llama_tiny(32);
        let model = Model::new(cfg.clone(), 8);
        let positions: Vec<usize> = (0..tokens.len()).collect();
        let mut cache = KvCache::new(&cfg);
        model.encode(&tokens, &positions, &mut cache).unwrap();
        let original = cache.clone();

        let start = ((tokens.len() as f64 * start_frac) as usize).min(tokens.len() - 1);
        let seg = cache.slice(start, tokens.len()).unwrap();
        cache.splice(start, &seg).unwrap();
        prop_assert_eq!(cache, original);
    }

    /// Greedy generation from the same state is always identical.
    #[test]
    fn generation_determinism(
        which in 0u8..4,
        tokens in proptest::collection::vec(0u32..32, 1..6),
    ) {
        let cfg = family_cfg(which);
        let model = Model::new(cfg.clone(), 31);
        let positions: Vec<usize> = (0..tokens.len()).collect();
        let run = || {
            let mut cache = KvCache::new(&cfg);
            let logits = model.prefill(&tokens, &positions, &mut cache).unwrap();
            model
                .generate(&mut cache, &logits, 5, None, &mut pc_model::GreedySampler)
                .unwrap()
        };
        prop_assert_eq!(run(), run());
    }

    /// A parallel forward pass is **bit-identical** to the serial one for
    /// every family, any thread count (including more threads than rows),
    /// and odd row counts — m = 1 decode shapes, m < threads, and
    /// non-multiples of the thread count. Exact `==`, not approximate.
    #[test]
    fn parallel_forward_is_bit_identical(
        which in 0u8..4,
        tokens in proptest::collection::vec(0u32..32, 1..12),
        threads in 2usize..9,
    ) {
        let serial_cfg = family_cfg(which);
        let parallel_cfg = ModelConfig {
            // min_work: 0 forces the fan-out even at toy sizes.
            parallelism: pc_model::Parallelism { num_threads: threads, min_work: 0 },
            ..serial_cfg.clone()
        };
        let positions: Vec<usize> = (0..tokens.len()).collect();
        let serial = Model::new(serial_cfg.clone(), 23);
        let parallel = Model::new(parallel_cfg, 23);
        let mut a = KvCache::new(&serial_cfg);
        let mut b = KvCache::new(&serial_cfg);
        let la = serial.forward(&tokens, &positions, &mut a).unwrap();
        let lb = parallel.forward(&tokens, &positions, &mut b).unwrap();
        prop_assert_eq!(la.data(), lb.data());
        prop_assert_eq!(a, b);
    }

    /// RoPE rotations compose: `apply(p + Δ)` ≡ `apply_shift(Δ) ∘ apply(p)`
    /// across head dims and theta bases. This is the identity the
    /// deferred-RoPE cache rests on — keys stored rotated at canonical
    /// position `p` need only the extra `R(Δ)` at read time.
    #[test]
    fn rope_shift_composition(
        half_dims in 1usize..9,
        theta in prop_oneof![Just(500.0f32), Just(10_000.0), Just(1_000_000.0)],
        pos in 0usize..200,
        shift in 0usize..300,
        head in proptest::collection::vec(-2.0f32..2.0, 16),
    ) {
        let head_dim = half_dims * 2;
        let rope = RopeTable::new(head_dim, 600, theta);
        let head = &head[..head_dim];

        let mut direct = head.to_vec();
        rope.apply(&mut direct, pos + shift);

        let mut composed = head.to_vec();
        rope.apply(&mut composed, pos);
        rope.apply_shift(&mut composed, shift as isize);

        for (a, b) in direct.iter().zip(&composed) {
            prop_assert!((a - b).abs() < 1e-4, "dim {head_dim} theta {theta} pos {pos} shift {shift}: {a} vs {b}");
        }
    }

    /// Negative shifts invert positive ones: `apply_shift(-Δ) ∘
    /// apply_shift(Δ)` is the identity, so a cache entry can relocate
    /// backwards (packed placements before its canonical offset) too.
    #[test]
    fn rope_shift_negation_round_trips(
        half_dims in 1usize..9,
        theta in prop_oneof![Just(500.0f32), Just(10_000.0), Just(1_000_000.0)],
        shift in 1usize..300,
        head in proptest::collection::vec(-2.0f32..2.0, 16),
    ) {
        let head_dim = half_dims * 2;
        let rope = RopeTable::new(head_dim, 600, theta);
        let original = head[..head_dim].to_vec();

        let mut spun = original.clone();
        rope.apply_shift(&mut spun, shift as isize);
        rope.apply_shift(&mut spun, -(shift as isize));

        for (a, b) in original.iter().zip(&spun) {
            prop_assert!((a - b).abs() < 1e-5, "dim {head_dim} theta {theta} shift {shift}: {a} vs {b}");
        }
    }

    /// Logits are always finite, whatever the position layout.
    #[test]
    fn forward_is_numerically_stable(
        which in 0u8..4,
        tokens in proptest::collection::vec(0u32..32, 1..8),
        gaps in proptest::collection::vec(1usize..50, 1..8),
    ) {
        let cfg = family_cfg(which);
        let model = Model::new(cfg.clone(), 77);
        // Build strictly increasing, gapped positions.
        let mut positions = Vec::new();
        let mut p = 0usize;
        for (i, g) in gaps.iter().cycle().take(tokens.len()).enumerate() {
            p += if i == 0 { 0 } else { *g };
            positions.push(p);
        }
        prop_assume!(positions.last().copied().unwrap_or(0) < cfg.max_position);
        let mut cache = KvCache::new(&cfg);
        let logits = model.forward(&tokens, &positions, &mut cache).unwrap();
        prop_assert!(logits.all_finite());
    }
}
