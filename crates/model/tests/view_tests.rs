//! Segmented-vs-contiguous equality: running the transformer over a
//! [`KvView`] assembled from `Arc`-shared blocks must be **bit-identical**
//! to running it over one flat [`KvCache`] — across every model family
//! (RoPE, ALiBi, GPT-2 learned positions) and across segment boundaries
//! at degenerate block sizes (1, odd, whole-cache, larger-than-cache).

use pc_model::{GreedySampler, KvCache, KvView, Model, ModelConfig};
use std::sync::Arc;

fn all_families() -> Vec<ModelConfig> {
    vec![
        ModelConfig::llama_tiny(64),
        ModelConfig::falcon_tiny(64),
        ModelConfig::mpt_tiny(64),
        ModelConfig::gpt2_tiny(64),
    ]
}

/// Splits `cache` into Arc-shared blocks of `block` rows and assembles a
/// view over them.
fn view_of_blocks(cache: &KvCache, block: usize) -> KvView {
    let mut view = KvView::with_shape(cache.num_layers(), cache.kv_dim());
    let mut start = 0;
    while start < cache.len() {
        let end = (start + block).min(cache.len());
        let slice = Arc::new(cache.slice(start, end).unwrap());
        view.push_cache(slice).unwrap();
        start = end;
    }
    view
}

#[test]
fn segmented_prefill_is_bit_identical_across_families_and_block_sizes() {
    for cfg in all_families() {
        let model = Model::new(cfg.clone(), 17);
        let prefix_tokens: Vec<u32> = vec![5, 9, 13, 21, 2, 33, 7];
        let prefix_positions: Vec<usize> = (0..prefix_tokens.len()).collect();
        let suffix_tokens: Vec<u32> = vec![11, 4, 58];
        let suffix_positions: Vec<usize> = (7..10).collect();

        // "Cached" prefix states, exactly as the store would hold them.
        let prefix = model
            .encode_segment(&prefix_tokens, &prefix_positions)
            .unwrap();

        // Contiguous reference: flat cache, prefill the suffix.
        let mut flat = prefix.clone();
        let flat_logits = model
            .prefill(&suffix_tokens, &suffix_positions, &mut flat)
            .unwrap();

        // Block sizes: per-token, odd, exactly the cache, larger than it.
        let n = prefix.len();
        for block in [1usize, 3, n, n + 5] {
            let mut view = view_of_blocks(&prefix, block);
            let view_logits = model
                .prefill(&suffix_tokens, &suffix_positions, &mut view)
                .unwrap();
            assert_eq!(
                view_logits, flat_logits,
                "family {:?}, block {block}: prefill logits diverged",
                cfg.family
            );
            // The tail holds exactly the suffix states the flat path
            // appended, and the whole view materialises to the flat cache.
            assert_eq!(view.tail().len(), suffix_tokens.len());
            assert_eq!(
                view.materialize(),
                flat,
                "family {:?}, block {block}: states diverged",
                cfg.family
            );
        }
    }
}

#[test]
fn segmented_decode_is_bit_identical() {
    // Greedy decoding over a segmented view must emit the same token ids
    // as over a flat cache — the decode loop appends into the tail only.
    for cfg in all_families() {
        let model = Model::new(cfg.clone(), 29);
        let prefix = model
            .encode_segment(&[3, 1, 4, 1, 5, 9], &[0, 1, 2, 3, 4, 5])
            .unwrap();

        let mut flat = prefix.clone();
        let flat_logits = model.prefill(&[26, 53], &[6, 7], &mut flat).unwrap();
        let flat_out = model
            .generate(&mut flat, &flat_logits, 6, None, &mut GreedySampler)
            .unwrap();

        let mut view = view_of_blocks(&prefix, 1);
        let view_logits = model.prefill(&[26, 53], &[6, 7], &mut view).unwrap();
        assert_eq!(view_logits, flat_logits, "family {:?}", cfg.family);
        let view_out = model
            .generate(&mut view, &view_logits, 6, None, &mut GreedySampler)
            .unwrap();
        assert_eq!(view_out, flat_out, "family {:?}", cfg.family);
        assert_eq!(view.materialize(), flat, "family {:?}", cfg.family);
    }
}

#[test]
fn shared_blocks_are_aliased_not_copied() {
    // Many views over one block: pointer identity holds and physical
    // bytes stay flat while logical bytes scale with the session count.
    let cfg = ModelConfig::llama_tiny(64);
    let model = Model::new(cfg.clone(), 3);
    let block = Arc::new(model.encode_segment(&[7, 8, 9, 10], &[0, 1, 2, 3]).unwrap());

    let views: Vec<KvView> = (0..8)
        .map(|i| {
            let mut view = KvView::with_shape(cfg.num_layers, cfg.kv_dim());
            view.push_cache(Arc::clone(&block)).unwrap();
            model
                .prefill(&[11 + i as u32], &[4], &mut view)
                .unwrap();
            view
        })
        .collect();

    for view in &views {
        assert!(Arc::ptr_eq(view.segments()[0].cache(), &block));
        assert_eq!(view.shared_bytes(), block.size_bytes());
    }
    let tails: usize = views.iter().map(|v| v.tail().size_bytes()).sum();
    assert_eq!(
        pc_model::view::physical_bytes(&views),
        block.size_bytes() + tails
    );
    assert_eq!(
        pc_model::view::logical_bytes(&views),
        8 * block.size_bytes() + tails
    );
}
