//! Cross-crate integration tests: workload generation → PML → engine →
//! metrics → storage features, exercised together.

use pc_longbench::{metrics, DatasetSpec, Workload};
use pc_model::{Family, Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use prompt_cache::{ServeRequest, Served};

fn small_opts(n: usize) -> ServeOptions {
    ServeOptions::default().max_new_tokens(n)
}

#[test]
fn longbench_pipeline_end_to_end() {
    // Workload → schema/prompt PML → engine → scored outputs, for one
    // dataset per category.
    for name in [
        "NarrativeQA",
        "HotpotQA",
        "GovReport",
        "TREC",
        "PassageCount",
        "LCC",
    ] {
        let spec = DatasetSpec::by_name(name).unwrap();
        let sample = Workload::new(spec, 3, 0.02).sample(0);
        let engine = pc_bench::measured::engine_for_sample(&sample, Family::Llama, 3);
        engine.register_schema(&sample.schema_pml("it")).unwrap();
        let r = engine
            .serve(&ServeRequest::new(sample.prompt_pml("it")).options(small_opts(4).clone())).map(Served::into_response)
            .unwrap();
        assert!(r.stats.cached_tokens > 0, "{name}");
        let score = metrics::score(spec.metric, &r.text, &sample.answer);
        assert!((0.0..=1.0).contains(&score), "{name}");
    }
}

#[test]
fn all_21_datasets_serve_from_cache() {
    for spec in &pc_longbench::datasets::ALL {
        let sample = Workload::new(spec, 1, 0.01).sample(0);
        let engine = pc_bench::measured::engine_for_sample(&sample, Family::Llama, 1);
        engine.register_schema(&sample.schema_pml("all")).unwrap();
        let r = engine
            .serve(&ServeRequest::new(sample.prompt_pml("all")).options(small_opts(1).clone())).map(Served::into_response)
            .unwrap();
        assert_eq!(
            r.stats.cached_tokens,
            sample.context_words(),
            "{}",
            spec.name
        );
        assert_eq!(r.stats.new_tokens, sample.question_words(), "{}", spec.name);
    }
}

#[test]
fn codec_round_trips_an_engine_encoded_module() {
    // Encode a module with the real model, serialise, deserialise, and
    // verify the states are byte-identical.
    let model = Model::new(ModelConfig::llama_tiny(64), 5);
    let seg = model
        .encode_segment(&[1, 2, 3, 4, 5], &[10, 11, 12, 13, 14])
        .unwrap();
    let bytes = pc_cache::codec::encode(&seg);
    let decoded = pc_cache::codec::decode(&bytes).unwrap();
    assert_eq!(decoded, seg);
}

#[test]
fn quantized_module_preserves_next_token() {
    // Dequantized states drive generation to the same greedy token as the
    // exact states (int8 error ≪ logit margins on this model).
    let cfg = ModelConfig::llama_tiny(64);
    let model = Model::new(cfg.clone(), 9);
    let tokens = [7u32, 3, 22, 41, 5, 17];
    let positions: Vec<usize> = (0..tokens.len()).collect();
    let exact = model.encode_segment(&tokens, &positions).unwrap();
    let lossy = pc_cache::quant::QuantizedKv::quantize(&exact).dequantize();

    let next = |seed_cache: &pc_model::KvCache| {
        let mut cache = seed_cache.clone();
        let logits = model.prefill(&[9], &[tokens.len()], &mut cache).unwrap();
        pc_tensor::ops::argmax_slice(&logits).unwrap()
    };
    assert_eq!(next(&exact), next(&lossy));
}

#[test]
fn simulator_agrees_with_measurement_on_direction_and_shape() {
    // The measured engine and the analytic simulator must agree that (a)
    // caching wins, and (b) the baseline grows faster than linearly while
    // the cached path grows roughly linearly.
    let (b_small, p_small) = pc_bench::experiments::measured_fully_cached(128);
    let (b_large, p_large) = pc_bench::experiments::measured_fully_cached(512);
    assert!(b_small > p_small && b_large > p_large);
    // 4× tokens → baseline more than 4× (quadratic term), cached < 16×.
    assert!(b_large / b_small > 3.0, "{b_small} -> {b_large}");
    assert!(p_large / p_small < b_large / b_small);
}

#[test]
fn device_tier_eviction_with_real_modules() {
    // Small device tier forces eviction while serving still succeeds.
    use pc_cache::{EvictionPolicy, StoreConfig, Tier};
    let doc1 = "alpha beta gamma delta epsilon zeta eta theta";
    let doc2 = "one two three four five six seven eight nine ten";
    let tokenizer = WordTokenizer::train(&[doc1, doc2, "question"]);
    let vocab = tokenizer.vocab_size().max(64);
    let cfg = ModelConfig::llama_tiny(vocab);
    // Capacity ≈ one 8-token module (2 layers × kv 64 × 2 × 8 tokens × 4B).
    let engine = PromptCache::new(
        Model::new(cfg, 2),
        tokenizer,
        EngineConfig::default().store(StoreConfig::default().device_capacity_bytes(9000).policy(EvictionPolicy::Lru)).tier(Tier::Device),
    );
    engine
        .register_schema(&format!(
            r#"<schema name="ev"><module name="a">{doc1}</module><module name="b">{doc2}</module></schema>"#
        ))
        .unwrap();
    for _ in 0..3 {
        engine
            .serve(&ServeRequest::new(r#"<prompt schema="ev"><a/>question</prompt>"#).options(small_opts(1).clone())).map(Served::into_response)
            .unwrap();
        engine
            .serve(&ServeRequest::new(r#"<prompt schema="ev"><b/>question</prompt>"#).options(small_opts(1).clone())).map(Served::into_response)
            .unwrap();
    }
    let stats = engine.store_stats();
    assert!(stats.bytes_copied_h2d > 0);
    // The two modules cannot both fit: thrashing shows up as copies on
    // later requests too (or evictions if both individually fit).
    assert!(stats.evictions > 0 || stats.device_hits < stats.hits);
}

#[test]
fn chat_template_compiles_into_cached_text() {
    let corpus = "be helpful and honest answer the question now please";
    let tokenizer = WordTokenizer::train(&[corpus]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 4),
        tokenizer,
        EngineConfig::default().template(pc_pml::template::ChatTemplate::Llama2),
    );
    engine
        .register_schema(
            r#"<schema name="chat"><system>be helpful and honest</system></schema>"#,
        )
        .unwrap();
    let r = engine
        .serve(&ServeRequest::new(r#"<prompt schema="chat">answer the question now</prompt>"#).max_new_tokens(1)).map(Served::into_response)
        .unwrap();
    // [INST] <<SYS>> markers + system text are anonymous cached tokens.
    assert!(r.stats.cached_tokens > 4, "{:?}", r.stats);
}

#[test]
fn parallel_encode_matches_serial() {
    let schema = r#"<schema name="par">
        <module name="a">one two three four five</module>
        <module name="b">six seven eight nine ten</module>
        <module name="c">alpha beta gamma delta</module>
      </schema>"#;
    let corpus = "one two three four five six seven eight nine ten alpha beta gamma delta go";
    let build = |threads: usize| {
        let tokenizer = WordTokenizer::train(&[corpus]);
        let vocab = tokenizer.vocab_size().max(64);
        let engine = PromptCache::new(
            Model::new(ModelConfig::llama_tiny(vocab), 12),
            tokenizer,
            EngineConfig::default().parallelism(prompt_cache::Parallelism::with_threads(threads)),
        );
        engine.register_schema(schema).unwrap();
        engine
    };
    let serial = build(1);
    let parallel = build(4);

    // Concurrent registration must store **byte-identical** KV states for
    // every span, not merely similar ones: compare the raw f32 bit
    // patterns of keys, values, and position ids.
    let a = serial.schema_span_states("par");
    let b = parallel.schema_span_states("par");
    assert_eq!(a.len(), b.len());
    assert!(a.iter().any(|s| s.is_some()), "no spans were cached");
    for (i, (sa, sb)) in a.iter().zip(&b).enumerate() {
        match (sa, sb) {
            (None, None) => {}
            (Some(sa), Some(sb)) => {
                assert_eq!(sa.positions(), sb.positions(), "span {i} positions");
                for layer in 0..sa.num_layers() {
                    let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(
                        bits(sa.keys(layer)),
                        bits(sb.keys(layer)),
                        "span {i} layer {layer} keys"
                    );
                    assert_eq!(
                        bits(sa.values(layer)),
                        bits(sb.values(layer)),
                        "span {i} layer {layer} values"
                    );
                }
            }
            _ => panic!("span {i} cached on one path only"),
        }
    }

    // And the end-to-end generation must agree too.
    let serve = |engine: &prompt_cache::PromptCache| {
        engine
            .serve(&ServeRequest::new(r#"<prompt schema="par"><a/><b/><c/>go</prompt>"#).max_new_tokens(6)).map(Served::into_response)
            .unwrap()
            .tokens
    };
    assert_eq!(serve(&serial), serve(&parallel));
}

#[test]
fn figure_reports_are_consistent() {
    // fig3's JSON speedups must match what the markdown narrates: GPU-mem
    // faster than CPU-mem, both faster than baseline.
    let report = pc_bench::experiments::run("fig3", true).unwrap();
    for row in report.json["rows"].as_array().unwrap() {
        let base = row["baseline_s"].as_f64().unwrap();
        let host = row["pc_cpu_mem_s"].as_f64().unwrap();
        let dev = row["pc_gpu_mem_s"].as_f64().unwrap();
        assert!(dev <= host && host < base, "{row}");
    }
}

#[test]
fn table2_reproduction_within_tolerance() {
    let report = pc_bench::experiments::run("table2", true).unwrap();
    for row in report.json["rows"].as_array().unwrap() {
        let paper = row["paper"].as_f64().unwrap();
        let got = row["reproduced"].as_f64().unwrap();
        assert!(
            (got - paper).abs() / paper < 0.3,
            "{}: {got} vs {paper}",
            row["llm"]
        );
    }
}

#[test]
fn unified_error_taxonomy_round_trips() {
    // The facade's `pc` module is the one-stop error surface: engine
    // errors ARE `pc::Error`, and the serving taxonomy re-exports are
    // the same types the server crate hands back.
    use prompt_cache_repro::pc;

    let engine_err: pc::Error = prompt_cache::EngineError::EmptyPrompt;
    assert_eq!(engine_err.to_string(), "prompt has no content");

    let shed: pc::ShedReason = pc_server::ShedReason::ShuttingDown;
    assert_eq!(shed, pc_server::ShedReason::ShuttingDown);
    let submit: pc::SubmitError = pc_server::SubmitError::QueueFull;
    assert!(matches!(submit, pc::SubmitError::QueueFull));
    let outcome: pc::ServeOutcome = prompt_cache::ServeOutcome::Complete;
    assert_eq!(outcome, pc::ServeOutcome::Complete);

    fn engine_result(ok: bool) -> pc::Result<u32> {
        if ok {
            Ok(1)
        } else {
            Err(pc::Error::EmptyPrompt)
        }
    }
    assert_eq!(engine_result(true).unwrap(), 1);
    assert!(engine_result(false).is_err());
}
