//! Quantifying the §3.3 masking approximation with logit-level distances:
//! the cross-crate measurement behind the Table 1 reproduction.

use pc_model::fidelity::{logit_distance, token_agreement};
use pc_model::{KvCache, Model, ModelConfig};
use pc_tokenizer::{Tokenizer, WordTokenizer};
use prompt_cache::{EngineConfig, PromptCache, ServeOptions};
use prompt_cache::{ServeRequest, Served};

/// Computes next-token logits for `question` after `modules`, three ways:
/// baseline (monolithic prefill), masked (modules encoded independently),
/// scaffolded (modules co-encoded).
fn three_way_logits(
    modules: &[&str],
    question: &str,
    seed: u64,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let corpus = modules.join(" ") + " " + question;
    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let cfg = ModelConfig::llama_tiny(vocab);
    let model = Model::new(cfg.clone(), seed);

    let module_tokens: Vec<Vec<u32>> = modules.iter().map(|m| tokenizer.encode(m)).collect();
    let question_tokens = tokenizer.encode(question);
    let starts: Vec<usize> = module_tokens
        .iter()
        .scan(0usize, |acc, t| {
            let s = *acc;
            *acc += t.len();
            Some(s)
        })
        .collect();
    let total: usize = module_tokens.iter().map(Vec::len).sum();

    // Baseline: one pass over everything.
    let mut all = Vec::new();
    for t in &module_tokens {
        all.extend_from_slice(t);
    }
    all.extend_from_slice(&question_tokens);
    let positions: Vec<usize> = (0..all.len()).collect();
    let mut cache = KvCache::new(&cfg);
    let baseline = model.prefill(&all, &positions, &mut cache).unwrap();

    // Masked: encode each module independently at its schema positions.
    let mut session = KvCache::new(&cfg);
    for (tokens, &start) in module_tokens.iter().zip(&starts) {
        let positions: Vec<usize> = (start..start + tokens.len()).collect();
        let seg = model.encode_segment(tokens, &positions).unwrap();
        session.append(&seg).unwrap();
    }
    let q_positions: Vec<usize> = (total..total + question_tokens.len()).collect();
    let masked = model
        .prefill(&question_tokens, &q_positions, &mut session.clone())
        .unwrap();

    // Scaffolded: modules co-encoded in one segment.
    let mut joint_tokens = Vec::new();
    for t in &module_tokens {
        joint_tokens.extend_from_slice(t);
    }
    let joint_positions: Vec<usize> = (0..total).collect();
    let mut scaffold_session = model
        .encode_segment(&joint_tokens, &joint_positions)
        .unwrap();
    let scaffolded = model
        .prefill(&question_tokens, &q_positions, &mut scaffold_session)
        .unwrap();

    (baseline, masked, scaffolded)
}

const MODULES: [&str; 3] = [
    "the miami coast has warm beaches surf and sun",
    "tokyo offers temples gardens and remarkable food",
    "the colosseum sits in rome hosting ancient games",
];

#[test]
fn scaffolding_is_exact_masking_is_bounded() {
    let (baseline, masked, scaffolded) =
        three_way_logits(&MODULES, "compare the three destinations now", 42);

    // Scaffolded path is numerically identical to the baseline (same
    // computation, different bookkeeping).
    let d_scaffold = logit_distance(&baseline, &scaffolded);
    assert!(d_scaffold.argmax_agrees);
    assert!(d_scaffold.max_abs_diff < 1e-3, "{d_scaffold:?}");

    // Masked path diverges (it is an approximation) but stays bounded —
    // and strictly worse than scaffolding.
    let d_masked = logit_distance(&baseline, &masked);
    assert!(d_masked.max_abs_diff > d_scaffold.max_abs_diff);
    assert!(
        d_masked.kl_divergence < 5.0,
        "masking divergence blew up: {d_masked:?}"
    );
}

#[test]
fn single_module_has_zero_masking_divergence() {
    let (baseline, masked, _) =
        three_way_logits(&MODULES[..1], "compare the destinations", 7);
    let d = logit_distance(&baseline, &masked);
    assert!(d.argmax_agrees);
    assert!(d.max_abs_diff < 1e-3, "{d:?}");
    assert!(d.kl_divergence < 1e-5);
}

#[test]
fn engine_level_token_agreement_tracks_logit_distance() {
    // The engine's greedy outputs inherit the logit-level picture: with
    // one module, agreement is total.
    let corpus = MODULES.join(" ") + " compare the destinations now";
    let tokenizer = WordTokenizer::train(&[corpus.as_str()]);
    let vocab = tokenizer.vocab_size().max(64);
    let engine = PromptCache::new(
        Model::new(ModelConfig::llama_tiny(vocab), 42),
        tokenizer,
        EngineConfig::default(),
    );
    engine
        .register_schema(&format!(
            r#"<schema name="f"><module name="m">{}</module></schema>"#,
            MODULES[0]
        ))
        .unwrap();
    let prompt = r#"<prompt schema="f"><m/>compare the destinations now</prompt>"#;
    let opts = ServeOptions::default().max_new_tokens(10);
    let cached = engine.serve(&ServeRequest::new(prompt).options(opts.clone())).map(Served::into_response).unwrap();
    let baseline = engine.serve(&ServeRequest::new(prompt).options(opts.clone()).baseline(true)).map(Served::into_response).unwrap();
    assert_eq!(token_agreement(&cached.tokens, &baseline.tokens), 1.0);
}
