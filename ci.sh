#!/usr/bin/env bash
# Repo CI gate: release build, full test suite, and lint-clean clippy.
# Run from the repo root. Honours PC_THREADS like the rest of the stack.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
