#!/usr/bin/env bash
# Repo CI gate: release build, full test suite, and lint-clean clippy.
# Run from the repo root. Honours PC_THREADS like the rest of the stack.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test -q -p pc-telemetry
# Zero-overhead smoke check: a serve with telemetry disabled must record
# no spans and no metric state, and results must match the enabled path.
cargo test -q -p prompt-cache --test telemetry_tests
cargo clippy --all-targets -- -D warnings
