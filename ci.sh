#!/usr/bin/env bash
# Repo CI gate: release build, full test suite, and lint-clean clippy.
# Run from the repo root. Honours PC_THREADS like the rest of the stack.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test -q -p pc-telemetry
# Zero-overhead smoke check: a serve with telemetry disabled must record
# no spans and no metric state, and results must match the enabled path.
cargo test -q -p prompt-cache --test telemetry_tests
# Zero-copy gate: segmented views must be bit-identical to flat caches at
# the kernel/model level, alias (not copy) shared module blocks, and the
# engine must serve byte-identical responses with zero_copy on vs off —
# with zero KV memcpy on the default path.
cargo test -q -p pc-model --test view_tests
cargo test -q -p prompt-cache --test zero_copy_tests
# Resilience gate: deadline/cancellation edge cases at engine and server
# level, plus the deterministic chaos suite (injected cache misses,
# corruption, and worker stalls must degrade gracefully with
# byte-identical output, never break the serve path).
cargo test -q -p prompt-cache --test resilience_tests
cargo test -q -p pc-server --test resilience
cargo test -q -p pc-faults
# Batching gate: batched greedy decoding must be byte-identical to solo
# serving across batch sizes, cache states, staggered joins, and
# cancellations — at the scheduler level and through the batched server.
cargo test -q -p prompt-cache --test batching_tests
cargo test -q -p pc-server batched
# Prefix-sharing gate: the grouped two-phase attention kernel must be
# byte-identical to the per-sequence kernel and to solo decoding across
# group shapes, model families, and scheduler histories, with exact
# shared/private row accounting (kernel level, scheduler level, and the
# paged-block grouping in pc-cache).
cargo test -q -p pc-model --test prefix_tests
cargo test -q -p prompt-cache --test prefix_sharing_tests
cargo test -q -p pc-cache paged
# Ops-plane gate: the HTTP endpoint smoke (server on an ephemeral port,
# all four endpoints fetched over a raw TcpStream, Prometheus lines and
# flight JSONL validated against docs/OBSERVABILITY.md), the per-module
# analytics counters, the zero-overhead-when-disabled byte-identity, and
# the seeded-chaos flight-replay byte-identity (runs under pc-faults
# above). Batched-serving telemetry (tick spans, exact TTFT breakdowns)
# rides in telemetry_tests, already gated above.
cargo test -q -p pc-server --test ops
cargo test -q -p pc-cache analytics
# API migration gate: the unified SubmitRequest builder must agree with
# the deprecated submit/submit_baseline/try_submit signatures it shims
# (the serve_* engine shims are gone; callers use ServeRequest directly).
cargo test -q -p pc-server --test submit_api
# Batching experiment smoke (quick mode: no BENCH artifact, asserts the
# batched-vs-solo identity and a complete load sweep).
cargo run --release -q -p pc-bench --bin figures -- --quick batching > /dev/null
# Prefix-sharing experiment smoke (quick mode: asserts grouped-vs-
# per-sequence identity and that shared-row traffic appears at batch > 1),
# plus a compile/run check of the criterion A/B bench.
cargo run --release -q -p pc-bench --bin figures -- --quick prefix_sharing > /dev/null
cargo bench -q -p pc-bench --bench prefix_sharing -- --test > /dev/null
# Deferred-RoPE gate: RoPE shift-composition properties, the canonical-
# entry-vs-full-prefill fidelity oracles (byte-identical at shift 0,
# within the logit-divergence bound when relocated), the packed prompt
# resolver, and the relocated corrupt-then-degrade chaos case (runs under
# pc-faults above).
cargo test -q -p pc-model --test proptests
cargo test -q -p prompt-cache --test deferred_rope_tests
cargo test -q -p pc-pml
# Position-reuse experiment smoke (quick mode: shuffled-position RAG
# replay A/B asserting deferred hit rate >= 2x baked, one store entry per
# chunk, and both fidelity oracles; the full run writes
# BENCH_position_reuse.json).
cargo run --release -q -p pc-bench --bin figures -- --quick position_reuse > /dev/null
# Persistence gate: the disk-tier format (segment/index round trips,
# torn-tail and stale-index recovery, quantized encodings), the tiered
# store's demote/promote/degrade paths, the engine snapshot/restore warm
# restart, and the persistence chaos suite (plan-driven bit rot and
# crash-shaped segment damage must recover and serve byte-identically;
# runs under pc-faults above).
cargo test -q -p pc-cache disk
cargo test -q -p pc-cache segment
cargo test -q -p prompt-cache --test persistence_tests
# Persistence experiment smoke (quick mode: warm-vs-cold startup, the
# quantized capacity multipliers, and the int8 drift bound; the full run
# writes BENCH_persistence.json).
cargo run --release -q -p pc-bench --bin figures -- --quick persistence > /dev/null
# Fleet gate: sharded routing must stay byte-identical to a single
# process across shard counts, replication factors, and mid-run worker
# kills (thread and OS-process mode), and the worker-kill chaos suite
# (seeded stalls + scheduled kills under pc-faults) must rebalance
# without changing a byte.
cargo test -q -p pc-server --test fleet
cargo test -q -p pc-faults --test fleet_chaos
# Sharding experiment smoke (quick mode: affinity on/off hit-rate sweep
# asserting byte-identity at every shard count; the full run writes
# BENCH_sharding.json).
cargo run --release -q -p pc-bench --bin figures -- --quick sharding > /dev/null
# Docs gate: rustdoc must stay warning-clean.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q
cargo clippy --all-targets -- -D warnings
