//! The [`Strategy`] trait and combinators.
//!
//! A strategy is just "something that can produce a value from the test
//! RNG" — no shrink trees (see the crate docs for why).

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::rc::Rc;

/// Produces values of type `Self::Value` for property tests.
pub trait Strategy {
    type Value: Debug;

    /// Samples one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every sampled value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each sampled value (dependent
    /// generation, e.g. dims first, then data of that size).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.new_value(rng)))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].new_value(rng)
    }
}

// ---- Ranges are strategies ---------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---- String literals are regex strategies ------------------------------

impl Strategy for &'static str {
    type Value = String;

    /// Interprets the literal as a generation pattern (regex subset, see
    /// [`crate::string`]).
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

// ---- Tuples of strategies are strategies -------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_maps_and_flat_maps_compose() {
        let mut rng = rng_for("compose");
        let strat = (1usize..=4, 1usize..=4)
            .prop_flat_map(|(r, c)| {
                crate::collection::vec(0u32..10, r * c).prop_map(move |v| (r, c, v))
            });
        for _ in 0..200 {
            let (r, c, v) = strat.new_value(&mut rng);
            assert!((1..=4).contains(&r) && (1..=4).contains(&c));
            assert_eq!(v.len(), r * c);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = rng_for("oneof");
        let strat = crate::prop_oneof![Just(0u8), Just(1), Just(2)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.new_value(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn boxed_strategies_support_recursion() {
        fn tree(depth: u32) -> BoxedStrategy<usize> {
            if depth == 0 {
                Just(1usize).boxed()
            } else {
                tree(depth - 1).prop_map(|n| n + 1).boxed()
            }
        }
        let mut rng = rng_for("recursion");
        assert_eq!(tree(3).new_value(&mut rng), 4);
    }
}
