//! String generation from a small regex subset.
//!
//! Supports exactly the pattern features the workspace's test suites use
//! as string strategies:
//!
//! - literal characters (`a`, space, …);
//! - character classes with ranges and literals: `[a-z]`, `[a-z0-9-]`,
//!   `[A-Z]`;
//! - `\PC` — "any non-control character" (printable ASCII most of the
//!   time, a sprinkle of multi-byte unicode to exercise byte-level
//!   tokenizer paths);
//! - groups `( ... )`;
//! - repetition `{n}`, `{n,m}` as a postfix on any of the above.
//!
//! Unsupported syntax panics with the offending pattern, so a new test
//! using a wider feature fails loudly instead of sampling garbage.

use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// Inclusive char ranges (single chars are degenerate ranges).
    Class(Vec<(char, char)>),
    /// Any non-control character.
    NonControl,
    Group(Vec<Node>),
    Repeat(Box<Node>, u32, u32),
}

/// Non-ASCII sample pool for `\PC`: Latin-1, Greek, CJK, emoji — enough
/// to exercise multi-byte encode/decode paths.
const UNICODE_SAMPLE: &[char] = &[
    'é', 'ü', 'ß', 'ñ', 'α', 'β', 'Ω', 'π', 'д', 'ж', '中', '文', '日', '本', '語', '→', '‖',
    '€', '😀', '🦀', '🌍', '𝕊',
];

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let nodes = parse_sequence(&mut pattern.chars().peekable(), pattern, false);
    let mut out = String::new();
    for node in &nodes {
        emit(node, rng, &mut out);
    }
    out
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn parse_sequence(chars: &mut Chars<'_>, pattern: &str, in_group: bool) -> Vec<Node> {
    let mut nodes: Vec<Node> = Vec::new();
    while let Some(&c) = chars.peek() {
        match c {
            ')' if in_group => break,
            '(' => {
                chars.next();
                let inner = parse_sequence(chars, pattern, true);
                assert_eq!(
                    chars.next(),
                    Some(')'),
                    "unclosed group in pattern {pattern:?}"
                );
                nodes.push(Node::Group(inner));
            }
            '[' => {
                chars.next();
                nodes.push(parse_class(chars, pattern));
            }
            '\\' => {
                chars.next();
                match (chars.next(), chars.next()) {
                    (Some('P'), Some('C')) => nodes.push(Node::NonControl),
                    (a, b) => panic!(
                        "unsupported escape `\\{}{}` in pattern {pattern:?}",
                        a.map(String::from).unwrap_or_default(),
                        b.map(String::from).unwrap_or_default(),
                    ),
                }
            }
            '{' => {
                chars.next();
                let (lo, hi) = parse_repeat(chars, pattern);
                let prev = nodes
                    .pop()
                    .unwrap_or_else(|| panic!("dangling repetition in pattern {pattern:?}"));
                nodes.push(Node::Repeat(Box::new(prev), lo, hi));
            }
            '*' | '+' | '?' | '|' | '.' | '^' | '$' => {
                panic!("unsupported regex feature `{c}` in pattern {pattern:?}")
            }
            _ => {
                chars.next();
                nodes.push(Node::Literal(c));
            }
        }
    }
    nodes
}

fn parse_class(chars: &mut Chars<'_>, pattern: &str) -> Node {
    let mut ranges: Vec<(char, char)> = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
        match c {
            ']' => {
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                return Node::Class(ranges);
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().unwrap();
                let hi = chars.next().unwrap();
                assert!(lo <= hi, "reversed range in pattern {pattern:?}");
                ranges.push((lo, hi));
            }
            c => {
                if let Some(p) = pending.replace(c) {
                    ranges.push((p, p));
                }
            }
        }
    }
}

fn parse_repeat(chars: &mut Chars<'_>, pattern: &str) -> (u32, u32) {
    let mut text = String::new();
    loop {
        match chars.next() {
            Some('}') => break,
            Some(c) => text.push(c),
            None => panic!("unclosed repetition in pattern {pattern:?}"),
        }
    }
    let parse = |s: &str| {
        s.trim()
            .parse::<u32>()
            .unwrap_or_else(|_| panic!("bad repetition `{{{text}}}` in pattern {pattern:?}"))
    };
    match text.split_once(',') {
        Some((lo, hi)) => (parse(lo), parse(hi)),
        None => {
            let n = parse(&text);
            (n, n)
        }
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u32 = ranges.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
            let mut pick = rng.gen_range(0..total);
            for &(lo, hi) in ranges {
                let size = hi as u32 - lo as u32 + 1;
                if pick < size {
                    out.push(char::from_u32(lo as u32 + pick).expect("valid class char"));
                    return;
                }
                pick -= size;
            }
            unreachable!("class pick out of range");
        }
        Node::NonControl => {
            if rng.gen_range(0..100) < 85 {
                out.push(char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap());
            } else {
                out.push(UNICODE_SAMPLE[rng.gen_range(0..UNICODE_SAMPLE.len())]);
            }
        }
        Node::Group(nodes) => {
            for n in nodes {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let n = rng.gen_range(*lo..=*hi);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::rng_for;

    #[test]
    fn class_patterns_stay_in_class() {
        let mut rng = rng_for("class");
        for _ in 0..200 {
            let s = generate("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn multi_range_class_with_literal_dash() {
        let mut rng = rng_for("dash");
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9-]{0,6}", &mut rng);
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn groups_and_spaces() {
        let mut rng = rng_for("groups");
        for _ in 0..100 {
            let s = generate("[a-z]{2,6}( [a-z]{2,6}){0,3}", &mut rng);
            for word in s.split(' ') {
                assert!((2..=6).contains(&word.len()), "{s:?}");
            }
        }
    }

    #[test]
    fn non_control_never_emits_control_chars() {
        let mut rng = rng_for("nc");
        let mut saw_non_ascii = false;
        for _ in 0..300 {
            let s = generate("\\PC{0,64}", &mut rng);
            assert!(s.chars().count() <= 64);
            assert!(!s.chars().any(char::is_control), "{s:?}");
            saw_non_ascii |= s.chars().any(|c| !c.is_ascii());
        }
        assert!(saw_non_ascii, "\\PC should exercise multi-byte chars");
    }

    #[test]
    #[should_panic(expected = "unsupported regex feature")]
    fn unsupported_syntax_is_loud() {
        let mut rng = rng_for("loud");
        let _ = generate("[a-z]+", &mut rng);
    }
}
