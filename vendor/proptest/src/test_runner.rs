//! Test-case plumbing: config, case outcome, and deterministic seeding.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG driving value generation (deterministic, see [`rng_for`]).
pub type TestRng = StdRng;

/// Runner configuration. Construct with struct-update syntax, e.g.
/// `ProptestConfig { cases: 12, ..ProptestConfig::default() }`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Successful cases required per property.
    pub cases: u32,
    /// Abort after this many `prop_assume!` rejections (guards against
    /// assumptions that almost never hold).
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            // The real crate defaults to 256; 64 keeps the whole workspace's
            // property suites fast on small CI machines while still
            // exploring the space (override per-suite via proptest_config).
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Outcome of one generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// Input rejected by `prop_assume!` — generate a fresh one.
    Reject(String),
    /// Property violated.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-test RNG: seeded from the test name (FNV-1a) XOR the
/// optional `PROPTEST_SEED` environment variable, so a failure reproduces
/// by re-running the same test and the stream can be varied explicitly.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let extra = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0);
    StdRng::seed_from_u64(hash ^ extra)
}
