//! Vendored workalike of the `proptest` API subset this workspace uses.
//!
//! The build environment has no crates registry (see `vendor/README.md`),
//! so this crate re-implements the property-testing surface the test
//! suites call — `proptest!`, `prop_assert*`, `prop_assume!`,
//! `prop_oneof!`, `Just`, `any`, range/tuple/regex-string strategies,
//! `prop_map` / `prop_flat_map` / `boxed`, and `collection::vec` — on top
//! of the vendored deterministic `rand`.
//!
//! Deliberate simplifications versus the real crate:
//!
//! - **no shrinking**: a failing case reports the `prop_assert*` message
//!   (which embeds the compared values) instead of a minimised input;
//! - **deterministic seeding**: each test derives its RNG seed from the
//!   test name, so failures reproduce exactly; set `PROPTEST_SEED` to vary
//!   the stream;
//! - string strategies accept the small regex subset the workspace uses
//!   (char classes, groups, `{n,m}` repetition, `\PC`), not full regex.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn` runs its body for many sampled
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::rng_for(stringify!($name));
                let mut __cases_run: u32 = 0;
                let mut __rejects: u32 = 0;
                while __cases_run < __config.cases {
                    $(let $pat =
                        $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => __cases_run += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(__why),
                        ) => {
                            __rejects += 1;
                            assert!(
                                __rejects < __config.max_global_rejects,
                                "proptest `{}`: too many prop_assume rejections ({})",
                                stringify!($name),
                                __why,
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest `{}` failed at case {}: {}",
                                stringify!($name),
                                __cases_run,
                                __msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless both sides compare equal; the
/// message embeds both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r,
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)+);
            }
        }
    };
}

/// Fails the current test case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                );
            }
        }
    };
}

/// Discards the current test case (does not count towards `cases`) unless
/// the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Picks uniformly among the given strategies (all must produce the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
