//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;

/// Length specifications accepted by [`vec`]: an exact `usize`, `lo..hi`,
/// or `lo..=hi`.
pub trait IntoSizeRange {
    /// Inclusive bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec`s whose length is sampled from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn lengths_respect_spec() {
        let mut rng = rng_for("vec_lengths");
        let fixed = vec(0u8..10, 48usize);
        assert_eq!(fixed.new_value(&mut rng).len(), 48);
        let ranged = vec(0u8..10, 2..10);
        for _ in 0..100 {
            let v = ranged.new_value(&mut rng);
            assert!((2..10).contains(&v.len()));
        }
    }
}
