//! `any::<T>()` — default strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(-1.0e9f64..1.0e9)
    }
}
