//! Vendored workalike of the `parking_lot` API subset this workspace uses.
//!
//! The build environment has no access to a crates registry, so external
//! dependencies are vendored as minimal std-backed implementations (see
//! `vendor/README.md`). This crate wraps `std::sync` primitives and strips
//! lock poisoning, which is the parking_lot behaviour the callers rely on:
//! a panic while holding a lock must not wedge every later accessor.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Poison-free mutual exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
