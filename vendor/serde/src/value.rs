//! JSON-shaped value tree: the interchange model for the vendored
//! serde/serde_json pair.
//!
//! Inherent accessors and `Index` impls live here (the defining crate);
//! `serde_json` re-exports the type, so call sites keep writing
//! `serde_json::Value`.

use std::fmt;

/// A JSON value.
///
/// Numbers are stored as `f64` (integers are exact up to 2^53, far beyond
/// anything the workspace serialises); objects preserve insertion order so
/// emitted figures are stable across runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up by object key or array index; `None` on kind mismatch or
    /// absence.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
}

/// Key types usable with [`Value::get`] and `value[...]`.
pub trait ValueIndex {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == self).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl ValueIndex for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Array(items) => items.get(*self),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

// Primitive comparisons, like real serde_json: `v["flag"] == true`,
// `v["name"] == "x"`, `v["n"] == 3`.
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

macro_rules! impl_value_num_eq {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_num_eq!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;

    /// Returns `Value::Null` for missing keys, like real serde_json.
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no NaN/Inf; emit null like serde_json's lossy mode.
        f.write_str("null")
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

impl Value {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, level: usize, pretty: bool) -> fmt::Result {
        let (nl, pad, pad_in) = if pretty {
            ("\n", "  ".repeat(level), "  ".repeat(level + 1))
        } else {
            ("", String::new(), String::new())
        };
        let sep = if pretty { ": " } else { ":" };
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write_number(f, *n),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                if items.is_empty() {
                    return f.write_str("[]");
                }
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{nl}{pad_in}")?;
                    item.fmt_indented(f, level + 1, pretty)?;
                }
                write!(f, "{nl}{pad}]")
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    return f.write_str("{}");
                }
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{nl}{pad_in}")?;
                    write_escaped(f, k)?;
                    f.write_str(sep)?;
                    v.fmt_indented(f, level + 1, pretty)?;
                }
                write!(f, "{nl}{pad}}}")
            }
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON; `{:#}` renders pretty-printed with two-space indent.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0, f.alternate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(1.0)),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("s".into(), Value::String("x\"y".into())),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null],"s":"x\"y"}"#);
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][0].as_bool(), Some(true));
        assert!(v["missing"].is_null());
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x\"y"));
    }

    #[test]
    fn numbers_render_like_json() {
        assert_eq!(Value::Number(3.0).to_string(), "3");
        assert_eq!(Value::Number(3.5).to_string(), "3.5");
        assert_eq!(Value::Number(-0.25).to_string(), "-0.25");
    }
}
