//! Vendored workalike of the `serde` API subset this workspace uses.
//!
//! The build environment has no crates registry (see `vendor/README.md`),
//! so serialisation is modelled directly on a JSON-shaped [`value::Value`]
//! tree instead of serde's visitor machinery: `Serialize` renders a value
//! tree, `Deserialize` reads one back. `serde_json` (also vendored) is the
//! only data format in the workspace, so the value model *is* the
//! interchange format and nothing is lost by skipping the zero-copy
//! visitor layer.
//!
//! `#[derive(Serialize, Deserialize)]` comes from the vendored
//! `serde_derive` proc-macro crate, re-exported here exactly like the real
//! crate's `derive` feature. Supported shapes: structs with named fields
//! and enums with unit variants — everything the workspace derives.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// Error produced when a value tree does not match the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    pub fn missing_field(name: &str) -> Self {
        DeError(format!("missing field `{name}`"))
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` as a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- Serialize impls for std types -------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---- Deserialize impls for std types -----------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

macro_rules! impl_deserialize_num {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_deserialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("array of length ", $len),
                        other,
                    )),
                }
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (A: 0; 1)
    (A: 0, B: 1; 2)
    (A: 0, B: 1, C: 2; 3)
    (A: 0, B: 1, C: 2, D: 3; 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_round_trips() {
        let v: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        let tree = v.to_value();
        assert_eq!(Vec::<(u32, u32)>::from_value(&tree).unwrap(), v);

        let nested: Vec<Vec<u8>> = vec![vec![0, 255], vec![]];
        assert_eq!(
            Vec::<Vec<u8>>::from_value(&nested.to_value()).unwrap(),
            nested
        );

        let s = String::from("héllo");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u32::from_value(&Value::String("x".into())).is_err());
        assert!(String::from_value(&Value::Number(1.0)).is_err());
    }
}
