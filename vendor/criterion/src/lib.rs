//! Vendored workalike of the `criterion` API subset this workspace's
//! benches use: groups, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no crates registry (see `vendor/README.md`).
//! Measurement is deliberately simple — warm up, then run timed batches
//! until the measurement budget is spent, then report mean wall-clock per
//! iteration (plus throughput when configured) on stdout. No statistical
//! analysis, HTML reports, or comparison baselines.
//!
//! `cargo test` runs `harness = false` bench binaries too; criterion's
//! contract is to smoke-run each benchmark once when invoked with
//! `--test`, and this clone honours that so the tier-1 suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Smoke mode: run each routine exactly once, measure nothing.
    test_mode: bool,
    /// Substring filter from the command line.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies command-line arguments (`--test`, `--bench`, a positional
    /// name filter), mirroring real criterion's harness contract.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                a if a.starts_with('-') => {} // ignore unknown flags
                name => self.filter = Some(name.to_string()),
            }
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.benchmark_group(id.clone()).run(&id, f);
        self
    }
}

/// A set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run(&id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.to_string();
        self.run(&id, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.criterion.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test-mode {full}: ok");
            return;
        }

        // Warm-up: discover roughly how long one iteration takes.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut per_iter = loop {
            f(&mut b);
            let per = b.elapsed / b.iters.max(1) as u32;
            if warm_start.elapsed() >= self.warm_up_time {
                break per.max(Duration::from_nanos(1));
            }
        };

        // Measurement: `sample_size` batches within the time budget.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        for _ in 0..self.sample_size {
            let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
                .clamp(1, u64::MAX as u128) as u64;
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            total_iters += iters;
            per_iter = (b.elapsed / iters.max(1) as u32).max(Duration::from_nanos(1));
        }
        let mean = total.as_secs_f64() / total_iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.3e} elem/s)", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.3e} B/s)", n as f64 / mean)
            }
            None => String::new(),
        };
        println!(
            "bench {full}: {} / iter ({total_iters} iters){rate}",
            format_time(mean)
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the batch the harness requested.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Work-per-iteration hint for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_functions() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut ran = 0;
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
            .throughput(Throughput::Elements(4));
        group.bench_function("f", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("g", 3), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert_eq!(ran, 1, "test mode runs the routine exactly once");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("nomatch".into()),
        };
        let mut ran = 0;
        c.bench_function("other", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 0);
    }

    #[test]
    fn measurement_reports_sane_time() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
        };
        let mut group = c.benchmark_group("timing");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        group.bench_function("spin", |b| {
            b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()))
        });
        group.finish();
    }
}
