//! Vendored workalike of the `rand` API subset this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng` with
//! `gen_range` / `gen` / `gen_bool`.
//!
//! The build environment has no crates registry (see `vendor/README.md`).
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic
//! across runs and platforms, which is all the workspace needs: every
//! caller seeds explicitly (`seed_from_u64`), none use OS entropy.
//!
//! Note the stream differs from the real `rand` crate's StdRng (ChaCha12),
//! so tests asserting *specific* sampled values would diverge; the
//! workspace only asserts properties of sampled values, never the values
//! themselves.

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`; integer or
    /// float element types).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Sample from the "standard" distribution: `[0, 1)` for floats, full
    /// range for integers, fair coin for `bool`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0,1]");
        f64::from_u64_unit(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — deterministic, fast, good enough for tests and
    /// synthetic workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Element types `gen_range` can sample.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Range argument forms accepted by `gen_range`.
pub trait SampleRange<T: SampleUniform> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_below(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_below(rng, lo, hi, true)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Span as u128 so `hi - lo` cannot overflow for any
                // integer type, including the full-domain inclusive case.
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w) as u128 + if inclusive { 1 } else { 0 };
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                // Multiply-shift keeps the modulo bias negligible
                // (2^-128 · span) without a rejection loop.
                let off = ((wide >> 64).wrapping_mul(span) >> 64) as i128;
                (lo_w + off) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

trait UnitFloat {
    fn from_u64_unit(bits: u64) -> Self;
}

impl UnitFloat for f64 {
    fn from_u64_unit(bits: u64) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UnitFloat for f32 {
    fn from_u64_unit(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let u = <$t as UnitFloat>::from_u64_unit(rng.next_u64());
                let v = lo + (hi - lo) * u;
                // Guard the open upper bound against rounding.
                if v >= hi { lo.max(<$t>::from_bits(hi.to_bits() - 1)) } else { v }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// The "standard" distribution used by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        f64::from_u64_unit(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        f32::from_u64_unit(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Inclusive ranges reach the upper endpoint.
        let mut top = false;
        for _ in 0..200 {
            if rng.gen_range(0usize..=2) == 2 {
                top = true;
            }
        }
        assert!(top);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
