//! Vendored workalike of `serde_derive` for the vendored `serde` crate's
//! value model (see `vendor/README.md`).
//!
//! No `syn`/`quote` (the registry is unreachable): the item is parsed by
//! walking `proc_macro::TokenTree`s and the impl is emitted as source text
//! via `str::parse`. Supported shapes — everything the workspace derives:
//!
//! - structs with named fields → JSON-object round-trip keyed by field
//!   name;
//! - enums whose variants are all unit variants → JSON string of the
//!   variant name.
//!
//! Anything else (tuple structs, payload-carrying variants, generics,
//! `#[serde(...)]` attributes) produces a `compile_error!` naming the
//! limitation rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Splits a brace-group body into top-level comma-separated chunks.
fn split_commas(body: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => chunks.push(Vec::new()),
            _ => chunks.last_mut().unwrap().push(tt),
        }
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Strips leading `#[...]` attributes and `pub` / `pub(...)` visibility.
fn strip_attrs_and_vis(chunk: &[TokenTree]) -> Result<&[TokenTree], String> {
    let mut rest = chunk;
    loop {
        match rest {
            [TokenTree::Punct(p), TokenTree::Group(g), tail @ ..]
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let text = g.to_string();
                if text.starts_with("[serde") {
                    return Err("#[serde(...)] attributes are not supported by the \
                                vendored serde_derive"
                        .to_string());
                }
                rest = tail;
            }
            [TokenTree::Ident(id), tail @ ..] if id.to_string() == "pub" => {
                rest = match tail {
                    [TokenTree::Group(g), t @ ..] if g.delimiter() == Delimiter::Parenthesis => t,
                    t => t,
                };
            }
            _ => return Ok(rest),
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let outer = strip_attrs_and_vis(&tokens)?;
    let (kind, rest) = match outer {
        [TokenTree::Ident(id), rest @ ..]
            if id.to_string() == "struct" || id.to_string() == "enum" =>
        {
            (id.to_string(), rest)
        }
        _ => return Err("vendored serde_derive supports only `struct` and `enum` items".into()),
    };
    let (name, rest) = match rest {
        [TokenTree::Ident(id), rest @ ..] => (id.to_string(), rest),
        _ => return Err("expected an item name".into()),
    };
    let body = match rest {
        [TokenTree::Group(g)] if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        [TokenTree::Punct(p), ..] if p.as_char() == '<' => {
            return Err("generic items are not supported by the vendored serde_derive".into());
        }
        _ => {
            return Err("vendored serde_derive supports only brace-bodied items \
                        (no tuple structs)"
                .into());
        }
    };

    if kind == "struct" {
        let mut fields = Vec::new();
        for chunk in split_commas(body) {
            let chunk = strip_attrs_and_vis(&chunk)?;
            match chunk {
                [TokenTree::Ident(id), TokenTree::Punct(colon), ..]
                    if colon.as_char() == ':' =>
                {
                    fields.push(id.to_string());
                }
                _ => return Err("expected a named field (tuple structs unsupported)".into()),
            }
        }
        Ok(Item::Struct { name, fields })
    } else {
        let mut variants = Vec::new();
        for chunk in split_commas(body) {
            let chunk = strip_attrs_and_vis(&chunk)?;
            match chunk {
                [TokenTree::Ident(id)] => variants.push(id.to_string()),
                _ => {
                    return Err("vendored serde_derive supports only unit enum variants".into());
                }
            }
        }
        Ok(Item::Enum { name, variants })
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let src = match item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::String(::std::string::String::from({v:?})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let src = match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             v.get({f:?}).ok_or_else(|| \
                                 ::serde::DeError::missing_field({f:?}))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!("::std::option::Option::Some({v:?}) => \
                             ::std::result::Result::Ok({name}::{v}),")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v.as_str() {{\n\
                             {arms}\n\
                             _ => ::std::result::Result::Err(\
                                 ::serde::DeError::expected({name:?}, v)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().unwrap()
}
