//! Vendored workalike of the `bytes` API subset this workspace uses:
//! little-endian put/get on a growable buffer, `freeze()` into a cheaply
//! cloneable immutable buffer, and `Buf` over `&[u8]`.
//!
//! The build environment has no crates registry; this is a minimal
//! std-backed implementation (see `vendor/README.md`).

use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Growable byte buffer with little-endian primitive appends.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Write access to a growable buffer (API subset).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access that consumes from the front (API subset).
///
/// # Panics
///
/// Like the real crate, the `get_*` methods panic when the buffer holds
/// fewer bytes than requested — callers check `remaining()` first.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, cnt: usize) {
        assert!(self.len() >= cnt, "buffer underflow");
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"PCKV");
        b.put_u16_le(513);
        b.put_u32_le(7);
        b.put_u64_le(u64::MAX - 3);
        b.put_f32_le(-1.5);
        let frozen = b.freeze();
        let mut buf: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"PCKV");
        assert_eq!(buf.get_u16_le(), 513);
        assert_eq!(buf.get_u32_le(), 7);
        assert_eq!(buf.get_u64_le(), u64::MAX - 3);
        assert_eq!(buf.get_f32_le(), -1.5);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1, 2];
        let _ = buf.get_u32_le();
    }
}
