//! Vendored workalike of the `crossbeam` API subset this workspace uses:
//! `channel::{bounded, unbounded, Sender, Receiver}` and
//! `sync::WaitGroup`.
//!
//! The build environment has no crates registry, so this is a minimal
//! std-backed implementation (Mutex + Condvar MPMC queue). Semantics the
//! callers depend on and that are covered by tests below:
//!
//! - multi-producer **and** multi-consumer (clone either end);
//! - `bounded(cap)` blocks senders at capacity;
//! - `recv()` returns `Err(RecvError)` once the channel is empty and all
//!   senders are dropped (this is how the server drains on shutdown);
//! - `send()` fails once all receivers are dropped;
//! - `Receiver::iter()` yields until disconnect.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error for `send` on a channel with no remaining receivers; carries
    /// the unsent message like the real crossbeam type.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without requiring `T: Debug`, so
    // `send(...).expect(...)` works for unprintable payloads (closures).
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error for `recv` on an empty channel with no remaining senders.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error for `try_send`; carries the unsent message like the real
    /// crossbeam type.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// Whether the failure was a full channel (backpressure) rather
        /// than a disconnect.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty, disconnected channel")
                }
            }
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for TryRecvError {}

    fn shared<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        shared(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    /// `bounded(0)` is approximated with capacity 1 (the workspace never
    /// relies on rendezvous semantics).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        shared(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full; fails once all receivers are
        /// dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.0.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send: fails immediately with `Full` at capacity
        /// instead of waiting — the primitive behind the server's
        /// load-shedding admission control.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.0.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.0.cap {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails once the channel is empty
        /// and all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.0.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.not_empty.wait(state).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.state.lock().unwrap();
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.0.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn len(&self) -> usize {
            self.0.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator: yields until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.0.not_full.notify_all();
            }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

pub mod sync {
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner {
        count: Mutex<usize>,
        zero: Condvar,
    }

    /// Synchronisation point: `wait()` blocks until every clone has been
    /// dropped.
    pub struct WaitGroup(Arc<Inner>);

    impl WaitGroup {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            WaitGroup(Arc::new(Inner {
                count: Mutex::new(1),
                zero: Condvar::new(),
            }))
        }

        /// Drops this handle and blocks until all other clones are dropped.
        pub fn wait(self) {
            let inner = self.0.clone();
            drop(self); // decrement our own count first
            let mut count = inner.count.lock().unwrap();
            while *count > 0 {
                count = inner.zero.wait(count).unwrap();
            }
        }
    }

    impl Default for WaitGroup {
        fn default() -> Self {
            WaitGroup::new()
        }
    }

    impl Clone for WaitGroup {
        fn clone(&self) -> Self {
            *self.0.count.lock().unwrap() += 1;
            WaitGroup(self.0.clone())
        }
    }

    impl Drop for WaitGroup {
        fn drop(&mut self) {
            let mut count = self.0.count.lock().unwrap();
            *count -= 1;
            if *count == 0 {
                drop(count);
                self.0.zero.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};
    use super::sync::WaitGroup;

    #[test]
    fn unbounded_mpmc_delivers_everything() {
        let (tx, rx) = unbounded::<usize>();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(t * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_then_unblocks() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || tx.send(3).unwrap());
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn recv_disconnects_when_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_send_full_and_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded::<u32>(1);
        tx.try_send(1).unwrap();
        match tx.try_send(2) {
            Err(e @ TrySendError::Full(_)) => {
                assert!(e.is_full());
                assert_eq!(e.into_inner(), 2);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 3);
        drop(rx);
        match tx.try_send(4) {
            Err(TrySendError::Disconnected(v)) => assert_eq!(v, 4),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn waitgroup_waits_for_all_clones() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let wg = WaitGroup::new();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let wg = wg.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
                drop(wg);
            });
        }
        wg.wait();
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }
}
