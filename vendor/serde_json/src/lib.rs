//! Vendored workalike of the `serde_json` API subset this workspace uses:
//! [`Value`], `json!`, `to_value`, `to_string`, `to_string_pretty`,
//! `from_str`.
//!
//! The build environment has no crates registry (see `vendor/README.md`).
//! The vendored `serde` models serialisation directly as a JSON-shaped
//! value tree, so this crate is just that tree plus a printer (on
//! `Value`'s `Display`) and a recursive-descent parser.
//!
//! The `json!` macro accepts object literals with string-literal keys,
//! array literals, and bare expressions. Unlike the real macro, a *nested*
//! object/array literal in value position must be wrapped in its own
//! `json!` (the expression grammar already parses it; a bare `{...}` in
//! expression position does not).

pub use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Error from serialising or parsing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Converts any serialisable value into a [`Value`] tree.
#[allow(clippy::unnecessary_wraps)] // mirrors the real API's signature
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Infallible conversion used by the `json!` macro.
#[doc(hidden)]
pub fn value_of<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialises to compact JSON.
#[allow(clippy::unnecessary_wraps)]
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serialises to pretty-printed JSON (two-space indent).
#[allow(clippy::unnecessary_wraps)]
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(format!("{:#}", value.to_value()))
}

/// Parses JSON text into any deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

/// Builds a [`Value`] from a JSON-ish literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::value_of(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (::std::string::String::from($key), $crate::value_of(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::value_of(&$other) };
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs: read the low half.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| Error::new("truncated \\u escape"))?;
                                self.pos += 4;
                                let low = u32::from_str_radix(
                                    std::str::from_utf8(hex2)
                                        .map_err(|_| Error::new("bad \\u escape"))?,
                                    16,
                                )
                                .map_err(|_| Error::new("bad \\u escape"))?;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )));
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| Error::new(format!("bad number at offset {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects_and_arrays() {
        let rows = vec![json!({ "x": 1usize }), json!({ "x": 2usize })];
        let v = json!({
            "name": "fig1",
            "speedup": 3.5f64,
            "ok": true,
            "rows": rows,
            "nested": json!({ "a": 1u32 }),
        });
        assert_eq!(v["name"].as_str(), Some("fig1"));
        assert_eq!(v["speedup"].as_f64(), Some(3.5));
        assert_eq!(v["rows"][1]["x"].as_u64(), Some(2));
        assert_eq!(v["nested"]["a"].as_u64(), Some(1));
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1u8, 2u8])[0].as_u64(), Some(1));
    }

    #[test]
    fn round_trip_through_text() {
        let v = json!({
            "s": "a\"b\\c\nd\ttab",
            "unicode": "héllo → wörld",
            "nums": vec![0.5f64, -3.0, 1e9],
            "null_val": Value::Null,
        });
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
        assert!(pretty.contains("\n  \"s\""));
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let v: Value = from_str(r#"{"k": "A😀"}"#).unwrap();
        assert_eq!(v["k"].as_str(), Some("A😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let data: Vec<(u32, u32, u32, u32)> = vec![(1, 2, 3, 4), (5, 6, 7, 8)];
        let text = to_string(&data).unwrap();
        let back: Vec<(u32, u32, u32, u32)> = from_str(&text).unwrap();
        assert_eq!(back, data);
    }
}
